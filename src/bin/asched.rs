//! `asched` — schedule an IR program from the command line.
//!
//! ```text
//! asched [OPTIONS] <file.asm>        # or `-` for stdin
//!
//! OPTIONS:
//!   --window W          lookahead window size (default 4)
//!   --machine M         single | uniformN | rs6000      (default single)
//!   --latency L         restricted | fig3 | rs6000      (default fig3)
//!   --scheduler S       anticipatory | local | source | critpath |
//!                       gibbons | coffman | bernstein | warren
//!   --iterations N      for loops: simulate N iterations (default 32)
//!   --unroll N          unroll a single-block loop N times first
//!   --rename            rename provably-dead register reuse first
//!   --dot               print the dependence graph in Graphviz DOT
//!   --stats             print cycle counts and utilization
//!   --timeline          print the per-unit execution timeline
//!   --trace FILE        write a JSONL event trace (see docs/observability.md)
//!   --profile           print per-pass timings and event counters
//! ```
//!
//! Reads a program in the `asched-ir` textual format, builds its
//! dependence graph, schedules it, and prints the scheduled program.
//! Loops (`loop { … }`) go through the Section 5 algorithms; traces
//! (`trace { … }`) through Algorithm `Lookahead`.

use asched::baselines::all_baselines;
use asched::core::{
    schedule_blocks_independent, schedule_loop_trace, schedule_trace, LookaheadConfig, SchedCtx,
    SchedOpts,
};
use asched::graph::{to_dot, DepGraph, MachineModel, NodeId};
use asched::ir::{
    build_loop_graph, build_trace_graph, format_scheduled_block, parse_program, LatencyModel,
    Program, ProgramKind,
};
use asched::obs::{JsonlRecorder, ProfileRecorder, Recorder, TeeRecorder, NULL};
use asched::sim::{loop_completion, simulate, utilization, InstStream, IssuePolicy};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    window: usize,
    machine: String,
    latency: String,
    scheduler: String,
    iterations: u32,
    unroll: u32,
    rename: bool,
    dot: bool,
    stats: bool,
    timeline: bool,
    trace: Option<String>,
    profile: bool,
    input: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: asched [--window W] [--machine single|uniformN|rs6000] \
         [--latency restricted|fig3|rs6000] [--scheduler NAME] \
         [--iterations N] [--unroll N] [--rename] [--dot] [--stats] \
         [--timeline] [--trace FILE] [--profile] <file.asm | ->"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut o = Options {
        window: 4,
        machine: "single".into(),
        latency: "fig3".into(),
        scheduler: "anticipatory".into(),
        iterations: 32,
        unroll: 1,
        rename: false,
        dot: false,
        stats: false,
        timeline: false,
        trace: None,
        profile: false,
        input: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--window" => {
                o.window = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--machine" => o.machine = args.next().unwrap_or_else(|| usage()),
            "--latency" => o.latency = args.next().unwrap_or_else(|| usage()),
            "--scheduler" => o.scheduler = args.next().unwrap_or_else(|| usage()),
            "--iterations" => {
                o.iterations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--unroll" => {
                o.unroll = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--rename" => o.rename = true,
            "--dot" => o.dot = true,
            "--stats" => o.stats = true,
            "--timeline" => o.timeline = true,
            "--trace" => o.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => o.profile = true,
            "--help" | "-h" => usage(),
            _ if o.input.is_none() && !a.starts_with("--") => o.input = Some(a),
            _ => usage(),
        }
    }
    if o.input.is_none() {
        usage();
    }
    if o.window == 0 {
        eprintln!("--window must be at least 1");
        std::process::exit(2);
    }
    if o.unroll == 0 {
        eprintln!("--unroll must be at least 1");
        std::process::exit(2);
    }
    o
}

fn machine_model(o: &Options) -> MachineModel {
    if o.machine == "single" {
        MachineModel::single_unit(o.window)
    } else if o.machine == "rs6000" {
        MachineModel::rs6000_like(o.window)
    } else if let Some(n) = o.machine.strip_prefix("uniform") {
        let n: usize = n.parse().unwrap_or_else(|_| usage());
        if n == 0 {
            eprintln!("--machine uniformN needs at least one unit");
            std::process::exit(2);
        }
        MachineModel::uniform(n, o.window)
    } else {
        usage()
    }
}

fn latency_model(o: &Options) -> LatencyModel {
    match o.latency.as_str() {
        "restricted" => LatencyModel::restricted_01(),
        "fig3" => LatencyModel::fig3(),
        "rs6000" => LatencyModel::rs6000_like(),
        _ => usage(),
    }
}

fn schedule(
    sc: &mut SchedCtx,
    o: &Options,
    g: &DepGraph,
    machine: &MachineModel,
    is_loop: bool,
    rec: &dyn Recorder,
) -> Result<Vec<Vec<NodeId>>, String> {
    let cfg = LookaheadConfig::default();
    let opts = SchedOpts::default().with_recorder(rec);
    match o.scheduler.as_str() {
        "anticipatory" => {
            if is_loop {
                schedule_loop_trace(sc, g, machine, &cfg, &opts)
                    .map(|r| r.block_orders)
                    .map_err(|e| e.to_string())
            } else {
                schedule_trace(sc, g, machine, &cfg, &opts)
                    .map(|r| r.block_orders)
                    .map_err(|e| e.to_string())
            }
        }
        "local" => schedule_blocks_independent(sc, g, machine, true).map_err(|e| e.to_string()),
        name => {
            let b = all_baselines()
                .into_iter()
                .find(|b| b.name == name)
                .ok_or_else(|| format!("unknown scheduler `{name}`"))?;
            (b.run)(g, machine).map_err(|e| e.to_string())
        }
    }
}

fn report_stats(
    sc: &mut SchedCtx,
    o: &Options,
    prog: &Program,
    g: &DepGraph,
    machine: &MachineModel,
    orders: &[Vec<NodeId>],
) {
    if prog.kind == ProgramKind::Loop {
        let n = o.iterations.max(2);
        if orders.len() == 1 {
            let c1 = loop_completion(sc, g, machine, &orders[0], n);
            let c2 = loop_completion(sc, g, machine, &orders[0], 2 * n);
            println!(
                "# {n} iterations: {c1} cycles; steady state {:.2} cycles/iteration",
                (c2 - c1) as f64 / n as f64
            );
        } else {
            let c1 = asched::sim::trace_loop_completion(sc, g, machine, orders, n);
            let c2 = asched::sim::trace_loop_completion(sc, g, machine, orders, 2 * n);
            println!(
                "# {n} iterations: {c1} cycles; steady state {:.2} cycles/iteration",
                (c2 - c1) as f64 / n as f64
            );
        }
    } else {
        let stream = InstStream::from_blocks(orders);
        let r = simulate(
            sc,
            g,
            machine,
            &stream,
            IssuePolicy::Strict,
            &SchedOpts::default(),
        );
        let st = utilization(g, machine, &stream, &r);
        println!(
            "# {} cycles, {} instructions, utilization {:.1}%, {} stall cycles",
            r.completion,
            st.instructions,
            st.utilization * 100.0,
            st.stall_cycles
        );
    }
}

fn main() -> ExitCode {
    let o = parse_args();
    let src = match o.input.as_deref() {
        Some("-") => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("error reading stdin");
                return ExitCode::FAILURE;
            }
            s
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => unreachable!(),
    };

    let mut prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if o.unroll > 1 {
        if prog.kind != ProgramKind::Loop || prog.blocks.len() != 1 {
            eprintln!("--unroll needs a single-block loop");
            return ExitCode::FAILURE;
        }
        prog = asched::ir::transform::unroll(&prog, o.unroll);
    }
    if o.rename {
        prog = asched::ir::transform::rename_locals(&prog);
    }
    let prog = prog;
    let lat = latency_model(&o);
    let machine = machine_model(&o);
    let is_loop = prog.kind == ProgramKind::Loop;
    let g = if is_loop {
        build_loop_graph(&prog, &lat)
    } else {
        build_trace_graph(&prog, &lat)
    };

    if o.dot {
        print!("{}", to_dot(&g, o.input.as_deref().unwrap_or("program")));
        return ExitCode::SUCCESS;
    }

    // Observability sinks: a JSONL trace file and/or an aggregated
    // profile, tee'd together. With neither flag both sides are the
    // null recorder and the tee reports disabled, so instrumented code
    // never constructs an event.
    let tracer = match o.trace.as_deref() {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(JsonlRecorder::new(std::io::BufWriter::new(f))),
            Err(e) => {
                eprintln!("error creating trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let profiler = o.profile.then(ProfileRecorder::new);
    let trace_rec: &dyn Recorder = tracer.as_ref().map_or(&NULL as &dyn Recorder, |r| r);
    let profile_rec: &dyn Recorder = profiler.as_ref().map_or(&NULL as &dyn Recorder, |r| r);
    let tee = TeeRecorder::new(trace_rec, profile_rec);
    let rec: &dyn Recorder = &tee;

    let mut sc = SchedCtx::new();
    let orders = match schedule(&mut sc, &o, &g, &machine, is_loop, rec) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("scheduling failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "# scheduled by `{}` for {} (W = {})",
        o.scheduler, o.machine, machine.window
    );
    let kind = if is_loop { "loop" } else { "trace" };
    println!("{kind} {{");
    for (bi, order) in orders.iter().enumerate() {
        for line in format_scheduled_block(&prog, bi, order).lines() {
            println!("  {line}");
        }
    }
    println!("}}");
    if o.stats {
        report_stats(&mut sc, &o, &prog, &g, &machine, &orders);
    }
    if o.timeline {
        let stream = if is_loop && orders.len() == 1 {
            InstStream::loop_iterations(&orders[0], o.iterations.clamp(2, 8))
        } else {
            InstStream::from_blocks(&orders)
        };
        let r = simulate(
            &mut sc,
            &g,
            &machine,
            &stream,
            IssuePolicy::Strict,
            &SchedOpts::default(),
        );
        println!("# timeline (one row per unit; ' marks iteration mod 3):");
        println!("{}", asched::sim::timeline(&g, &machine, &stream, &r));
    }
    if let Some(p) = profiler {
        print!("{}", p.into_profile());
    }
    if let Some(t) = tracer {
        let mut w = t.into_inner();
        if let Err(e) = std::io::Write::flush(&mut w) {
            eprintln!("error writing trace file: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
