//! # asched — Anticipatory Instruction Scheduling
//!
//! A reproduction of *Anticipatory Instruction Scheduling* (Vivek Sarkar
//! and Barbara Simons, SPAA 1996) as a Rust workspace. This facade crate
//! re-exports every sub-crate under one roof; see the README for a tour.
//!
//! ```
//! use asched::graph::{DepGraph, BlockId, MachineModel, SchedCtx};
//! use asched::rank::rank_schedule_default;
//!
//! let mut g = DepGraph::new();
//! let a = g.add_simple("a", BlockId(0));
//! let b = g.add_simple("b", BlockId(0));
//! g.add_dep(a, b, 1);
//! let m = MachineModel::single_unit(2);
//! // One reusable context per thread: caches analyses, recycles scratch.
//! let mut sc = SchedCtx::new();
//! let sched = rank_schedule_default(&mut sc, &g, &g.all_nodes(), &m).unwrap();
//! assert_eq!(sched.makespan(), 3); // a at 0, one idle cycle, b at 2
//! ```

#![forbid(unsafe_code)]

/// Baseline local/global schedulers (paper Section 6 comparators).
pub use asched_baselines as baselines;
/// Anticipatory scheduling for traces and loops (paper Sections 4 and 5).
pub use asched_core as core;
/// Parallel, cache-backed batch scheduling engine (`asched-batch`).
pub use asched_engine as engine;
/// Dependence graphs, machine models, schedules and validation.
pub use asched_graph as graph;
/// Mini RISC IR with dependence analysis (paper Section 2.4 substrate).
pub use asched_ir as ir;
/// Structured tracing, pass profiling and event logs (`--trace`/`--profile`).
pub use asched_obs as obs;
/// Software pipelining / modulo scheduling (paper Section 2.4 post-pass).
pub use asched_pipeline as pipeline;
/// The Rank Algorithm and idle-slot delaying (paper Sections 2.1 and 3).
pub use asched_rank as rank;
/// The hermetic HTTP scheduling service and its load generator.
pub use asched_serve as serve;
/// The lookahead-window machine simulator (paper Section 2.3 model).
pub use asched_sim as sim;
/// Span-trace analysis and bench-snapshot regression diffing.
pub use asched_trace as trace;
/// Workload generators and paper fixtures.
pub use asched_workloads as workloads;
