//! Software pipelining and anticipatory scheduling, composed (paper
//! Section 2.4): modulo-schedule the Figure 3 loop, post-pass the kernel
//! with the Section 5.2 loop scheduler, then go further with unrolling
//! plus local register renaming (modulo variable expansion in effect).
//!
//! ```text
//! cargo run --example software_pipelining
//! ```

use asched::core::LookaheadConfig;
use asched::graph::{MachineModel, SchedCtx, SchedOpts};
use asched::ir::transform::{rename_locals, unroll};
use asched::ir::{build_loop_graph, LatencyModel};
use asched::pipeline::{anticipatory_postpass, mii, modulo_schedule, rec_mii};
use asched::workloads::fixtures::fig3_program;

fn main() {
    let prog = fig3_program();
    let machine = MachineModel::single_unit(1);
    let cfg = LookaheadConfig::default();

    let g = build_loop_graph(&prog, &LatencyModel::fig3());
    println!(
        "Figure 3 loop: ResMII-bound {} / RecMII {} -> MII {}",
        g.len(),
        rec_mii(&g),
        mii(&g, &machine)
    );

    // 1. Plain modulo scheduling + anticipatory post-pass.
    let post = anticipatory_postpass(
        &mut SchedCtx::new(),
        &g,
        &machine,
        &cfg,
        &SchedOpts::default(),
    )
    .expect("pipelines");
    println!(
        "modulo schedule: II {} (kernel in {} stages); post-pass sustains {} cycles/iteration",
        post.kernel.ii,
        post.kernel.stage.iter().max().unwrap() + 1,
        post.after.0 / post.after.1
    );

    // 2. The binding cycle runs through the *storage reuse* of gr0
    //    (multiply -> store -> multiply). Unrolling by two exposes the
    //    reuse inside one body, renaming deletes it, and modulo
    //    scheduling of the widened body reaches 5 cycles/iteration —
    //    below the original RecMII of 6.
    for factor in [2u32, 4] {
        let widened = rename_locals(&unroll(&prog, factor));
        let gw = build_loop_graph(&widened, &LatencyModel::fig3());
        let ms = modulo_schedule(&gw, &machine).expect("pipelines");
        println!(
            "unroll x{factor} + rename + modulo: II {} = {:.2} cycles per original iteration",
            ms.ii,
            ms.ii as f64 / factor as f64
        );
    }

    let widened = rename_locals(&unroll(&prog, 2));
    let gw = build_loop_graph(&widened, &LatencyModel::fig3());
    let ms = modulo_schedule(&gw, &machine).expect("pipelines");
    assert_eq!(ms.ii, 10, "5 cycles per original iteration");
    println!(
        "\nthe anticipatory loop scheduler alone reaches 6 (the paper's Schedule 2);\n\
         pipelining + renaming buys the last cycle the paper's Figure 3 left on\n\
         the table — the post-1996 toolbox composing with the paper's, exactly\n\
         as its Section 2.4 anticipated."
    );
}
