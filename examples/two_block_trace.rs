//! The paper's Figure 2 scenario end to end: a two-block trace with a
//! cross-block latency, scheduled locally vs anticipatorily, executed on
//! the lookahead-window simulator at several window sizes.
//!
//! ```text
//! cargo run --example two_block_trace
//! ```

use asched::core::{legal, schedule_blocks_independent, schedule_trace, LookaheadConfig};
use asched::graph::{MachineModel, SchedCtx, SchedOpts};
use asched::sim::{simulate, InstStream, IssuePolicy};
use asched::workloads::fixtures::fig2;

fn main() {
    let (g, _bb1, _bb2) = fig2();
    println!("trace: BB1 (6 instructions) -> BB2 (5 instructions), edge w->z latency 1\n");

    println!(
        "{:>4} {:>12} {:>14} {:>8}",
        "W", "local", "anticipatory", "legal?"
    );
    let mut sc = SchedCtx::new();
    for w in [1usize, 2, 3, 4, 8] {
        let machine = MachineModel::single_unit(w);
        let local = schedule_blocks_independent(&mut sc, &g, &machine, false).expect("schedules");
        let local_cycles = run(&mut sc, &g, &machine, &local);
        let res = schedule_trace(
            &mut sc,
            &g,
            &machine,
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .expect("schedules");
        let ant_cycles = run(&mut sc, &g, &machine, &res.block_orders);
        let ok = legal::is_legal(&mut sc, &g, &g.all_nodes(), &machine, &res.predicted);
        println!("{w:>4} {local_cycles:>12} {ant_cycles:>14} {ok:>8}");
        assert_eq!(
            ant_cycles, res.makespan,
            "prediction must match the hardware"
        );
    }

    let machine = MachineModel::single_unit(2);
    let res = schedule_trace(
        &mut sc,
        &g,
        &machine,
        &LookaheadConfig::default(),
        &SchedOpts::default(),
    )
    .unwrap();
    println!("\nat the paper's W = 2 the emitted code is:");
    for (i, order) in res.block_orders.iter().enumerate() {
        let names: Vec<&str> = order.iter().map(|&n| g.node(n).label.as_str()).collect();
        println!("  BB{}: {}", i + 1, names.join(" "));
    }
    println!(
        "\npredicted overlap (one line per unit): {}",
        res.predicted.gantt(&g, &machine)
    );
}

fn run(
    sc: &mut SchedCtx,
    g: &asched::graph::DepGraph,
    machine: &MachineModel,
    orders: &[Vec<asched::graph::NodeId>],
) -> u64 {
    let stream = InstStream::from_blocks(orders);
    simulate(
        sc,
        g,
        machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    )
    .completion
}
