//! The paper's Figure 3 workload, from assembly text to steady-state
//! measurement: parse the partial-products loop, run the dependence
//! analysis, schedule it with the Section 5.2.3 loop algorithm, and
//! compare against software pipelining with the anticipatory post-pass.
//!
//! ```text
//! cargo run --example partial_products_loop
//! ```

use asched::core::{
    schedule_single_block_loop, CandidateKind, LookaheadConfig, SchedCtx, SchedOpts,
};
use asched::graph::MachineModel;
use asched::ir::{build_loop_graph, format_scheduled_block, LatencyModel};
use asched::pipeline::{anticipatory_postpass, mii};
use asched::workloads::fixtures::{fig3_program, FIG3_ASM};

fn main() {
    println!("source:\n{FIG3_ASM}");
    let prog = fig3_program();
    let g = build_loop_graph(&prog, &LatencyModel::fig3());

    println!("dependence graph ({} nodes):", g.len());
    for e in g.edges() {
        println!(
            "  {:>4} -> {:<4} <latency {}, distance {}> ({})",
            g.node(e.src).label,
            g.node(e.dst).label,
            e.latency,
            e.distance,
            e.kind
        );
    }

    let machine = MachineModel::single_unit(2);
    let cfg = LookaheadConfig::default();
    let mut sc = SchedCtx::new();
    let res = schedule_single_block_loop(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
        .expect("schedules");

    let local = res
        .candidates
        .iter()
        .find(|c| c.kind == CandidateKind::Local)
        .unwrap();
    println!(
        "\nlocally-optimal order ({} cycles/iteration in isolation) sustains {} cycles/iteration",
        local.single_iter,
        local.period.0 / local.period.1
    );
    println!(
        "anticipatory order    ({} cycles/iteration in isolation) sustains {} cycles/iteration",
        res.single_iter,
        res.period.0 / res.period.1
    );

    println!("\nemitted loop body (anticipatory):");
    print!("{}", format_scheduled_block(&prog, 0, &res.order));

    // Software pipelining reaches the same bound here: the M->S->M
    // recurrence fixes the initiation interval at 6.
    let bound = mii(&g, &machine);
    let post = anticipatory_postpass(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
        .expect("pipelines");
    println!(
        "\nMII = {bound}; modulo scheduling achieves II {}, kernel sustains {} cycles/iteration",
        post.kernel.ii,
        post.after.0 / post.after.1
    );
    assert_eq!(res.period.0 / res.period.1, 6);
    assert_eq!(local.period.0 / local.period.1, 7);
}
