//! From a profile-weighted control-flow graph to anticipatorily
//! scheduled traces: build a CFG with a hot path, select traces
//! Fisher-style, and schedule the main trace with Algorithm `Lookahead`.
//!
//! ```text
//! cargo run --example trace_selection
//! ```

use asched::core::{schedule_trace, LookaheadConfig};
use asched::graph::{MachineModel, SchedCtx, SchedOpts};
use asched::ir::{
    build_trace_graph, format_scheduled_block, parse_program, Cfg, CfgEdge, LatencyModel,
};
use asched::sim::{expected_cycles, simulate, InstStream, IssuePolicy};

fn main() {
    // A function with a hot loop-free diamond: the left arm runs 90% of
    // the time.
    let src = r#"
    trace {
      block ENTRY {
        l4  gr1 = a[gr9]
        c4  cr1 = gr1, 0
        bt  cr1
      }
      block HOT {
        mul gr2 = gr1, gr1
        add gr3 = gr2, gr1
      }
      block COLD {
        li  gr3 = 0
      }
      block JOIN {
        mul gr4 = gr3, gr3
        st4 b[gr9] = gr4
      }
    }
    "#;
    let prog = parse_program(src).expect("parses");
    let cfg = Cfg::new(
        prog.blocks.clone(),
        vec![
            CfgEdge {
                from: 0,
                to: 1,
                count: 90,
            },
            CfgEdge {
                from: 0,
                to: 2,
                count: 10,
            },
            CfgEdge {
                from: 1,
                to: 3,
                count: 90,
            },
            CfgEdge {
                from: 2,
                to: 3,
                count: 10,
            },
        ],
        0,
    )
    .expect("valid CFG");

    let traces = cfg.select_traces();
    println!("selected traces (block indices, hottest first): {traces:?}");
    assert_eq!(traces[0], vec![0, 1, 3], "the hot path is the main trace");

    let main_trace = cfg.trace_program(&traces[0]);
    let g = build_trace_graph(&main_trace, &LatencyModel::fig3());
    let machine = MachineModel::single_unit(4);
    let mut sc = SchedCtx::new();
    let opts = SchedOpts::default();
    let res = schedule_trace(&mut sc, &g, &machine, &LookaheadConfig::default(), &opts)
        .expect("schedules");

    println!(
        "\nanticipatorily scheduled main trace ({} cycles at W=4):",
        res.makespan
    );
    for (bi, order) in res.block_orders.iter().enumerate() {
        print!("{}", format_scheduled_block(&main_trace, bi, order));
    }

    // Sanity: the measurement matches an independent simulation.
    let sim = simulate(
        &mut sc,
        &g,
        &machine,
        &InstStream::from_blocks(&res.block_orders),
        IssuePolicy::Strict,
        &opts,
    );
    assert_eq!(sim.completion, res.makespan);

    // Profile-weighted prediction: the diamond's branch is 90% biased,
    // so the ENTRY->HOT seam is predicted correctly 90% of the time.
    let acc = cfg.trace_accuracies(&traces[0]);
    let exp = expected_cycles(&mut sc, &g, &machine, &res.block_orders, &acc, 6);
    println!(
        "\nwith profile-driven prediction (accuracies {:?}, penalty 6): {:.2} expected cycles",
        acc.iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        exp
    );
    println!("(cold block COLD is scheduled separately as its own trace)");
}
