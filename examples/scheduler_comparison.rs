//! Compare every scheduler in the workspace on one random trace: the
//! classical baselines, local anticipatory scheduling, full Algorithm
//! `Lookahead`, and the unsafe global-motion oracle.
//!
//! ```text
//! cargo run --example scheduler_comparison [seed]
//! ```

use asched::baselines::{all_baselines, global_oracle};
use asched::core::{schedule_blocks_independent, schedule_trace, LookaheadConfig};
use asched::graph::{MachineModel, SchedCtx, SchedOpts};
use asched::sim::{simulate, utilization, InstStream, IssuePolicy};
use asched::workloads::{random_trace_dag, DagParams};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let g = random_trace_dag(&DagParams {
        nodes: 36,
        blocks: 4,
        edge_prob: 0.35,
        cross_prob: 0.25,
        max_latency: 3,
        seed,
        ..DagParams::default()
    });
    let machine = MachineModel::single_unit(4);
    println!(
        "random trace (seed {seed}): {} instructions in {} blocks, window W = {}\n",
        g.len(),
        g.blocks().len(),
        machine.window
    );

    println!("{:<24} {:>8} {:>12}", "scheduler", "cycles", "utilization");
    let mut sc = SchedCtx::new();
    let mut best_local = u64::MAX;
    for b in all_baselines() {
        let orders = (b.run)(&g, &machine).expect("schedules");
        let (cycles, util) = run(&mut sc, &g, &machine, &orders);
        best_local = best_local.min(cycles);
        println!("{:<24} {:>8} {:>11.1}%", b.name, cycles, util * 100.0);
    }
    let local = schedule_blocks_independent(&mut sc, &g, &machine, true).expect("schedules");
    let (cycles, util) = run(&mut sc, &g, &machine, &local);
    println!(
        "{:<24} {:>8} {:>11.1}%",
        "local+delay",
        cycles,
        util * 100.0
    );
    best_local = best_local.min(cycles);

    let ant = schedule_trace(
        &mut sc,
        &g,
        &machine,
        &LookaheadConfig::default(),
        &SchedOpts::default(),
    )
    .expect("schedules");
    let (cycles, util) = run(&mut sc, &g, &machine, &ant.block_orders);
    println!(
        "{:<24} {:>8} {:>11.1}%",
        "anticipatory",
        cycles,
        util * 100.0
    );
    // With latencies beyond 0/1 everything here is a heuristic for an
    // NP-hard problem (paper Section 4.2): on individual seeds a
    // baseline can win; experiment E5 reports the averages, where
    // anticipatory scheduling comes out ahead.
    if cycles > best_local {
        println!("  (a local baseline won on this seed — possible off the restricted machine)");
    }

    let oracle = global_oracle(&g, &machine).expect("schedules");
    let stream = InstStream::from_order(&oracle);
    let r = simulate(
        &mut sc,
        &g,
        &machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    let st = utilization(&g, &machine, &stream, &r);
    println!(
        "{:<24} {:>8} {:>11.1}%   (unsafe global motion)",
        "global oracle",
        r.completion,
        st.utilization * 100.0
    );
}

fn run(
    sc: &mut SchedCtx,
    g: &asched::graph::DepGraph,
    machine: &MachineModel,
    orders: &[Vec<asched::graph::NodeId>],
) -> (u64, f64) {
    let stream = InstStream::from_blocks(orders);
    let r = simulate(
        sc,
        g,
        machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    let st = utilization(g, machine, &stream, &r);
    (r.completion, st.utilization)
}
