//! Batch-schedule a corpus of trace tasks through the engine: build a
//! few hundred tasks with `asched-workloads`, run them once
//! sequentially and once on a worker pool with the schedule cache, and
//! print the cache hit rate and the wall-clock ratio.
//!
//! ```text
//! cargo run --release --example batch_corpus
//! ```
//!
//! The engine's results are a pure function of the corpus — the two
//! runs must agree task for task, whatever the job count.

use asched::engine::{Engine, EngineConfig, TraceTask};
use asched::graph::MachineModel;
use asched::obs::NULL;
use asched::workloads::{random_trace_dag, DagParams};

fn corpus() -> Vec<TraceTask> {
    // 300 tasks cycling through 60 distinct (graph, window) pairs, so
    // the content-addressed cache has real duplicates to serve.
    let mut tasks = Vec::new();
    for i in 0..300u64 {
        let seed = 100 + i % 60;
        let w = [2, 4, 8][(i % 3) as usize];
        let g = random_trace_dag(&DagParams {
            nodes: 48,
            blocks: 6,
            seed,
            ..DagParams::default()
        });
        tasks.push(TraceTask::new(
            format!("dag:{seed}:w{w}"),
            g,
            MachineModel::single_unit(w),
        ));
    }
    tasks
}

fn main() {
    let tasks = corpus();
    println!("corpus: {} tasks (60 distinct)\n", tasks.len());

    let seq = Engine::new(EngineConfig {
        jobs: 1,
        ..EngineConfig::default()
    })
    .run_batch(&tasks, &NULL);
    println!(
        "jobs=1, no cache : {:>7.1} ms  ({} scheduled)",
        seq.elapsed_nanos as f64 / 1e6,
        seq.scheduled
    );

    let par = Engine::new(EngineConfig {
        jobs: 4,
        cache: true,
        cache_capacity: 1024,
        ..EngineConfig::default()
    })
    .run_batch(&tasks, &NULL);
    println!(
        "jobs=4, cached   : {:>7.1} ms  ({} scheduled, {} served from cache)",
        par.elapsed_nanos as f64 / 1e6,
        par.scheduled,
        par.cached
    );
    println!(
        "cache            : {} hits / {} queries (hit rate {:.1}%)",
        par.cache_hits,
        par.cache_hits + par.cache_misses,
        par.hit_rate() * 100.0
    );
    if par.elapsed_nanos > 0 {
        println!(
            "wall-clock ratio : {:.2}x vs jobs=1",
            seq.elapsed_nanos as f64 / par.elapsed_nanos as f64
        );
    }

    // Determinism: the runs agree task for task.
    for (a, b) in seq.tasks.iter().zip(&par.tasks) {
        assert_eq!(a.makespan, b.makespan, "task {} diverged", a.index);
    }
    println!("\nboth runs produced identical schedules, task for task.");
}
