//! Sweep the hardware lookahead-window size on a Figure-2-shaped trace
//! and print the series the E5 experiment aggregates: how much of the
//! anticipatory advantage each window size realizes.
//!
//! ```text
//! cargo run --example window_sweep
//! ```

use asched::core::{
    schedule_blocks_independent, schedule_trace, LookaheadConfig, SchedCtx, SchedOpts,
};
use asched::graph::MachineModel;
use asched::sim::{simulate, InstStream, IssuePolicy};
use asched::workloads::{seam_trace, SeamParams};

fn main() {
    let g = seam_trace(&SeamParams {
        blocks: 6,
        fillers: 3,
        seam_latency: 3,
        chain_latency: 2,
        seed: 7,
    });
    println!(
        "seam trace: {} instructions in {} blocks (each block's tail feeds the next block's head)\n",
        g.len(),
        g.blocks().len()
    );
    println!(
        "{:>4} {:>8} {:>14} {:>10}",
        "W", "local", "anticipatory", "advantage"
    );
    let mut sc = SchedCtx::new();
    for w in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let machine = MachineModel::single_unit(w);
        let local = schedule_blocks_independent(&mut sc, &g, &machine, true).expect("schedules");
        let lc = run(&mut sc, &g, &machine, &local);
        let ant = schedule_trace(
            &mut sc,
            &g,
            &machine,
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .expect("schedules");
        let ac = run(&mut sc, &g, &machine, &ant.block_orders);
        println!(
            "{w:>4} {lc:>8} {ac:>14} {:>9.1}%",
            (lc as f64 - ac as f64) / lc as f64 * 100.0
        );
    }
    println!(
        "\nthe advantage peaks at small windows (the compiler anticipates what the\n\
         hardware cannot see) and vanishes once W covers whole blocks (the hardware\n\
         no longer needs the compiler's help) — the paper's central trade-off."
    );
}

fn run(
    sc: &mut SchedCtx,
    g: &asched::graph::DepGraph,
    machine: &MachineModel,
    orders: &[Vec<asched::graph::NodeId>],
) -> u64 {
    let stream = InstStream::from_blocks(orders);
    simulate(
        sc,
        g,
        machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    )
    .completion
}
