//! Quickstart: build a dependence graph, schedule a basic block with the
//! Rank Algorithm, delay its idle slots, and verify on the lookahead
//! simulator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use asched::core::{schedule_trace, LookaheadConfig, SchedCtx, SchedOpts};
use asched::graph::{BlockId, DepGraph, MachineModel};
use asched::rank::{delay_idle_slots, rank_schedule_default, Deadlines};
use asched::sim::{simulate, InstStream, IssuePolicy};

fn main() {
    // The paper's Figure 1 block: x -> {w,b,r}, e -> {w,b}, w -> a,
    // b -> a, all latency 1.
    let mut g = DepGraph::new();
    let e = g.add_simple("e", BlockId(0));
    let x = g.add_simple("x", BlockId(0));
    let b = g.add_simple("b", BlockId(0));
    let w = g.add_simple("w", BlockId(0));
    let a = g.add_simple("a", BlockId(0));
    let r = g.add_simple("r", BlockId(0));
    for (s, t) in [(x, w), (x, b), (x, r), (e, w), (e, b), (w, a), (b, a)] {
        g.add_dep(s, t, 1);
    }

    let machine = MachineModel::single_unit(2);
    let mask = g.all_nodes();

    // One reusable scheduling context for the whole session: analysis
    // results are cached and scratch buffers are recycled across calls.
    let mut sc = SchedCtx::new();

    // 1. Minimum-makespan schedule via the Rank Algorithm.
    let s0 = rank_schedule_default(&mut sc, &g, &mask, &machine).expect("acyclic block");
    println!(
        "rank schedule : {}  (makespan {})",
        s0.gantt(&g, &machine),
        s0.makespan()
    );

    // 2. Move idle slots as late as possible (the paper's key idea):
    //    same makespan, but the stall now sits at the block boundary
    //    where the hardware window can fill it with the next block.
    let mut d = Deadlines::uniform(&g, &mask, s0.makespan() as i64);
    let s1 = delay_idle_slots(
        &mut sc,
        &g,
        &mask,
        &machine,
        s0,
        &mut d,
        &SchedOpts::default(),
    );
    println!(
        "idle-delayed  : {}  (makespan {})",
        s1.gantt(&g, &machine),
        s1.makespan()
    );

    // 3. The same entry point everything else uses: anticipatory trace
    //    scheduling (a single block here).
    let res = schedule_trace(
        &mut sc,
        &g,
        &machine,
        &LookaheadConfig::default(),
        &SchedOpts::default(),
    )
    .expect("schedules");
    let order: Vec<&str> = res.block_orders[0]
        .iter()
        .map(|&n| g.node(n).label.as_str())
        .collect();
    println!("emitted order : {}", order.join(" "));

    // 4. Verify with the W=2 lookahead-window simulator.
    let stream = InstStream::from_blocks(&res.block_orders);
    let sim = simulate(
        &mut sc,
        &g,
        &machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    println!(
        "simulated     : {} cycles (predicted {})",
        sim.completion, res.makespan
    );
    assert_eq!(sim.completion, res.makespan);
}
