//! Golden-file observability test: schedule the Figure-2 two-block
//! trace with a `JsonlRecorder` attached and check the emitted event
//! log against the documented JSONL schema (docs/observability.md).

use asched::core::{schedule_trace, LookaheadConfig, SchedCtx, SchedOpts};
use asched::graph::MachineModel;
use asched::obs::schema::validate_document;
use asched::obs::JsonlRecorder;
use asched::workloads::fixtures::fig2;

/// Run Figure 2 at W=2 with a JSONL recorder and return the raw log
/// plus the validated per-line event tags.
fn fig2_trace() -> (String, Vec<String>) {
    let (g, _bb1, _bb2) = fig2();
    let machine = MachineModel::single_unit(2);
    let rec = JsonlRecorder::new(Vec::new());
    schedule_trace(
        &mut SchedCtx::new(),
        &g,
        &machine,
        &LookaheadConfig::default(),
        &SchedOpts::default().with_recorder(&rec),
    )
    .expect("fig2 schedules cleanly");
    let log = String::from_utf8(rec.into_inner()).expect("JSONL is UTF-8");
    let tags = validate_document(&log)
        .unwrap_or_else(|(line, err)| panic!("line {line} violates the schema: {err}"));
    (log, tags)
}

#[test]
fn fig2_trace_is_schema_valid_and_covers_the_pipeline() {
    let (log, tags) = fig2_trace();

    // Every line is a flat JSON object with a monotonically increasing
    // sequence number.
    for (i, line) in log.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},")),
            "line {i} must carry its sequence number: {line}"
        );
    }

    // The run is bracketed by the schedule_trace pass, and every pass
    // that begins also ends (in LIFO order per the span discipline,
    // but containment is what the schema guarantees).
    assert_eq!(tags.first().map(String::as_str), Some("pass_begin"));
    assert_eq!(tags.last().map(String::as_str), Some("pass_end"));
    let begins = tags.iter().filter(|t| *t == "pass_begin").count();
    let ends = tags.iter().filter(|t| *t == "pass_end").count();
    assert_eq!(begins, ends, "unbalanced pass spans");

    // The events the paper's pipeline must produce on this input:
    // ranking, per-block markers, a merge (BB2 into BB1's shadow), a
    // chop back into blocks, and window activity including a stall
    // (Figure 2's W=2 schedule stalls on the x->w latency-2 edge).
    for required in [
        "rank_run",
        "block_begin",
        "merge_probe",
        "merge_done",
        "chop",
        "issue",
        "stall",
        "window_occupancy",
    ] {
        assert!(
            tags.iter().any(|t| t == required),
            "trace must contain a `{required}` event; got tags {tags:?}"
        );
    }

    // Two blocks, so two block_begin markers and one merge apiece
    // (BB1 merges into the empty carried suffix, BB2 into BB1's).
    assert_eq!(tags.iter().filter(|t| *t == "block_begin").count(), 2);
    assert_eq!(tags.iter().filter(|t| *t == "merge_done").count(), 2);
}

#[test]
fn recorded_run_matches_unrecorded_run() {
    let (g, _bb1, _bb2) = fig2();
    let machine = MachineModel::single_unit(2);
    let cfg = LookaheadConfig::default();
    let mut sc = SchedCtx::new();
    let plain = schedule_trace(&mut sc, &g, &machine, &cfg, &SchedOpts::default()).unwrap();
    let rec = JsonlRecorder::new(Vec::new());
    let traced = schedule_trace(
        &mut sc,
        &g,
        &machine,
        &cfg,
        &SchedOpts::default().with_recorder(&rec),
    )
    .unwrap();
    assert_eq!(plain.makespan, traced.makespan);
    assert_eq!(plain.block_orders, traced.block_orders);
}

#[test]
fn trace_reports_the_paper_makespan() {
    // The merge events must agree with the scheduling result: the last
    // merge_done (BB2 merged behind BB1) carries the full merged
    // makespan, which for Figure 2 at W=2 is the paper's 11-cycle
    // two-block schedule.
    let (log, _) = fig2_trace();
    let merge_line = log
        .lines()
        .rfind(|l| l.contains("\"ev\":\"merge_done\""))
        .expect("merge_done present");
    assert!(
        merge_line.contains("\"makespan\":11"),
        "Figure 2 merge should report the 11-cycle schedule: {merge_line}"
    );
}
