//! Property-based tests over the whole pipeline: random workloads in,
//! invariants checked across crates.

use asched::baselines::all_baselines;
use asched::core::{
    legal, schedule_blocks_independent, schedule_trace, LookaheadConfig, SchedCtx, SchedOpts,
};
use asched::graph::validate::validate_schedule;
use asched::graph::MachineModel;
use asched::rank::brute::optimal_makespan;
use asched::rank::{delay_idle_slots, rank_schedule_default, Deadlines};
use asched::sim::{simulate, InstStream, IssuePolicy};
use asched::workloads::{random_trace_dag, DagParams};
use proptest::prelude::*;

fn dag_params() -> impl Strategy<Value = DagParams> {
    (
        4usize..24,
        1usize..4,
        0.05f64..0.6,
        0.0f64..0.4,
        0u32..3,
        any::<u64>(),
    )
        .prop_map(
            |(nodes, blocks, edge_prob, cross_prob, max_latency, seed)| DagParams {
                nodes: nodes.max(blocks),
                blocks,
                edge_prob,
                cross_prob,
                max_latency,
                seed,
                ..DagParams::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Rank Algorithm always produces dependence- and
    /// capacity-valid schedules.
    #[test]
    fn rank_schedules_validate(p in dag_params()) {
        let g = random_trace_dag(&p);
        let machine = MachineModel::single_unit(4);
        let mask = g.all_nodes();
        let s = rank_schedule_default(&mut SchedCtx::new(), &g, &mask, &machine).unwrap();
        validate_schedule(&g, &mask, &machine, &s, None).unwrap();
    }

    /// Idle-slot delaying never increases the makespan (in the
    /// restricted case it preserves it exactly; off it, the deadline
    /// re-runs occasionally find a *shorter* schedule), and when the
    /// makespan is unchanged no idle slot moves earlier.
    #[test]
    fn idle_delay_invariants(p in dag_params()) {
        let g = random_trace_dag(&p);
        let machine = MachineModel::single_unit(4);
        let mask = g.all_nodes();
        let mut sc = SchedCtx::new();
        let s0 = rank_schedule_default(&mut sc, &g, &mask, &machine).unwrap();
        let t = s0.makespan();
        let before = s0.idle_slots(&machine);
        let mut d = Deadlines::uniform(&g, &mask, t as i64);
        let s1 = delay_idle_slots(&mut sc, &g, &mask, &machine, s0, &mut d, &SchedOpts::default());
        prop_assert!(s1.makespan() <= t, "delaying must never lengthen the schedule");
        if s1.makespan() == t {
            let after = s1.idle_slots(&machine);
            prop_assert_eq!(before.len(), after.len());
            for (b, a) in before.iter().zip(after.iter()) {
                prop_assert!(a >= b, "idle slot moved earlier: {} -> {}", b, a);
            }
        }
        validate_schedule(&g, &mask, &machine, &s1, Some(d.as_slice())).unwrap();
    }

    /// Algorithm Lookahead's internal prediction is a valid schedule,
    /// its emitted block orders partition the nodes, its reported
    /// makespan is exactly the hardware measurement, and whenever the
    /// prediction is legal under Definition 2.3 it agrees with the
    /// measurement.
    #[test]
    fn lookahead_measured_consistency(p in dag_params(), w in 1usize..8) {
        let g = random_trace_dag(&p);
        let machine = MachineModel::single_unit(w);
        let mut sc = SchedCtx::new();
        let res = schedule_trace(&mut sc, &g, &machine, &LookaheadConfig::default(), &SchedOpts::default())
            .unwrap();
        validate_schedule(&g, &g.all_nodes(), &machine, &res.predicted, None).unwrap();
        let covered: usize = res.block_orders.iter().map(|o| o.len()).sum();
        prop_assert_eq!(covered, g.len());
        let sim = simulate(
            &mut sc,
            &g,
            &machine,
            &InstStream::from_blocks(&res.block_orders),
            IssuePolicy::Strict,
            &SchedOpts::default(),
        );
        prop_assert_eq!(sim.completion, res.makespan);
        if legal::is_legal(&mut sc, &g, &g.all_nodes(), &machine, &res.predicted) {
            prop_assert_eq!(
                res.predicted.makespan(),
                res.makespan,
                "legal predictions must match the hardware"
            );
        }
    }

    /// The emitted per-block orders always respect the in-block
    /// dependences (they are real programs), and the measured makespan
    /// respects the dependence-only lower bound.
    #[test]
    fn emitted_orders_are_programs(p in dag_params(), w in 1usize..8) {
        let g = random_trace_dag(&p);
        let machine = MachineModel::single_unit(w);
        let res = schedule_trace(
            &mut SchedCtx::new(),
            &g,
            &machine,
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .unwrap();
        for order in &res.block_orders {
            let pos: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, &x)| (x, i)).collect();
            for &id in order {
                for e in g.out_edges_li(id) {
                    if let (Some(&pi), Some(&pj)) = (pos.get(&e.src), pos.get(&e.dst)) {
                        prop_assert!(pi < pj, "dependence {} violated", e);
                    }
                }
            }
        }
        let cp = asched::graph::critical_path_length(&g, &g.all_nodes()).unwrap();
        prop_assert!(res.makespan >= cp.max(g.len() as u64));
    }

    /// On single blocks in the restricted case, rank + idle-delay is
    /// optimal (cross-checked against exhaustive search).
    #[test]
    fn restricted_case_optimality(seed in any::<u64>(), n in 4usize..10) {
        let g = random_trace_dag(&DagParams {
            nodes: n,
            blocks: 1,
            edge_prob: 0.4,
            cross_prob: 0.0,
            max_latency: 1,
            seed,
            ..DagParams::default()
        });
        let machine = MachineModel::single_unit(2);
        let mask = g.all_nodes();
        let s = rank_schedule_default(&mut SchedCtx::new(), &g, &mask, &machine).unwrap();
        prop_assert_eq!(s.makespan(), optimal_makespan(&g, &mask, &machine));
    }

    /// Every baseline emits dependence-respecting per-block orders, and
    /// the simulated trace completes (sanity across the whole registry).
    #[test]
    fn baselines_emit_valid_orders(p in dag_params()) {
        let g = random_trace_dag(&p);
        let machine = MachineModel::single_unit(4);
        let mut sc = SchedCtx::new();
        for b in all_baselines() {
            let orders = (b.run)(&g, &machine).unwrap();
            let sim = simulate(
                &mut sc,
                &g,
                &machine,
                &InstStream::from_blocks(&orders),
                IssuePolicy::Strict,
                &SchedOpts::default(),
            );
            prop_assert!(sim.completion >= (g.len() as u64).div_ceil(1));
        }
    }

    /// Anticipatory scheduling never loses to independent per-block
    /// scheduling in the restricted case.
    #[test]
    fn anticipatory_beats_local_restricted(p in dag_params(), w in 2usize..8) {
        let mut p = p;
        p.max_latency = 1;
        let g = random_trace_dag(&p);
        let machine = MachineModel::single_unit(w);
        let mut sc = SchedCtx::new();
        let local = schedule_blocks_independent(&mut sc, &g, &machine, true).unwrap();
        let lc = simulate(
            &mut sc,
            &g,
            &machine,
            &InstStream::from_blocks(&local),
            IssuePolicy::Strict,
            &SchedOpts::default(),
        )
        .completion;
        let ant = schedule_trace(&mut sc, &g, &machine, &LookaheadConfig::default(), &SchedOpts::default())
            .unwrap();
        let ac = simulate(
            &mut sc,
            &g,
            &machine,
            &InstStream::from_blocks(&ant.block_orders),
            IssuePolicy::Strict,
            &SchedOpts::default(),
        )
        .completion;
        prop_assert!(ac <= lc, "anticipatory {} vs local {}", ac, lc);
    }
}
