//! Cross-crate integration: IR kernels through dependence analysis,
//! Section 5.2.3 loop scheduling, modulo scheduling and the anticipatory
//! post-pass.

use asched::core::{
    schedule_single_block_loop, CandidateKind, LookaheadConfig, SchedCtx, SchedOpts,
};
use asched::graph::MachineModel;
use asched::ir::{build_loop_graph, LatencyModel};
use asched::pipeline::{anticipatory_postpass, mii, modulo_schedule, rec_mii};
use asched::sim::steady_period_rational;
use asched::workloads::kernels::all_kernels;

#[test]
fn every_kernel_schedules_and_respects_recurrence_bounds() {
    let machine = MachineModel::single_unit(1);
    let cfg = LookaheadConfig::default();
    let mut sc = SchedCtx::new();
    for (name, prog) in all_kernels() {
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        if g.blocks().len() != 1 {
            continue; // 5.2.3 is the single-block entry point
        }
        let res = schedule_single_block_loop(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let bound = rec_mii(&g);
        assert!(
            res.period.0 >= bound * res.period.1,
            "{name}: period {:?} beats the recurrence bound {bound}",
            res.period
        );
        // The selection can only improve on the loop-blind candidate.
        let local = res
            .candidates
            .iter()
            .find(|c| c.kind == CandidateKind::Local)
            .unwrap();
        assert!(
            res.period.0 * local.period.1 <= local.period.0 * res.period.1,
            "{name}: selected worse than local"
        );
    }
}

#[test]
fn modulo_schedule_hits_mii_on_kernels() {
    let machine = MachineModel::single_unit(1);
    for (name, prog) in all_kernels() {
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        if g.blocks().len() != 1 {
            continue;
        }
        let bound = mii(&g, &machine);
        let ms = modulo_schedule(&g, &machine).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(ms.ii >= bound, "{name}: II below MII");
        assert!(
            ms.ii <= bound + 2,
            "{name}: II {} far above MII {bound}",
            ms.ii
        );
    }
}

#[test]
fn postpass_never_degrades_any_kernel() {
    let machine = MachineModel::single_unit(1);
    let cfg = LookaheadConfig::default();
    let mut sc = SchedCtx::new();
    for (name, prog) in all_kernels() {
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        if g.blocks().len() != 1 {
            continue;
        }
        let r = anticipatory_postpass(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
        assert!(
            r.after.0 * r.before.1 <= r.before.0 * r.after.1,
            "{name}: post-pass degraded the kernel"
        );
        // Consistency: the reported period really is what the simulator
        // measures for the chosen order on the kernel graph.
        let eval = machine.with_window(cfg.loop_eval_window);
        let measured = steady_period_rational(&mut sc, &r.kernel.graph, &eval, &r.order);
        assert_eq!(
            measured.0 * r.after.1,
            r.after.0 * measured.1,
            "{name}: reported period mismatch"
        );
    }
}

#[test]
fn pipelined_kernels_beat_or_match_unpipelined_schedules() {
    // Software pipelining should never lose to single-iteration
    // scheduling in steady state (it has strictly more freedom).
    let machine = MachineModel::single_unit(1);
    let cfg = LookaheadConfig::default();
    let mut sc = SchedCtx::new();
    for (name, prog) in all_kernels() {
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        if g.blocks().len() != 1 {
            continue;
        }
        let anticipatory =
            schedule_single_block_loop(&mut sc, &g, &machine, &cfg, &SchedOpts::default()).unwrap();
        let post =
            anticipatory_postpass(&mut sc, &g, &machine, &cfg, &SchedOpts::default()).unwrap();
        assert!(
            post.after.0 * anticipatory.period.1 <= anticipatory.period.0 * post.after.1,
            "{name}: modulo+postpass ({:?}) lost to plain anticipatory ({:?})",
            post.after,
            anticipatory.period
        );
    }
}
