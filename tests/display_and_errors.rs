//! Display/Error-trait coverage for the public error and report types —
//! downstream users match on these and log them; the strings are API.

use asched::core::CoreError;
use asched::graph::validate::{validate_schedule, ValidationError};
use asched::graph::{BlockId, CycleError, DepGraph, MachineModel, NodeId};
use asched::ir::ParseError;
use asched::rank::RankError;

#[test]
fn error_displays_are_informative() {
    let c = CycleError { witness: NodeId(3) };
    assert!(c.to_string().contains("n3"));

    let r = RankError::Infeasible { node: NodeId(7) };
    assert!(r.to_string().contains("n7"));
    assert!(RankError::from(c.clone()).to_string().contains("cycle"));

    let e = CoreError::BadLoopStructure("expects one block");
    assert!(e.to_string().contains("expects one block"));
    assert!(CoreError::MergeFailed.to_string().contains("merge"));
    assert!(CoreError::from(c).to_string().contains("cycle"));

    let p = ParseError {
        line: 12,
        msg: "unknown opcode `xyz`".into(),
    };
    let s = p.to_string();
    assert!(s.contains("12") && s.contains("xyz"));
}

#[test]
fn validation_errors_name_the_culprits() {
    let mut g = DepGraph::new();
    let a = g.add_simple("a", BlockId(0));
    let b = g.add_simple("b", BlockId(0));
    g.add_dep(a, b, 2);
    let m = MachineModel::single_unit(2);
    let mut s = asched::graph::Schedule::new(2);
    s.assign(a, 0, 0, 1);
    s.assign(b, 1, 0, 1); // violates the latency
    let err = validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap_err();
    assert!(matches!(err, ValidationError::DependenceViolated { .. }));
    let text = err.to_string();
    assert!(text.contains("n0") && text.contains("n1"), "{text}");
}

#[test]
fn errors_are_std_errors() {
    fn takes_err<E: std::error::Error>(_: &E) {}
    takes_err(&CycleError { witness: NodeId(0) });
    takes_err(&RankError::Infeasible { node: NodeId(0) });
    takes_err(&CoreError::MergeFailed);
    takes_err(&ParseError {
        line: 1,
        msg: String::new(),
    });
    takes_err(&ValidationError::Unscheduled(NodeId(0)));
}
