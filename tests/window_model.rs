//! Golden tests pinning the Section 2.3 window-model semantics at the
//! cross-crate level: these encode the paper's prose as executable
//! facts, so any future simulator change that shifts the model breaks
//! loudly here rather than silently skewing every experiment.

use asched::graph::{BlockId, DepGraph, FuClass, MachineModel, NodeData, SchedCtx, SchedOpts};
use asched::sim::{simulate, InstStream, IssuePolicy};

fn unit(g: &mut DepGraph, label: &str, block: u32, class: FuClass) -> asched::graph::NodeId {
    let pos = g.len() as u32;
    g.add_node(NodeData {
        label: label.into(),
        exec_time: 1,
        class,
        block: BlockId(block),
        source_pos: pos,
    })
}

/// "The window moves ahead only when the first instruction in the window
/// has been issued" — a stalled head freezes admission even when later
/// instructions are ready.
#[test]
fn stalled_head_freezes_the_window() {
    let mut g = DepGraph::new();
    let a = g.add_simple("a", BlockId(0));
    let stall = g.add_simple("stall", BlockId(0));
    g.add_dep(a, stall, 5);
    let fillers: Vec<_> = (0..4)
        .map(|i| g.add_simple(format!("f{i}"), BlockId(0)))
        .collect();
    let mut order = vec![a, stall];
    order.extend(&fillers);
    // W=3: a@0; window {stall, f0, f1}: f0@1, f1@2; then the window is
    // {stall, f2, f3}?? NO — the window cannot slide past the unissued
    // stall: it stays {stall, f0, f1} = {stall} effectively, so f2, f3
    // wait until stall issues at 6.
    let r = simulate(
        &mut SchedCtx::new(),
        &g,
        &MachineModel::single_unit(3),
        &InstStream::from_order(&order),
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    assert_eq!(r.issue[0], 0);
    assert_eq!(r.issue[2], 1, "f0 is inside the first window");
    assert_eq!(r.issue[3], 2, "f1 is inside the first window");
    assert_eq!(r.issue[1], 6, "stall waits out the full latency");
    assert!(r.issue[4] >= 6, "f2 admitted only after the head clears");
    assert_eq!(r.issue[4], 7);
    assert_eq!(r.issue[5], 8);
}

/// "The processor hardware is capable of issuing and executing any of
/// these W instructions in the window that is ready" — issue is
/// out-of-order *within* the window, bounded by W.
#[test]
fn overlap_is_bounded_by_w() {
    // Block 0: one instruction with a long result latency feeding block
    // 1's every instruction; block 1 also has independent work at its
    // end that only a large enough window can reach.
    let mut g = DepGraph::new();
    let p = g.add_simple("p", BlockId(0));
    let c1 = g.add_simple("c1", BlockId(1));
    let c2 = g.add_simple("c2", BlockId(1));
    let free = g.add_simple("free", BlockId(1));
    g.add_dep(p, c1, 4);
    g.add_dep(p, c2, 4);
    let stream = InstStream::from_blocks(&[vec![p], vec![c1, c2, free]]);
    // W=2: window after p = {c1, c2}: neither ready until 5; free sits
    // outside the window and runs last -> p@0, c1@5, c2@6, free@7 = 8.
    let mut sc = SchedCtx::new();
    let w2 = simulate(
        &mut sc,
        &g,
        &MachineModel::single_unit(2),
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    assert_eq!(w2.completion, 8);
    // W=4: free is visible and fills cycle 1; completion drops to 7.
    let w4 = simulate(
        &mut sc,
        &g,
        &MachineModel::single_unit(4),
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    assert_eq!(w4.issue[3], 1);
    assert_eq!(w4.completion, 7);
}

/// The Ordering Constraint: among READY instructions, stream order wins;
/// non-ready instructions are skipped (that is the lookahead).
#[test]
fn ready_order_is_stream_order() {
    let mut g = DepGraph::new();
    let a = g.add_simple("a", BlockId(0));
    let b = g.add_simple("b", BlockId(0));
    let c = g.add_simple("c", BlockId(0));
    let _ = (b, c);
    g.add_dep(a, b, 1); // b not ready at t=1; c is
    let r = simulate(
        &mut SchedCtx::new(),
        &g,
        &MachineModel::single_unit(3),
        &InstStream::from_order(&[a, b, c]),
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    assert_eq!(
        r.issue,
        vec![0, 2, 1],
        "c overtakes the stalled b, never the ready a"
    );
}

/// Multi-unit Strict vs Scan differ exactly when a ready instruction is
/// blocked on its unit class.
#[test]
fn scan_overtakes_only_blocked_units() {
    let mut g = DepGraph::new();
    let f1 = unit(&mut g, "f1", 0, FuClass::Float);
    let f2 = unit(&mut g, "f2", 0, FuClass::Float);
    let i1 = unit(&mut g, "i1", 0, FuClass::Fixed);
    let _ = (f1, f2, i1);
    let m = MachineModel {
        units: vec![FuClass::Float, FuClass::Fixed],
        window: 3,
    };
    let stream = InstStream::from_order(&[f1, f2, i1]);
    let mut sc = SchedCtx::new();
    let strict = simulate(
        &mut sc,
        &g,
        &m,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    let scan = simulate(
        &mut sc,
        &g,
        &m,
        &stream,
        IssuePolicy::Scan,
        &SchedOpts::default(),
    );
    // Strict: f2 (ready, blocked) stops the scan; i1 waits with it.
    assert_eq!(strict.issue, vec![0, 1, 1]);
    // Scan: i1 slips onto the idle fixed unit at cycle 0.
    assert_eq!(scan.issue, vec![0, 1, 0]);
}
