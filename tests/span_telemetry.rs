//! Span telemetry, end to end: golden traces through the real server,
//! schema acceptance of span events, and byte-fuzz robustness of the
//! validator and span checker.

use std::sync::Arc;
use std::time::Duration;

use asched::obs::schema::{check_spans, validate_document, validate_line, SpanError};
use asched::obs::JsonlRecorder;
use asched::serve::{http_request, Server, ServerConfig};
use asched::trace::{folded_stacks, Trace};
use proptest::prelude::*;

/// Drive a few requests through a real server with a JSONL recorder
/// attached and return the trace text.
fn server_trace(requests: usize) -> String {
    let rec = Arc::new(JsonlRecorder::new(Vec::new()));
    let h = Server::start(
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        Arc::clone(&rec) as Arc<dyn asched::obs::Recorder + Send + Sync>,
    )
    .expect("bind");
    let addr = h.addr();
    for i in 0..requests {
        let resp = http_request(
            addr,
            "POST",
            "/v1/schedule",
            &[("X-Asched-Format", "manifest")],
            format!("dag nodes=12 blocks=2 seed={i} w=4\n").as_bytes(),
            Duration::from_secs(10),
        )
        .expect("request completes");
        assert_eq!(resp.status, 200, "{}", resp.text());
    }
    h.shutdown();
    let Ok(rec) = Arc::try_unwrap(rec) else {
        panic!("server must release the recorder at shutdown");
    };
    String::from_utf8(rec.into_inner()).expect("trace is UTF-8")
}

#[test]
fn server_traces_form_complete_request_trees() {
    const N: usize = 8;
    let log = server_trace(N);

    // Schema-valid, span-consistent, fully closed.
    validate_document(&log).unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
    let report = check_spans(&log).unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
    assert!(
        report.unclosed.is_empty(),
        "unclosed: {:?}",
        report.unclosed
    );

    // The analyzer reconstructs one tree per request, zero orphans.
    let t = Trace::parse(&log);
    assert!(t.orphans.is_empty(), "{:?}", t.orphans);
    assert!(t.unclosed.is_empty());
    let requests = t.roots_named("request");
    assert_eq!(requests.len(), N);
    assert_eq!(t.req_done.len(), N);
    for (span, status, nanos) in &t.req_done {
        // Every req_done carries its root span, and the span_end for
        // that root reports the same latency.
        assert_ne!(*span, 0, "req_done without a span");
        assert_eq!(*status, 200);
        let root = &t.spans[span];
        assert_eq!(root.name, "request");
        assert_eq!(root.nanos, Some(*nanos));
        // Phase children: queue, read, handle, write — in that order.
        let names: Vec<&str> = root
            .children
            .iter()
            .map(|c| t.spans[c].name.as_str())
            .collect();
        assert_eq!(names, ["queue", "read", "handle", "write"]);
        // The engine's work hangs under "handle".
        let handle = root.children[2];
        let grand: Vec<&str> = t.spans[&handle]
            .children
            .iter()
            .map(|c| t.spans[c].name.as_str())
            .collect();
        assert_eq!(grand, ["engine"]);
    }

    // Folded stacks cover the full hierarchy down to task self-time.
    let folded = folded_stacks(&t);
    assert!(folded.contains("request;handle;engine;task "), "{folded}");
}

#[test]
fn golden_span_lines_validate() {
    // The wire format this PR documents, one line of each kind.
    for line in [
        r#"{"seq":0,"ev":"span_start","span":1,"parent":null,"name":"request"}"#,
        r#"{"seq":1,"ev":"span_start","span":2,"parent":1,"name":"queue"}"#,
        r#"{"seq":2,"ev":"span_end","span":2,"nanos":1234}"#,
        r#"{"seq":3,"ev":"pass_end","pass":"rank","nanos":5,"span":2}"#,
        r#"{"seq":4,"ev":"cache_query","key":"000000000000000000000000000000ab","hit":true,"span":2}"#,
        r#"{"seq":5,"ev":"req_done","status":200,"nanos":99,"span":1}"#,
    ] {
        validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
}

#[test]
fn bad_span_fields_are_rejected() {
    // `span` must always be a positive integer; `span_start` needs a
    // name; mismatched pairs are caught by the cross-line checker.
    for line in [
        r#"{"seq":0,"ev":"span_start","span":0,"parent":null,"name":"x"}"#,
        r#"{"seq":0,"ev":"span_start","span":1,"parent":null}"#,
        r#"{"seq":0,"ev":"span_end","span":"one","nanos":1}"#,
        r#"{"seq":0,"ev":"pass_end","pass":"rank","nanos":5,"span":-3}"#,
        r#"{"seq":0,"ev":"req_done","status":200,"nanos":9,"span":1.5}"#,
    ] {
        assert!(validate_line(line).is_err(), "must reject: {line}");
    }

    let mismatched = "{\"ev\":\"span_start\",\"span\":2,\"parent\":7,\"name\":\"x\"}\n";
    match check_spans(mismatched) {
        Err((1, SpanError::UnknownParent { span: 2, parent: 7 })) => {}
        other => panic!("mismatched pair must be flagged, got {other:?}"),
    }
    let double_end = "{\"ev\":\"span_start\",\"span\":1,\"parent\":null,\"name\":\"x\"}\n\
                      {\"ev\":\"span_end\",\"span\":1,\"nanos\":1}\n\
                      {\"ev\":\"span_end\",\"span\":1,\"nanos\":2}\n";
    assert!(matches!(
        check_spans(double_end),
        Err((3, SpanError::DoubleEnd(1)))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the validator, the span
    /// checker, or the trace analyzer — they return errors or skip.
    #[test]
    fn validators_never_panic_on_soup(lines in proptest::collection::vec(
        proptest::collection::vec(proptest::char::any(), 0..60), 0..8)) {
        let text: String = lines
            .iter()
            .map(|cs| cs.iter().collect::<String>())
            .collect::<Vec<_>>()
            .join("\n");
        let _ = validate_document(&text);
        let _ = check_spans(&text);
        let _ = Trace::parse(&text);
        for line in text.lines() {
            let _ = validate_line(line);
        }
    }

    /// JSON-shaped soup (balanced braces, random span ids) also never
    /// panics, and any line the validator accepts must round-trip
    /// through the analyzer without structural surprises.
    #[test]
    fn validators_never_panic_on_json_shaped_soup(
        spans in proptest::collection::vec(0u64..6, 0..12),
        ends in proptest::collection::vec(0u64..6, 0..12),
    ) {
        let mut text = String::new();
        for (i, s) in spans.iter().enumerate() {
            text.push_str(&format!(
                "{{\"seq\":{i},\"ev\":\"span_start\",\"span\":{s},\"parent\":null,\"name\":\"n\"}}\n"
            ));
        }
        for (i, s) in ends.iter().enumerate() {
            text.push_str(&format!(
                "{{\"seq\":{},\"ev\":\"span_end\",\"span\":{s},\"nanos\":1}}\n",
                spans.len() + i
            ));
        }
        let _ = validate_document(&text);
        let _ = check_spans(&text);
        let t = Trace::parse(&text);
        // The analyzer never invents spans.
        prop_assert!(t.spans.len() <= spans.len());
    }
}
