//! End-to-end reproduction of every figure of the paper, through the
//! facade crate (the same path a downstream user takes).

use asched::core::{
    legal, schedule_single_block_loop, schedule_trace, CandidateKind, LookaheadConfig,
};
use asched::graph::{MachineModel, SchedCtx, SchedOpts};
use asched::rank::{compute_ranks, delay_idle_slots, rank_schedule, Deadlines};
use asched::sim::{loop_completion, simulate, InstStream, IssuePolicy};
use asched::workloads::fixtures::{
    fig1, fig2, fig3_graph, fig8, FIG1_IDLE_AFTER, FIG1_IDLE_BEFORE, FIG1_MAKESPAN, FIG2_MAKESPAN,
    FIG3_SCHED1, FIG3_SCHED2, FIG8_PERIODS,
};

#[test]
fn figure_1_complete() {
    let (g, [x, e, w, b, a, r]) = fig1();
    let machine = MachineModel::single_unit(2);
    let mask = g.all_nodes();
    let d100 = Deadlines::uniform(&g, &mask, 100);
    let mut sc = SchedCtx::new();
    let opts = SchedOpts::default();
    let ranks = compute_ranks(&mut sc, &g, &mask, &machine, &d100, &opts)
        .unwrap()
        .to_vec();
    assert_eq!(
        [
            ranks[x.index()],
            ranks[e.index()],
            ranks[w.index()],
            ranks[b.index()],
            ranks[a.index()],
            ranks[r.index()]
        ],
        [95, 95, 98, 98, 100, 100]
    );
    let out = rank_schedule(&mut sc, &g, &mask, &machine, &d100, &opts).unwrap();
    assert_eq!(out.schedule.makespan(), FIG1_MAKESPAN);
    assert_eq!(out.schedule.idle_slots(&machine), vec![FIG1_IDLE_BEFORE]);
    let mut d = Deadlines::uniform(&g, &mask, FIG1_MAKESPAN as i64);
    let s1 = delay_idle_slots(&mut sc, &g, &mask, &machine, out.schedule, &mut d, &opts);
    assert_eq!(s1.makespan(), FIG1_MAKESPAN);
    assert_eq!(s1.idle_slots(&machine), vec![FIG1_IDLE_AFTER]);
    assert_eq!(d.get(x), 1);
}

#[test]
fn figure_2_complete() {
    let (g, _, _) = fig2();
    let machine = MachineModel::single_unit(2);
    let mut sc = SchedCtx::new();
    let opts = SchedOpts::default();
    let res = schedule_trace(&mut sc, &g, &machine, &LookaheadConfig::default(), &opts).unwrap();
    assert_eq!(res.makespan, FIG2_MAKESPAN);
    // The hardware independently confirms the prediction.
    let sim = simulate(
        &mut sc,
        &g,
        &machine,
        &InstStream::from_blocks(&res.block_orders),
        IssuePolicy::Strict,
        &opts,
    );
    assert_eq!(sim.completion, FIG2_MAKESPAN);
    assert!(legal::is_legal(
        &mut sc,
        &g,
        &g.all_nodes(),
        &machine,
        &res.predicted
    ));
}

#[test]
fn figure_3_complete() {
    // Built from real IR through the dependence analysis.
    let g = fig3_graph();
    let machine = MachineModel::single_unit(2);
    let res = schedule_single_block_loop(
        &mut SchedCtx::new(),
        &g,
        &machine,
        &LookaheadConfig::default(),
        &SchedOpts::default(),
    )
    .unwrap();
    let local = res
        .candidates
        .iter()
        .find(|c| c.kind == CandidateKind::Local)
        .unwrap();
    assert_eq!(local.single_iter, FIG3_SCHED1.0);
    assert_eq!(local.period.0, FIG3_SCHED1.1 * local.period.1);
    assert_eq!(res.single_iter, FIG3_SCHED2.0);
    assert_eq!(res.period.0, FIG3_SCHED2.1 * res.period.1);
    // Emitted order is L ST M C4 BT.
    let labels: Vec<&str> = res
        .order
        .iter()
        .map(|&n| g.node(n).label.as_str())
        .collect();
    assert_eq!(labels, ["l4u", "st4u", "mul", "c4", "bt"]);
}

#[test]
fn figure_8_complete() {
    let (g, [n1, n2, n3]) = fig8();
    let w1 = MachineModel::single_unit(1);
    let mut sc = SchedCtx::new();
    for n in 1..=4u32 {
        assert_eq!(
            loop_completion(&mut sc, &g, &w1, &[n1, n2, n3], n),
            5 * n as u64 - 1
        );
        assert_eq!(
            loop_completion(&mut sc, &g, &w1, &[n2, n1, n3], n),
            4 * n as u64
        );
    }
    let res = schedule_single_block_loop(
        &mut sc,
        &g,
        &MachineModel::single_unit(2),
        &LookaheadConfig::default(),
        &SchedOpts::default(),
    )
    .unwrap();
    assert_eq!(res.order, vec![n2, n1, n3]);
    assert_eq!(res.period.0, FIG8_PERIODS.1 * res.period.1);
}
