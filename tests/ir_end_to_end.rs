//! IR round trips: text -> program -> dependence graph -> schedule ->
//! scheduled text, over random programs.

use asched::core::{schedule_trace, LookaheadConfig, SchedCtx, SchedOpts};
use asched::graph::MachineModel;
use asched::ir::{
    build_loop_graph, build_trace_graph, format_program, format_scheduled_block, parse_program,
    LatencyModel,
};
use asched::sim::{simulate, InstStream, IssuePolicy};
use asched::workloads::{random_program, ProgParams};

#[test]
fn random_programs_roundtrip_and_schedule() {
    let mut sc = SchedCtx::new();
    for seed in 0..20u64 {
        let prog = random_program(&ProgParams {
            blocks: 3,
            insts_per_block: 8,
            seed,
            ..ProgParams::default()
        });
        // Text round trip.
        let text = format_program(&prog);
        let again = parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(prog, again, "seed {seed}");

        // Analyse and schedule.
        let g = build_trace_graph(&prog, &LatencyModel::rs6000_like());
        let machine = MachineModel::rs6000_like(4);
        let res = schedule_trace(
            &mut sc,
            &g,
            &machine,
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let sim = simulate(
            &mut sc,
            &g,
            &machine,
            &InstStream::from_blocks(&res.block_orders),
            IssuePolicy::Strict,
            &SchedOpts::default(),
        );
        assert_eq!(sim.completion, res.makespan, "seed {seed}");

        // Scheduled text emission covers every instruction of each block.
        for (bi, order) in res.block_orders.iter().enumerate() {
            let out = format_scheduled_block(&prog, bi, order);
            let lines = out.lines().count();
            assert_eq!(lines, prog.blocks[bi].len() + 2, "seed {seed} block {bi}");
        }
    }
}

#[test]
fn branches_stay_last_in_emitted_code() {
    let mut sc = SchedCtx::new();
    for seed in 0..20u64 {
        let prog = random_program(&ProgParams {
            blocks: 2,
            insts_per_block: 10,
            with_branches: true,
            seed: seed * 17 + 3,
            ..ProgParams::default()
        });
        let g = build_trace_graph(&prog, &LatencyModel::fig3());
        let machine = MachineModel::single_unit(4);
        let res = schedule_trace(
            &mut sc,
            &g,
            &machine,
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .unwrap();
        for (bi, order) in res.block_orders.iter().enumerate() {
            let last = *order.last().unwrap();
            assert!(
                g.node(last).label.starts_with("bt") || g.node(last).label.starts_with("b"),
                "seed {seed} block {bi}: branch not last ({})",
                g.node(last).label
            );
        }
    }
}

#[test]
fn loop_programs_keep_recurrences_through_scheduling() {
    let mut sc = SchedCtx::new();
    for seed in 0..10u64 {
        let prog = random_program(&ProgParams {
            blocks: 1,
            insts_per_block: 12,
            is_loop: true,
            accumulators: 2,
            seed: seed * 29 + 1,
            ..ProgParams::default()
        });
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        let machine = MachineModel::single_unit(2);
        let res = asched::core::schedule_single_block_loop(
            &mut sc,
            &g,
            &machine,
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .unwrap();
        // The chosen order covers the block exactly once.
        assert_eq!(res.order.len(), g.len(), "seed {seed}");
        // And respects loop-independent dependences.
        let pos: std::collections::HashMap<_, _> =
            res.order.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        for id in g.node_ids() {
            for e in g.out_edges_li(id) {
                assert!(pos[&e.src] < pos[&e.dst], "seed {seed}: {e}");
            }
        }
    }
}
