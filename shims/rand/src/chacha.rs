//! ChaCha12 block generator, bit-compatible with `rand_chacha`'s
//! `ChaCha12Rng` as used by `rand 0.8`'s `StdRng`.
//!
//! The layout follows the original ChaCha definition: four constant
//! words, eight key words, a 64-bit block counter (words 12–13) and a
//! 64-bit stream id (words 14–15, zero for `seed_from_u64`). Like
//! `rand_chacha`, refills produce four 64-byte blocks (64 `u32` words)
//! at a time, which matters for `next_u64` calls that straddle a refill
//! boundary.

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 12;
/// Words per refill: 4 ChaCha blocks of 16 words each.
pub const BUFFER_WORDS: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn block(key: &[u32; 8], counter: u64, out: &mut [u32]) {
    let mut initial = [0u32; 16];
    initial[..4].copy_from_slice(&CONSTANTS);
    initial[4..12].copy_from_slice(key);
    initial[12] = counter as u32;
    initial[13] = (counter >> 32) as u32;
    // Words 14-15: stream id, zero.
    let mut state = initial;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *o = s.wrapping_add(*i);
    }
}

/// The buffered ChaCha12 word stream.
#[derive(Clone, Debug)]
pub struct ChaCha12 {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; BUFFER_WORDS],
    /// Next unread word; `BUFFER_WORDS` means "refill before reading".
    index: usize,
}

impl ChaCha12 {
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha12 {
            key,
            counter: 0,
            buffer: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }

    fn refill(&mut self) {
        for b in 0..4 {
            block(
                &self.key,
                self.counter.wrapping_add(b as u64),
                &mut self.buffer[b * 16..(b + 1) * 16],
            );
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    /// Mirrors `rand_core::block::BlockRng::next_u64`, including the
    /// case where the two halves straddle a refill.
    pub fn next_u64(&mut self) -> u64 {
        let i = self.index;
        if i < BUFFER_WORDS - 1 {
            self.index = i + 2;
            (u64::from(self.buffer[i + 1]) << 32) | u64::from(self.buffer[i])
        } else if i >= BUFFER_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buffer[1]) << 32) | u64::from(self.buffer[0])
        } else {
            let lo = u64::from(self.buffer[BUFFER_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buffer[0]) << 32) | lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// IETF RFC 7539 §2.3.2 test vector, adapted: the RFC uses a 32-bit
    /// counter plus 96-bit nonce and 20 rounds, so this drives the raw
    /// 20-round block function on the RFC's state directly to validate
    /// the quarter-round and output ordering.
    #[test]
    fn rfc7539_block_function() {
        let mut state: [u32; 16] = [
            0x61707865, 0x3320646e, 0x79622d32, 0x6b206574, // constants
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, // key
            0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c, // key
            0x00000001, 0x09000000, 0x4a000000, 0x00000000, // ctr + nonce
        ];
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(*i);
        }
        let expected: [u32; 16] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, //
            0xc7f4d1c7, 0x0368c033, 0x9aaa2204, 0x4e6cd4c3, //
            0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, //
            0xd19c12b5, 0xb94e16de, 0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(state, expected);
    }

    #[test]
    fn u64_straddles_refill_like_block_rng() {
        let mut a = ChaCha12::from_seed([7u8; 32]);
        let mut b = ChaCha12::from_seed([7u8; 32]);
        // Consume an odd number of u32s so the next u64 straddles.
        for _ in 0..BUFFER_WORDS - 1 {
            a.next_u32();
            b.next_u32();
        }
        let lo = b.next_u32() as u64; // last word of the old buffer
        let hi = b.next_u32() as u64; // first word of the new buffer
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }
}
