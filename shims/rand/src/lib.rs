//! Offline drop-in subset of `rand 0.8`.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the exact slice of the `rand` API this workspace uses:
//! `StdRng` (+ `SeedableRng::seed_from_u64`/`from_seed`), and `Rng` with
//! `gen`, `gen_range` (half-open and inclusive integer ranges),
//! `gen_bool` and `fill`. It is **bit-compatible** with `rand 0.8.5` for
//! these paths — `StdRng` is ChaCha12 seeded through `rand_core`'s
//! PCG-style `seed_from_u64` expansion, integer ranges use the 0.8
//! widening-multiply rejection sampler and `gen_bool` the fixed-point
//! Bernoulli — so every seeded workload in this repository generates the
//! same values it did when built against the real crate (verified
//! against the committed `repro_output.txt`).

mod chacha;

pub mod rngs {
    //! The standard RNG.
    use crate::chacha::ChaCha12;
    use crate::{RngCore, SeedableRng};

    /// The `rand 0.8` standard RNG: ChaCha with 12 rounds.
    #[derive(Clone, Debug)]
    pub struct StdRng(ChaCha12);

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(ChaCha12::from_seed(seed))
        }
    }
}

/// The parts of [`RngCore`] this shim implements.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the same PCG32-based
    /// stream `rand_core 0.6` uses (so seeds match the real crate).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling helpers over an [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        // rand 0.8 Bernoulli: p as a 64-bit fixed-point fraction of 2^64.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 significant bits in [0, 1).
        let fraction = rng.next_u64() >> 11;
        fraction as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

// Widening-multiply rejection sampling (rand 0.8's
// `UniformInt::sample_single`): draw a full-width word, take the high
// part of `word * range`, rejecting low parts past the unbiased zone.
macro_rules! uniform_impl {
    ($ty:ty, $large:ty, $wide:ty, $draw:expr) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let range = (self.end as $large).wrapping_sub(self.start as $large);
                let draw: fn(&mut R) -> $large = $draw;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = draw(rng);
                    let m = (v as $wide) * (range as $wide);
                    let (hi, lo) = ((m >> <$large>::BITS) as $large, m as $large);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let range = (end as $large)
                    .wrapping_sub(start as $large)
                    .wrapping_add(1);
                let draw: fn(&mut R) -> $large = $draw;
                if range == 0 {
                    return draw(rng) as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = draw(rng);
                    let m = (v as $wide) * (range as $wide);
                    let (hi, lo) = ((m >> <$large>::BITS) as $large, m as $large);
                    if lo <= zone {
                        return start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_impl!(u32, u32, u64, |r| r.next_u32());
uniform_impl!(i32, u32, u64, |r| r.next_u32());
uniform_impl!(u64, u64, u128, |r| r.next_u64());
uniform_impl!(usize, u64, u128, |r| r.next_u64());
uniform_impl!(i64, u64, u128, |r| r.next_u64());

// Floats: rand 0.8 samples the half-open range via `Standard` scaling
// (`UniformFloat::sample_single` = value01 * scale + offset, computed as
// v * (high - low) + low with a single multiply-add shape).
impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let scale = self.end - self.start;
        let fraction = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // rand 0.8's sample_single: fraction * scale + low.
        fraction * scale + self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0u32..=4);
            assert!(w <= 4);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let trues = (0..4000).filter(|_| r.gen_bool(0.5)).count();
        assert!((1600..2400).contains(&trues), "suspicious balance {trues}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
