//! Offline drop-in subset of `proptest`.
//!
//! The build environment has no access to crates.io, so this shim
//! implements the slice of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map`, strategies for integer/float
//! ranges, tuples, `any::<T>()`, `collection::vec`, `char::any()`,
//! regex-shaped string patterns of the form `"[class]{lo,hi}"`, the
//! [`proptest!`] macro with `#![proptest_config(..)]`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics immediately; the drop guard
//!   prints the generated inputs so the case can be reconstructed.
//! * **Deterministic seeding.** Cases derive from a fixed seed plus the
//!   test name, so runs are reproducible without a persistence file
//!   (`.proptest-regressions` files are ignored).

use rand::rngs::StdRng;
use rand::Rng;

/// Re-exports that `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// The per-test RNG handed to strategies.
pub type TestRng = StdRng;

/// Subset of proptest's run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);

/// `&str` patterns act as regex-shaped string strategies. Only the
/// `[class]{lo,hi}` and `.{lo,hi}` shapes (a single character class or
/// the any-char dot, with a repetition count) are supported; anything
/// else panics so misuse is loud.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        if let Some((lo, hi)) = parse_dot_pattern(self) {
            let len = rng.gen_range(lo..=hi);
            let any = crate::char::any();
            return (0..len).map(|_| any.new_value(rng)).collect();
        }
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern `{self}` (shim)"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parse `.{lo,hi}` into (lo, hi).
fn parse_dot_pattern(pat: &str) -> Option<(usize, usize)> {
    let counts = pat
        .strip_prefix('.')?
        .strip_prefix('{')?
        .strip_suffix('}')?;
    match counts.split_once(',') {
        Some((a, b)) => Some((a.parse().ok()?, b.parse().ok()?)),
        None => {
            let n: usize = counts.parse().ok()?;
            Some((n, n))
        }
    }
}

/// Parse `[...]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = {
        // Find the unescaped closing bracket.
        let mut idx = None;
        let mut escape = false;
        for (i, c) in rest.char_indices() {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == ']' {
                idx = Some(i);
                break;
            }
        }
        idx?
    };
    let class: Vec<char> = {
        let mut out = Vec::new();
        let body: Vec<char> = rest[..close].chars().collect();
        let mut i = 0;
        while i < body.len() {
            match body[i] {
                '\\' if i + 1 < body.len() => {
                    out.push(body[i + 1]);
                    i += 2;
                }
                a if i + 2 < body.len() && body[i + 1] == '-' => {
                    for c in a..=body[i + 2] {
                        out.push(c);
                    }
                    i += 3;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    };
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    if class.is_empty() {
        return None;
    }
    Some((class, lo, hi))
}

/// `any::<T>()`: the full-range strategy for primitives.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($ty:ty : $m:ident),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::$m(rng) as $ty
            }
        }
    )*};
}

arbitrary_uint!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u32(rng) & 1 == 1
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod char {
    //! Character strategies.
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Any valid `char` (uniform over scalar values, surrogates skipped).
    pub fn any() -> CharStrategy {
        CharStrategy
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct CharStrategy;

    impl Strategy for CharStrategy {
        type Value = char;
        fn new_value(&self, rng: &mut TestRng) -> char {
            // Bias half the draws towards ASCII: parser-robustness style
            // consumers overwhelmingly care about printable input, and
            // the real crate biases similarly.
            if rng.gen_bool(0.5) {
                return core::char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap();
            }
            loop {
                if let Some(c) = core::char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                    return c;
                }
            }
        }
    }
}

pub mod test_runner {
    //! Support machinery used by the [`crate::proptest!`] expansion.
    use super::TestRng;
    use rand::SeedableRng;

    /// FNV-1a, used to derive a per-test seed from the test's name.
    pub fn seed_for(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x5EED)
    }

    /// Prints the failing case's inputs if the test body panics.
    pub struct PanicGuard {
        info: String,
        armed: bool,
    }

    impl PanicGuard {
        /// Arm a guard describing the current case.
        pub fn new(info: String) -> Self {
            PanicGuard { info, armed: true }
        }
        /// The case completed; do not report on drop.
        pub fn disarm(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for PanicGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!("proptest case failed with inputs:\n{}", self.info);
            }
        }
    }
}

/// The property-test macro. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                // Generate into a tuple first so the failing inputs can
                // be reported even when the patterns destructure them.
                let __vals = ( $($crate::Strategy::new_value(&$strat, &mut rng),)+ );
                let mut guard = $crate::test_runner::PanicGuard::new(format!(
                    concat!("  case #{}\n  (", stringify!($($arg),+), ") = {:?}"),
                    case, &__vals,
                ));
                let ( $($arg,)+ ) = __vals;
                $body
                guard.disarm();
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// `prop_assert!`: assert inside a property (panics in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `prop_assert_eq!`: assert_eq inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::seed_for;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = parse_class_pattern("[a-c0-1 \\]x-]{0,40}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 40);
        for c in ['a', 'b', 'c', '0', '1', ' ', ']', 'x', '-'] {
            assert!(chars.contains(&c), "missing {c:?}");
        }
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = seed_for("string_strategy", 0);
        for _ in 0..100 {
            let s = "[ab]{2,5}".new_value(&mut rng);
            assert!((2..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (1usize..5, 0.0f64..1.0).prop_map(|(n, f)| (n * 2, f));
        let mut rng = seed_for("map_tuples", 0);
        for _ in 0..50 {
            let (n, f) = strat.new_value(&mut rng);
            assert!(n % 2 == 0 && (2..10).contains(&n));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let strat = collection::vec(0u32..10, 0..4);
        let mut rng = seed_for("vec_sizes", 0);
        for _ in 0..50 {
            let v = strat.new_value(&mut rng);
            assert!(v.len() < 4);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u32..100, v in collection::vec(0u32..10, 0..3)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 10).count(), 0);
        }
    }
}
