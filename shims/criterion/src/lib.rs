//! Offline drop-in subset of `criterion`.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! `cargo bench` working with the same source: it runs each benchmark
//! closure for the configured measurement window and prints a simple
//! `name ... median time` line. No statistics, plots or baselines.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench configuration and registry handle.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }
    /// Warm-up duration before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }
    /// Measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Things acceptable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion);
        f(&mut b);
        b.report(&self.name, &id.into_id());
        self
    }

    /// Run one benchmark with an input handle.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion);
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(c: &Criterion) -> Self {
        Bencher {
            sample_size: c.sample_size,
            warm_up_time: c.warm_up_time,
            measurement_time: c.measurement_time,
            samples: Vec::new(),
        }
    }

    /// Time `routine`, collecting `sample_size` samples within the
    /// measurement window.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters == 0 {
            black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed() / iters.max(1) as u32;
        // Size each sample so all samples fit in the measurement window.
        let budget = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters_per_sample);
        }
    }

    fn report(&self, group: &str, id: &str) {
        let mut s = self.samples.clone();
        if s.is_empty() {
            println!("{group}/{id}: no samples (bencher.iter never called)");
            return;
        }
        s.sort_unstable();
        let median = s[s.len() / 2];
        let (lo, hi) = (s[0], s[s.len() - 1]);
        println!(
            "{group}/{id}: median {median:?} (min {lo:?}, max {hi:?}, {} samples)",
            s.len()
        );
    }
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
