//! The content-addressed schedule cache and the deterministic batch
//! plan built on top of it.
//!
//! Determinism is the whole design: cache hits, misses and evictions
//! are decided in a **sequential plan phase** over the batch in input
//! order, *before* any worker thread runs. The plan simulates FIFO
//! residency with a capacity cap, so the cache counters — and the
//! `cache_query` / `cache_evict` event stream — are identical whether
//! the batch later executes on 1 worker or 8. A task planned as a hit
//! never waits on a thread: it either reuses a `Ready` value from a
//! previous batch or aliases the in-flight computation of an earlier
//! task in the same batch, which the emit phase resolves after the
//! worker pool has drained.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::engine::TaskValue;
use crate::fingerprint::Fingerprint;

/// One cache slot: a finished value, or the compute-slot index of an
/// earlier task in the *current* batch that will produce it.
pub(crate) enum Slot {
    Pending(usize),
    Ready(Arc<TaskValue>),
}

/// FIFO-evicting map from fingerprint to cached schedule.
pub(crate) struct ScheduleCache {
    map: HashMap<u128, Slot>,
    fifo: VecDeque<u128>,
    capacity: usize,
}

/// How the plan phase resolved one task of a batch.
pub(crate) enum PlanKind {
    /// Run the scheduler; the payload is this task's compute-slot index.
    Compute(usize),
    /// Reuse a value cached by a previous batch.
    Ready(Arc<TaskValue>),
    /// Reuse compute slot `i` of this batch (an earlier duplicate).
    Alias(usize),
}

/// Per-task plan entry, including what the emit phase must report.
pub(crate) struct TaskPlan {
    pub kind: PlanKind,
    /// Outcome of the cache query (`None` = cache disabled, no query).
    pub hit: Option<bool>,
    /// Eviction triggered by this task's insert: `(key, resident_after)`.
    pub evicted: Option<(u128, u64)>,
    /// Shard the fingerprint maps to (`None` for the private,
    /// unsharded cache). Attributes both the query and any eviction —
    /// an insert only ever evicts within its own shard.
    pub shard: Option<u32>,
    /// Whether a hit was served by an entry loaded from a cache file
    /// (warm-start) rather than computed by this process.
    pub warm: bool,
}

impl ScheduleCache {
    pub fn new(capacity: usize) -> Self {
        ScheduleCache {
            map: HashMap::new(),
            fifo: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Resident entry count (reported through [`crate::BatchReport`]).
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Capacity cap in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Plan one task in input order. Returns the plan entry and whether
    /// the task needs a compute slot (the caller allocates those
    /// contiguously so slot indices equal compute order).
    pub fn plan(&mut self, fp: Fingerprint, next_slot: usize) -> TaskPlan {
        match self.map.get(&fp.0) {
            Some(Slot::Ready(v)) => TaskPlan {
                kind: PlanKind::Ready(Arc::clone(v)),
                hit: Some(true),
                evicted: None,
                shard: None,
                warm: false,
            },
            Some(Slot::Pending(slot)) => TaskPlan {
                kind: PlanKind::Alias(*slot),
                hit: Some(true),
                evicted: None,
                shard: None,
                warm: false,
            },
            None => {
                let mut evicted = None;
                if self.fifo.len() >= self.capacity {
                    if let Some(old) = self.fifo.pop_front() {
                        self.map.remove(&old);
                        evicted = Some((old, self.fifo.len() as u64));
                    }
                }
                self.map.insert(fp.0, Slot::Pending(next_slot));
                self.fifo.push_back(fp.0);
                TaskPlan {
                    kind: PlanKind::Compute(next_slot),
                    hit: Some(false),
                    evicted,
                    shard: None,
                    warm: false,
                }
            }
        }
    }

    /// After the worker pool drained: publish compute slot `slot`'s
    /// value under `fp`, unless the entry was evicted (or replaced by a
    /// later duplicate) while the batch ran its plan.
    pub fn publish(&mut self, fp: Fingerprint, slot: usize, value: &Arc<TaskValue>) {
        if let Some(entry) = self.map.get_mut(&fp.0) {
            if matches!(entry, Slot::Pending(p) if *p == slot) {
                *entry = Slot::Ready(Arc::clone(value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value() -> Arc<TaskValue> {
        Arc::new(TaskValue {
            result: None,
            degraded: false,
            error: None,
        })
    }

    #[test]
    fn fifo_eviction_is_in_insert_order() {
        let mut c = ScheduleCache::new(2);
        let (a, b, d) = (Fingerprint(1), Fingerprint(2), Fingerprint(3));
        assert!(matches!(c.plan(a, 0).kind, PlanKind::Compute(0)));
        assert!(matches!(c.plan(b, 1).kind, PlanKind::Compute(1)));
        // A duplicate within the batch aliases the pending slot.
        let dup = c.plan(a, 2);
        assert!(matches!(dup.kind, PlanKind::Alias(0)));
        assert_eq!(dup.hit, Some(true));
        // Inserting a third entry evicts the oldest (a).
        let p = c.plan(d, 2);
        assert_eq!(p.evicted, Some((1, 1)));
        // a is gone, so it recomputes; b is still resident.
        assert!(matches!(c.plan(b, 3).kind, PlanKind::Alias(1)));
        assert!(matches!(c.plan(a, 3).kind, PlanKind::Compute(3)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn publish_upgrades_pending_to_ready() {
        let mut c = ScheduleCache::new(4);
        let fp = Fingerprint(9);
        c.plan(fp, 0);
        c.publish(fp, 0, &value());
        assert!(matches!(c.plan(fp, 1).kind, PlanKind::Ready(_)));
    }

    #[test]
    fn publish_ignores_stale_slots() {
        let mut c = ScheduleCache::new(1);
        let (a, b) = (Fingerprint(1), Fingerprint(2));
        c.plan(a, 0);
        c.plan(b, 1); // evicts a's pending entry
        c.publish(a, 0, &value()); // stale: must not resurrect a
        assert!(matches!(c.plan(a, 2).kind, PlanKind::Compute(2)));
    }
}
