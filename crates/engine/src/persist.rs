//! Append-only on-disk persistence for the shared schedule cache.
//!
//! A cache file is a header followed by a stream of self-framed
//! records, all little-endian:
//!
//! ```text
//! header: b"ASCHEDC1" | u32 format_version (= 1)
//!         | u32 domain_len | domain bytes (FINGERPRINT_DOMAIN)
//! record: u32 payload_len | u32 crc32(payload) | u128 fingerprint
//!         | payload
//! payload: u128 fingerprint (again) | TaskValue encoding
//! ```
//!
//! The design goals are crash-safety and forward-compatibility, not
//! compactness:
//!
//! - **Append-only.** Writers only ever append whole records and never
//!   rewrite earlier bytes, so a crash can at worst leave a torn tail.
//! - **CRC-validated.** The payload is covered by CRC-32 (IEEE). A
//!   length that overruns the file, a failed CRC or an undecodable
//!   payload ends the load: the valid prefix is kept, the tail is
//!   truncated on the next writer attach, and loading is never fatal.
//! - **Fingerprint-revalidated.** The fingerprint is stored twice —
//!   once in the frame (outside the CRC) and once inside the payload.
//!   A mismatch means the frame was damaged without breaking the CRC
//!   framing; that record alone is dropped and the load continues.
//! - **Domain-stamped.** The header embeds
//!   [`FINGERPRINT_DOMAIN`](crate::fingerprint::FINGERPRINT_DOMAIN),
//!   so a file written under an older fingerprint scheme is rejected
//!   wholesale instead of silently mis-keying entries.
//!
//! Only *storable* values are persisted: a completed, non-degraded
//! schedule. Degraded (budget-truncated or fallback) values depend on
//! how much work the producer was allowed to do, which is exactly what
//! the cache key deliberately excludes.

use asched_core::TraceResult;
use asched_graph::{BlockId, NodeId, Schedule};

use crate::engine::TaskValue;
use crate::fingerprint::FINGERPRINT_DOMAIN;

/// File magic: "asched cache, frame format 1".
pub const MAGIC: &[u8; 8] = b"ASCHEDC1";
/// Frame-format version.
pub const FORMAT_VERSION: u32 = 1;
/// Upper bound on a single record payload; anything larger is treated
/// as a torn/corrupt length field.
const MAX_PAYLOAD: usize = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the same
/// checksum gzip/PNG use. Bitwise, table-free: cache records are
/// written once per distinct fingerprint, so this is nowhere near a
/// hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The canonical file header for the current fingerprint domain.
pub fn header() -> Vec<u8> {
    let domain = FINGERPRINT_DOMAIN.as_bytes();
    let mut out = Vec::with_capacity(16 + domain.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(domain.len() as u32).to_le_bytes());
    out.extend_from_slice(domain);
    out
}

/// Validate the header; returns the offset of the first record, or
/// `None` when the magic, version or fingerprint domain don't match.
pub fn check_header(bytes: &[u8]) -> Option<usize> {
    let expect = header();
    (bytes.len() >= expect.len() && bytes[..expect.len()] == expect[..]).then_some(expect.len())
}

/// Everything one decode pass recovered from a (possibly damaged)
/// cache file image.
#[derive(Debug, Default)]
pub struct Decoded {
    /// Valid records in file order (later duplicates supersede earlier).
    pub records: Vec<(u128, TaskValue)>,
    /// Byte length of the valid prefix: the header plus every intact
    /// frame. A writer attaching to this file truncates to here first.
    /// `0` means the header itself was missing or from another domain.
    pub valid_len: usize,
    /// CRC-intact frames dropped for a fingerprint mismatch or an
    /// undecodable payload.
    pub skipped: u64,
}

/// Decode a whole file image, recovering the valid prefix. Never
/// panics on arbitrary input; every read is bounds-checked.
pub fn decode_file(bytes: &[u8]) -> Decoded {
    let mut out = Decoded::default();
    let Some(start) = check_header(bytes) else {
        return out;
    };
    let mut pos = start;
    out.valid_len = pos;
    loop {
        let Some(frame) = (|| {
            let len = read_u32(bytes, pos)? as usize;
            if !(16..=MAX_PAYLOAD).contains(&len) {
                return None;
            }
            let crc = read_u32(bytes, pos + 4)?;
            let fp_frame = read_u128(bytes, pos + 8)?;
            let payload = bytes.get(pos + 24..pos + 24 + len)?;
            if crc32(payload) != crc {
                return None;
            }
            Some((fp_frame, payload))
        })() else {
            // Torn or corrupt tail: keep the prefix, stop here.
            return out;
        };
        let (fp_frame, payload) = frame;
        pos += 24 + payload.len();
        out.valid_len = pos;
        // The frame is intact; a bad fingerprint or payload drops only
        // this record.
        let fp_payload = read_u128(payload, 0).expect("len >= 16 checked above");
        match decode_value(&payload[16..]) {
            Some(value) if fp_payload == fp_frame => out.records.push((fp_frame, value)),
            _ => out.skipped += 1,
        }
    }
}

/// Encode one record frame, ready to append. `None` when the value is
/// not storable (failed or degraded — see the module docs).
pub fn encode_record(fp: u128, value: &TaskValue) -> Option<Vec<u8>> {
    let body = encode_value(value)?;
    let mut payload = Vec::with_capacity(16 + body.len());
    payload.extend_from_slice(&fp.to_le_bytes());
    payload.extend_from_slice(&body);
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&fp.to_le_bytes());
    out.extend_from_slice(&payload);
    Some(out)
}

/// Whether a value may be persisted (and shared): a completed,
/// non-degraded schedule.
pub fn storable(value: &TaskValue) -> bool {
    value.result.is_some() && !value.degraded && value.error.is_none()
}

// ---- TaskValue body encoding -------------------------------------------
//
// Hand-rolled little-endian encoding (the build is hermetic; there is
// no serde). The only values persisted are storable ones, so the body
// is exactly one `TraceResult`.

fn encode_value(value: &TaskValue) -> Option<Vec<u8>> {
    if !storable(value) {
        return None;
    }
    let r = value.result.as_ref()?;
    let mut out = Vec::new();
    out.extend_from_slice(&r.makespan.to_le_bytes());
    put_ids(&mut out, &r.permutation);
    out.extend_from_slice(&(r.blocks.len() as u32).to_le_bytes());
    for b in &r.blocks {
        out.extend_from_slice(&b.0.to_le_bytes());
    }
    out.extend_from_slice(&(r.block_orders.len() as u32).to_le_bytes());
    for order in &r.block_orders {
        put_ids(&mut out, order);
    }
    // Schedule: capacity, then one presence-tagged (start, unit, exec)
    // triple per node slot.
    let s = &r.predicted;
    out.extend_from_slice(&(s.capacity() as u32).to_le_bytes());
    for i in 0..s.capacity() {
        let id = NodeId(i as u32);
        match (s.start(id), s.completion(id), s.unit(id)) {
            (Some(start), Some(end), Some(unit)) => {
                out.push(1);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
                out.extend_from_slice(&(unit as u32).to_le_bytes());
            }
            _ => out.push(0),
        }
    }
    Some(out)
}

/// Decode a value body. Returns `None` on any structural violation —
/// including anything that would make [`Schedule::assign`] panic
/// (zero-length execution, out-of-range node) — so a loader never
/// trusts bytes it can't prove safe.
fn decode_value(bytes: &[u8]) -> Option<TaskValue> {
    let mut pos = 0usize;
    let makespan = read_u64(bytes, pos)?;
    pos += 8;
    let (permutation, n) = get_ids(bytes, pos)?;
    pos = n;
    let blocks_len = read_u32(bytes, pos)? as usize;
    pos += 4;
    if blocks_len > bytes.len() {
        return None;
    }
    let mut blocks = Vec::with_capacity(blocks_len);
    for _ in 0..blocks_len {
        blocks.push(BlockId(read_u32(bytes, pos)?));
        pos += 4;
    }
    let orders_len = read_u32(bytes, pos)? as usize;
    pos += 4;
    if orders_len > bytes.len() {
        return None;
    }
    let mut block_orders = Vec::with_capacity(orders_len);
    for _ in 0..orders_len {
        let (order, n) = get_ids(bytes, pos)?;
        block_orders.push(order);
        pos = n;
    }
    let capacity = read_u32(bytes, pos)? as usize;
    pos += 4;
    if capacity > bytes.len() {
        return None;
    }
    let mut predicted = Schedule::new(capacity);
    for i in 0..capacity {
        let tag = *bytes.get(pos)?;
        pos += 1;
        match tag {
            0 => {}
            1 => {
                let start = read_u64(bytes, pos)?;
                let end = read_u64(bytes, pos + 8)?;
                let unit = read_u32(bytes, pos + 16)? as usize;
                pos += 20;
                // `assign` asserts exec_time >= 1 and in-range ids;
                // prove both before calling it.
                let exec = end.checked_sub(start)?;
                let exec = u32::try_from(exec).ok()?;
                if exec == 0 {
                    return None;
                }
                predicted.assign(NodeId(i as u32), start, unit, exec);
            }
            _ => return None,
        }
    }
    if permutation.iter().any(|id| id.index() >= capacity) {
        return None;
    }
    if pos != bytes.len() {
        return None;
    }
    Some(TaskValue {
        result: Some(TraceResult {
            permutation,
            predicted,
            makespan,
            block_orders,
            blocks,
        }),
        degraded: false,
        error: None,
    })
}

fn put_ids(out: &mut Vec<u8>, ids: &[NodeId]) {
    out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for id in ids {
        out.extend_from_slice(&id.0.to_le_bytes());
    }
}

/// Read a length-prefixed id list; returns `(ids, next_offset)`.
fn get_ids(bytes: &[u8], pos: usize) -> Option<(Vec<NodeId>, usize)> {
    let len = read_u32(bytes, pos)? as usize;
    // A length field can claim anything; cap it by what the buffer
    // could possibly hold before allocating.
    if len > bytes.len() / 4 + 1 {
        return None;
    }
    let mut ids = Vec::with_capacity(len);
    let mut at = pos + 4;
    for _ in 0..len {
        ids.push(NodeId(read_u32(bytes, at)?));
        at += 4;
    }
    Some((ids, at))
}

fn read_u32(bytes: &[u8], pos: usize) -> Option<u32> {
    Some(u32::from_le_bytes(
        bytes.get(pos..pos + 4)?.try_into().ok()?,
    ))
}

fn read_u64(bytes: &[u8], pos: usize) -> Option<u64> {
    Some(u64::from_le_bytes(
        bytes.get(pos..pos + 8)?.try_into().ok()?,
    ))
}

fn read_u128(bytes: &[u8], pos: usize) -> Option<u128> {
    Some(u128::from_le_bytes(
        bytes.get(pos..pos + 16)?.try_into().ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_value(seed: u64) -> TaskValue {
        let mut predicted = Schedule::new(4);
        predicted.assign(NodeId(0), seed, 0, 2);
        predicted.assign(NodeId(2), seed + 3, 1, 1);
        TaskValue {
            result: Some(TraceResult {
                permutation: vec![NodeId(0), NodeId(2)],
                predicted,
                makespan: seed + 5,
                block_orders: vec![vec![NodeId(0)], vec![], vec![NodeId(2)]],
                blocks: vec![BlockId(0), BlockId(1)],
            }),
            degraded: false,
            error: None,
        }
    }

    fn file_with(records: &[(u128, TaskValue)]) -> Vec<u8> {
        let mut out = header();
        for (fp, v) in records {
            out.extend_from_slice(&encode_record(*fp, v).unwrap());
        }
        out
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let file = file_with(&[(7, sample_value(10)), (9, sample_value(20))]);
        let dec = decode_file(&file);
        assert_eq!(dec.valid_len, file.len());
        assert_eq!(dec.skipped, 0);
        assert_eq!(dec.records.len(), 2);
        let (fp, v) = &dec.records[1];
        assert_eq!(*fp, 9);
        let r = v.result.as_ref().unwrap();
        assert_eq!(r.makespan, 25);
        assert_eq!(r.permutation, vec![NodeId(0), NodeId(2)]);
        assert_eq!(r.predicted.start(NodeId(2)), Some(23));
        assert_eq!(r.predicted.completion(NodeId(2)), Some(24));
        assert_eq!(r.predicted.unit(NodeId(0)), Some(0));
        assert_eq!(r.predicted.start(NodeId(1)), None);
        assert_eq!(r.blocks, vec![BlockId(0), BlockId(1)]);
        assert_eq!(r.block_orders.len(), 3);
    }

    #[test]
    fn degraded_and_failed_values_are_not_storable() {
        let mut v = sample_value(1);
        v.degraded = true;
        assert!(encode_record(1, &v).is_none());
        let failed = TaskValue {
            result: None,
            degraded: true,
            error: Some("boom".into()),
        };
        assert!(encode_record(1, &failed).is_none());
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let file = file_with(&[(7, sample_value(10)), (9, sample_value(20))]);
        let first_end = decode_file(&file_with(&[(7, sample_value(10))])).valid_len;
        // Cut mid-way through the second record.
        let torn = &file[..first_end + 5];
        let dec = decode_file(torn);
        assert_eq!(dec.valid_len, first_end);
        assert_eq!(dec.records.len(), 1);
        assert_eq!(dec.records[0].0, 7);
    }

    #[test]
    fn frame_fingerprint_mismatch_drops_only_that_record() {
        let mut file = file_with(&[(7, sample_value(10)), (9, sample_value(20))]);
        let hdr = header().len();
        // Flip a byte of the first record's *frame* fingerprint — the
        // CRC (payload-only) still passes, so framing stays intact.
        file[hdr + 8] ^= 0xFF;
        let dec = decode_file(&file);
        assert_eq!(dec.valid_len, file.len());
        assert_eq!(dec.skipped, 1);
        assert_eq!(dec.records.len(), 1);
        assert_eq!(dec.records[0].0, 9);
    }

    #[test]
    fn wrong_domain_rejects_the_whole_file() {
        let mut file = file_with(&[(7, sample_value(10))]);
        let domain_at = MAGIC.len() + 8; // magic + version + len
        file[domain_at + 15] ^= 1; // "...v2" -> "...v3"
        let dec = decode_file(&file);
        assert_eq!(dec.valid_len, 0);
        assert!(dec.records.is_empty());
    }
}
