//! Corpus construction: manifest parsing and seeded synthesis.
//!
//! A corpus manifest is a plain text file, one task per line (the
//! build is hermetic — no serde — so the format is `key=value` words):
//!
//! ```text
//! # kind   parameters...                          machine
//! dag  nodes=36 blocks=4 edge_prob=0.3 seed=7     w=4 units=1
//! seam blocks=5 fillers=3 seed=3                  w=2 units=1
//! prog blocks=3 insts=10 regs=8 seed=11           w=4 units=rs6000
//! ```
//!
//! Kinds map onto the `asched-workloads` generators: `dag` →
//! [`random_trace_dag`], `seam` → [`seam_trace`], `prog` →
//! [`random_program`] lowered through `asched-ir`'s dependence
//! analysis with the paper's Figure-3 latencies. Unspecified keys keep
//! the generator's defaults; `w` (window) and `units` (a unit count or
//! `rs6000`) describe the machine, `label` overrides the default
//! `kind:seed:wW` label.

use asched_graph::MachineModel;
use asched_ir::{build_trace_graph, LatencyModel};
use asched_workloads::{random_program, random_trace_dag, seam_trace};
use asched_workloads::{DagParams, ProgParams, SeamParams};
use std::fmt;

use crate::engine::TraceTask;

/// Why a manifest failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusError {
    /// 1-based manifest line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CorpusError {}

fn err(line: usize, message: impl Into<String>) -> CorpusError {
    CorpusError {
        line,
        message: message.into(),
    }
}

struct Line<'a> {
    no: usize,
    pairs: Vec<(&'a str, &'a str)>,
    used: Vec<bool>,
}

impl<'a> Line<'a> {
    fn parse(no: usize, words: &[&'a str]) -> Result<Self, CorpusError> {
        let mut pairs = Vec::new();
        for w in words {
            let (k, v) = w
                .split_once('=')
                .ok_or_else(|| err(no, format!("expected key=value, got {w:?}")))?;
            pairs.push((k, v));
        }
        let used = vec![false; pairs.len()];
        Ok(Line { no, pairs, used })
    }

    fn get(&mut self, key: &str) -> Option<&'a str> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if *k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn num<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, CorpusError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(self.no, format!("bad value for {key}: {v:?}"))),
        }
    }

    fn finish(&self) -> Result<(), CorpusError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(err(self.no, format!("unknown key {k:?}")));
            }
        }
        Ok(())
    }
}

fn machine_of(line: &mut Line<'_>) -> Result<MachineModel, CorpusError> {
    let w: usize = line.num("w", 4)?;
    if w < 1 {
        return Err(err(line.no, "w must be >= 1"));
    }
    let machine = match line.get("units") {
        None => MachineModel::single_unit(w),
        Some("rs6000") => MachineModel::rs6000_like(w),
        Some(v) => {
            let n: usize = v
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| err(line.no, format!("bad value for units: {v:?}")))?;
            MachineModel::uniform(n, w)
        }
    };
    Ok(machine)
}

/// Parse a corpus manifest into tasks. Blank lines and `#` comments are
/// skipped; errors carry the offending 1-based line number.
pub fn parse_manifest(text: &str) -> Result<Vec<TraceTask>, CorpusError> {
    let mut tasks = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let (kind, rest) = words.split_first().expect("non-empty line");
        let mut l = Line::parse(no, rest)?;
        let machine = machine_of(&mut l)?;
        let label_override = l.get("label").map(str::to_owned);
        let (graph, seed) = match *kind {
            "dag" => {
                let p = DagParams {
                    nodes: l.num("nodes", DagParams::default().nodes)?,
                    blocks: l.num("blocks", DagParams::default().blocks)?,
                    edge_prob: l.num("edge_prob", DagParams::default().edge_prob)?,
                    cross_prob: l.num("cross_prob", DagParams::default().cross_prob)?,
                    max_latency: l.num("max_latency", DagParams::default().max_latency)?,
                    max_exec: l.num("max_exec", DagParams::default().max_exec)?,
                    class_fraction: l.num("class_fraction", DagParams::default().class_fraction)?,
                    seed: l.num("seed", 0)?,
                };
                (random_trace_dag(&p), p.seed)
            }
            "seam" => {
                let p = SeamParams {
                    blocks: l.num("blocks", SeamParams::default().blocks)?,
                    fillers: l.num("fillers", SeamParams::default().fillers)?,
                    seam_latency: l.num("seam_latency", SeamParams::default().seam_latency)?,
                    chain_latency: l.num("chain_latency", SeamParams::default().chain_latency)?,
                    seed: l.num("seed", 0)?,
                };
                (seam_trace(&p), p.seed)
            }
            "prog" => {
                let p = ProgParams {
                    blocks: l.num("blocks", ProgParams::default().blocks)?,
                    insts_per_block: l.num("insts", ProgParams::default().insts_per_block)?,
                    regs: l.num("regs", ProgParams::default().regs)?,
                    mem_fraction: l.num("mem", ProgParams::default().mem_fraction)?,
                    mul_fraction: l.num("mul", ProgParams::default().mul_fraction)?,
                    is_loop: false,
                    accumulators: 0,
                    with_branches: l.num::<u8>("branches", 0)? != 0,
                    seed: l.num("seed", 0)?,
                };
                let prog = random_program(&p);
                (build_trace_graph(&prog, &LatencyModel::fig3()), p.seed)
            }
            other => return Err(err(no, format!("unknown task kind {other:?}"))),
        };
        l.finish()?;
        let label =
            label_override.unwrap_or_else(|| format!("{kind}:{seed}:w{w}", w = machine.window));
        tasks.push(TraceTask::new(label, graph, machine));
    }
    Ok(tasks)
}

/// Synthesize a seeded mixed corpus of `count` tasks.
///
/// Tasks cycle through the three generator families, and the parameter
/// space deliberately wraps (seed pool and window cycle repeat after
/// `3 × pool` variants per family) so a large corpus contains exact
/// duplicates — the workload a schedule cache exists for. The corpus
/// is a pure function of `(count, seed)`.
pub fn synth_corpus(count: usize, seed: u64) -> Vec<TraceTask> {
    const WINDOWS: [usize; 3] = [2, 4, 8];
    let pool = (count / 16).max(1) as u64;
    let mut tasks = Vec::with_capacity(count);
    for i in 0..count {
        let family = i % 3;
        let variant = (i / 3) as u64 % (3 * pool);
        let w = WINDOWS[(variant / pool) as usize];
        let sd = seed.wrapping_add(variant % pool);
        let (kind, graph) = match family {
            0 => (
                "dag",
                random_trace_dag(&DagParams {
                    nodes: 32,
                    blocks: 4,
                    edge_prob: 0.3,
                    cross_prob: 0.15,
                    seed: sd,
                    ..DagParams::default()
                }),
            ),
            1 => (
                "seam",
                seam_trace(&SeamParams {
                    blocks: 5,
                    fillers: 3,
                    seed: sd,
                    ..SeamParams::default()
                }),
            ),
            _ => {
                let prog = random_program(&ProgParams {
                    blocks: 3,
                    insts_per_block: 9,
                    with_branches: false,
                    seed: sd,
                    ..ProgParams::default()
                });
                ("prog", build_trace_graph(&prog, &LatencyModel::fig3()))
            }
        };
        tasks.push(TraceTask::new(
            format!("{kind}:{sd}:w{w}"),
            graph,
            MachineModel::single_unit(w),
        ));
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip() {
        let text = "\
# a comment\n\
\n\
dag nodes=12 blocks=2 seed=7 w=2 units=1\n\
seam blocks=3 fillers=2 seed=1 w=4   # trailing comment\n\
prog blocks=2 insts=6 seed=5 w=8 units=rs6000 label=hot-loop\n";
        let tasks = parse_manifest(text).unwrap();
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[0].label, "dag:7:w2");
        assert_eq!(tasks[0].graph.len(), 12);
        assert_eq!(tasks[0].machine.window, 2);
        assert_eq!(tasks[1].machine.window, 4);
        assert_eq!(tasks[2].label, "hot-loop");
        assert_eq!(tasks[2].machine.units.len(), 4);
    }

    #[test]
    fn manifest_errors_carry_line_numbers() {
        assert_eq!(parse_manifest("warp speed=9\n").unwrap_err().line, 1);
        assert_eq!(parse_manifest("dag nodes\n").unwrap_err().line, 1);
        assert_eq!(parse_manifest("\ndag nodes=zz\n").unwrap_err().line, 2);
        assert_eq!(parse_manifest("dag zorp=1\n").unwrap_err().line, 1);
        assert_eq!(parse_manifest("dag w=0\n").unwrap_err().line, 1);
    }

    #[test]
    fn synth_is_deterministic_and_contains_duplicates() {
        let a = synth_corpus(96, 42);
        let b = synth_corpus(96, 42);
        assert_eq!(a.len(), 96);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.graph.len(), y.graph.len());
        }
        // The parameter space wraps: 96 tasks over a pool of 6 seeds ×
        // 3 windows per family must repeat labels.
        let mut labels: Vec<&str> = a.iter().map(|t| t.label.as_str()).collect();
        let total = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert!(labels.len() < total, "expected duplicate tasks");
    }
}
