//! The batch engine: plan → parallel compute → deterministic emit.
//!
//! A batch runs in three phases:
//!
//! 1. **Plan** (sequential, caller thread): fingerprint every task in
//!    input order and resolve it against the schedule cache. All cache
//!    decisions — hit, miss, eviction — are made here, so they cannot
//!    depend on worker timing.
//! 2. **Compute** (parallel): the planned-compute tasks are sharded
//!    across a `std::thread::scope` worker pool. Each worker owns a
//!    [`SchedCtx`] reused across every task it computes, so analysis
//!    caches and scratch buffers stay warm. Each task runs under
//!    `catch_unwind`; a panic, scheduler error or exhausted step budget
//!    degrades the task to the per-block Rank schedule instead of
//!    aborting the batch. Workers buffer their events; nothing touches
//!    the caller's recorder concurrently.
//! 3. **Emit** (sequential, caller thread): results, buffered events
//!    and the engine's own `cache_query` / `cache_evict` / `task_done`
//!    events are replayed in input order.
//!
//! The phases make the engine's output — results, event stream (modulo
//! `pass_end` timestamps) and counters — a pure function of the input
//! corpus, independent of `jobs`.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use asched_core::{
    schedule_blocks_independent, schedule_trace, CoreError, LookaheadConfig, SchedCtx, SchedOpts,
    TraceResult,
};
use asched_graph::{DepGraph, MachineModel};
use asched_obs::{
    record, timed, timed_span, BufferRecorder, Event, OwnedEvent, Pass, Recorder, Severity,
    SpanAlloc, SpanId, SpanScope, TaskOutcome, NULL,
};
use asched_sim::{schedule_of, simulate, InstStream, IssuePolicy};

use crate::cache::{PlanKind, ScheduleCache, TaskPlan};
use crate::fingerprint::{fingerprint_task, Fingerprint};
use crate::shared_cache::{SharedProbe, SharedScheduleCache};

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads for the compute phase. `0` and `1` both mean
    /// in-line sequential execution on the caller's thread.
    pub jobs: usize,
    /// Enable the content-addressed schedule cache.
    pub cache: bool,
    /// Cache capacity in entries (FIFO eviction once full).
    pub cache_capacity: usize,
    /// Per-task step budget imposed on tasks that don't set their own
    /// (see [`LookaheadConfig::step_budget`]). Exhausting it degrades
    /// the task rather than failing the batch.
    pub step_budget: Option<u64>,
    /// Buffer each task's scheduler events and replay them into the
    /// caller's recorder in input order. Disable to skip per-event
    /// buffering when only the engine-level events matter (the batch
    /// CLI does this unless `--trace` is given). Irrelevant when the
    /// recorder is disabled — nothing is buffered then either way.
    pub capture: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            cache: false,
            cache_capacity: 1024,
            step_budget: None,
            capture: true,
        }
    }
}

/// One unit of work: schedule one trace graph on one machine model.
#[derive(Clone, Debug)]
pub struct TraceTask {
    /// Free-form label carried through to reports and diagnostics.
    pub label: String,
    /// The trace dependence graph.
    pub graph: DepGraph,
    /// Machine model (functional units + lookahead window `W`).
    pub machine: MachineModel,
    /// Scheduler configuration.
    pub config: LookaheadConfig,
}

impl TraceTask {
    /// A task with the default scheduler configuration.
    pub fn new(label: impl Into<String>, graph: DepGraph, machine: MachineModel) -> Self {
        TraceTask {
            label: label.into(),
            graph,
            machine,
            config: LookaheadConfig::default(),
        }
    }
}

/// The computed value behind a task (shared between duplicates via the
/// cache).
#[derive(Debug)]
pub struct TaskValue {
    /// The schedule, `None` when even the rank fallback failed.
    pub result: Option<TraceResult>,
    /// Whether this value came from the per-block Rank fallback.
    pub degraded: bool,
    /// Why the primary (or fallback) run failed, when it did.
    pub error: Option<String>,
}

/// Per-task outcome in deterministic input order.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Index of the task in the input batch.
    pub index: usize,
    /// The task's label.
    pub label: String,
    /// Content fingerprint (`None` when the cache was disabled and the
    /// fingerprint was never computed).
    pub fingerprint: Option<Fingerprint>,
    /// How the task was resolved.
    pub outcome: TaskOutcome,
    /// Makespan of the produced schedule (0 when `Failed`).
    pub makespan: u64,
    /// The full schedule (`None` when `Failed`).
    pub result: Option<TraceResult>,
    /// Failure/degradation detail, when any.
    pub error: Option<String>,
}

/// Everything a batch run produced.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-task reports, in input order.
    pub tasks: Vec<TaskReport>,
    /// Worker threads used for the compute phase.
    pub jobs: usize,
    /// Cache hits (including within-batch duplicate aliases).
    pub cache_hits: u64,
    /// Cache misses (tasks that went to the worker pool).
    pub cache_misses: u64,
    /// FIFO evictions performed while planning this batch.
    pub cache_evictions: u64,
    /// Tasks scheduled by Algorithm `Lookahead`.
    pub scheduled: u64,
    /// Tasks served from the cache.
    pub cached: u64,
    /// Tasks degraded to the per-block Rank fallback.
    pub degraded: u64,
    /// Tasks with no schedule at all.
    pub failed: u64,
    /// Entries resident in the cache after this batch published (the
    /// whole shared cache when one is attached). 0 with caching off.
    pub cache_resident: u64,
    /// Cache capacity in entries (total across shards for a shared
    /// cache). 0 with caching off.
    pub cache_capacity: u64,
    /// Wall-clock nanoseconds for the whole batch (plan + compute +
    /// emit). Nondeterministic by nature; excluded from [`Self::metrics`].
    pub elapsed_nanos: u64,
}

impl BatchReport {
    /// Fold one plan entry into the cache counters.
    fn tally(&mut self, plan: &TaskPlan) {
        match plan.hit {
            Some(true) => self.cache_hits += 1,
            Some(false) => self.cache_misses += 1,
            None => {}
        }
        if plan.evicted.is_some() {
            self.cache_evictions += 1;
        }
    }

    /// Cache hit rate over this batch (0.0 when the cache was off).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Tasks per second over the batch wall-clock.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.tasks.len() as f64 * 1e9 / self.elapsed_nanos as f64
        }
    }

    /// The **deterministic** metrics of this batch — everything except
    /// wall-clock, so two runs of the same corpus at different `--jobs`
    /// produce identical values (the determinism test relies on this).
    pub fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("engine.tasks".into(), self.tasks.len() as f64),
            ("engine.scheduled".into(), self.scheduled as f64),
            ("engine.cached".into(), self.cached as f64),
            ("engine.degraded".into(), self.degraded as f64),
            ("engine.failed".into(), self.failed as f64),
            ("engine.cache_hits".into(), self.cache_hits as f64),
            ("engine.cache_misses".into(), self.cache_misses as f64),
            ("engine.cache_evictions".into(), self.cache_evictions as f64),
            ("engine.cache_resident".into(), self.cache_resident as f64),
            ("engine.cache_capacity".into(), self.cache_capacity as f64),
            ("engine.hit_rate".into(), self.hit_rate()),
        ]
    }

    /// Unwrap every task's schedule, in input order. Errors with the
    /// first failed task's diagnostic.
    pub fn into_results(self) -> Result<Vec<TraceResult>, String> {
        self.tasks
            .into_iter()
            .map(|t| {
                t.result.ok_or_else(|| {
                    format!(
                        "task {} ({}) failed: {}",
                        t.index,
                        t.label,
                        t.error.as_deref().unwrap_or("unknown error")
                    )
                })
            })
            .collect()
    }
}

/// A scheduling function the engine can drive. The context is the
/// calling worker's [`SchedCtx`] — one per worker thread, reused across
/// every task that worker computes, so analysis caches and scratch
/// buffers stay warm within a batch. The config argument is the task's
/// config with the engine's step budget already applied. Tests inject
/// panicking/failing solvers to exercise isolation.
pub type Solver = dyn Fn(&mut SchedCtx, &TraceTask, &LookaheadConfig, &dyn Recorder) -> Result<TraceResult, CoreError>
    + Sync;

/// Where an engine's cache decisions go: nowhere, a private per-engine
/// FIFO cache, or a process-wide [`SharedScheduleCache`] attached to
/// any number of engines. Either way, the cache is only touched from
/// the sequential plan/publish phases — never from worker threads.
enum CacheHandle {
    Off,
    Private(Mutex<ScheduleCache>),
    Shared(Arc<SharedScheduleCache>),
}

/// The batch scheduling engine. Holds (or shares) the schedule cache,
/// which persists across [`Engine::run_batch`] calls.
pub struct Engine {
    cfg: EngineConfig,
    cache: CacheHandle,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Build an engine with a private cache (when `cfg.cache` is set).
    pub fn new(cfg: EngineConfig) -> Self {
        let cache = if cfg.cache {
            CacheHandle::Private(Mutex::new(ScheduleCache::new(cfg.cache_capacity)))
        } else {
            CacheHandle::Off
        };
        Engine { cfg, cache }
    }

    /// Build an engine backed by a process-wide shared cache. The
    /// engine's own `cache`/`cache_capacity` knobs are ignored — the
    /// shared cache owns capacity and eviction.
    pub fn with_shared_cache(cfg: EngineConfig, cache: Arc<SharedScheduleCache>) -> Self {
        Engine {
            cfg,
            cache: CacheHandle::Shared(cache),
        }
    }

    /// The shared cache this engine is attached to, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedScheduleCache>> {
        match &self.cache {
            CacheHandle::Shared(c) => Some(c),
            _ => None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Schedule a whole corpus with Algorithm `Lookahead`.
    pub fn run_batch(&self, tasks: &[TraceTask], rec: &dyn Recorder) -> BatchReport {
        self.run_batch_with(tasks, rec, &lookahead_solver)
    }

    /// Schedule a corpus with Algorithm `Lookahead`, reusing the
    /// caller's scheduling context for the inline compute path.
    ///
    /// At `jobs <= 1` every task is computed on the caller's thread
    /// with `ctx`, so its analysis caches and scratch buffers stay warm
    /// across *batches* — the shape a long-lived service worker wants
    /// (one `SchedCtx` + `Engine` per worker, many batches). At
    /// `jobs > 1` the worker pool still owns one fresh context per
    /// thread and `ctx` is untouched.
    pub fn run_batch_ctx(
        &self,
        ctx: &mut SchedCtx,
        tasks: &[TraceTask],
        rec: &dyn Recorder,
    ) -> BatchReport {
        timed(rec, Pass::Engine, || {
            self.batch_inner(Some(ctx), tasks, rec, &lookahead_solver, None)
        })
    }

    /// Schedule a corpus with a caller-supplied solver (test seam for
    /// panic isolation and degradation).
    pub fn run_batch_with(
        &self,
        tasks: &[TraceTask],
        rec: &dyn Recorder,
        solver: &Solver,
    ) -> BatchReport {
        timed(rec, Pass::Engine, || {
            self.batch_inner(None, tasks, rec, solver, None)
        })
    }

    /// [`Engine::run_batch_ctx`] with span telemetry: opens one
    /// `"engine"` span under `scope` plus one `"task"` span per task,
    /// and attributes every cache/pass/task event to the task it
    /// belongs to.
    ///
    /// Span ids are drawn from `scope.alloc` **only in the sequential
    /// plan/emit phases**, in input order, so traces stay
    /// byte-identical across `jobs` settings (modulo `nanos` payloads,
    /// as ever). Task span durations are each task's measured compute
    /// time (0 for cache hits). With `scope: None` (or a disabled
    /// recorder) this is exactly [`Engine::run_batch_ctx`].
    pub fn run_batch_traced(
        &self,
        ctx: Option<&mut SchedCtx>,
        tasks: &[TraceTask],
        rec: &dyn Recorder,
        scope: Option<SpanScope<'_>>,
    ) -> BatchReport {
        let scope = if rec.enabled() { scope } else { None };
        let Some(scope) = scope else {
            return timed(rec, Pass::Engine, || {
                self.batch_inner(ctx, tasks, rec, &lookahead_solver, None)
            });
        };
        let engine_span = scope.alloc.next();
        record!(
            rec,
            Event::SpanStart {
                span: engine_span,
                parent: scope.parent,
                name: "engine",
            }
        );
        let report = timed_span(rec, Pass::Engine, Some(engine_span), || {
            self.batch_inner(
                ctx,
                tasks,
                rec,
                &lookahead_solver,
                Some((scope.alloc, engine_span)),
            )
        });
        record!(
            rec,
            Event::SpanEnd {
                span: engine_span,
                nanos: report.elapsed_nanos,
            }
        );
        report
    }

    fn batch_inner(
        &self,
        ctx: Option<&mut SchedCtx>,
        tasks: &[TraceTask],
        rec: &dyn Recorder,
        solver: &Solver,
        span_ctx: Option<(&SpanAlloc, SpanId)>,
    ) -> BatchReport {
        let start = Instant::now();
        let jobs = self.cfg.jobs.max(1);
        let mut report = BatchReport {
            jobs,
            ..BatchReport::default()
        };

        // Phase 1: sequential, deterministic cache plan.
        let mut plans: Vec<TaskPlan> = Vec::with_capacity(tasks.len());
        let mut fps: Vec<Option<Fingerprint>> = Vec::with_capacity(tasks.len());
        let mut compute: Vec<usize> = Vec::new(); // compute slot -> task index
        match &self.cache {
            CacheHandle::Private(cache) => {
                let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
                for (i, task) in tasks.iter().enumerate() {
                    let fp = fingerprint_task(&task.graph, &task.machine, &task.config);
                    let plan = cache.plan(fp, compute.len());
                    if matches!(plan.kind, PlanKind::Compute(_)) {
                        compute.push(i);
                    }
                    report.tally(&plan);
                    fps.push(Some(fp));
                    plans.push(plan);
                }
            }
            CacheHandle::Shared(shared) => {
                // Within-batch duplicates alias *locally* (this map),
                // so slot indices always refer to this batch and no
                // batch ever waits on another's in-flight compute.
                let mut pending: HashMap<u128, usize> = HashMap::new();
                for (i, task) in tasks.iter().enumerate() {
                    let fp = fingerprint_task(&task.graph, &task.machine, &task.config);
                    let shard = Some(shared.shard_of(fp));
                    let plan = if let Some(&slot) = pending.get(&fp.0) {
                        TaskPlan {
                            kind: PlanKind::Alias(slot),
                            hit: Some(true),
                            evicted: None,
                            shard,
                            warm: false,
                        }
                    } else {
                        match shared.plan(fp) {
                            SharedProbe::Hit { value, warm } => TaskPlan {
                                kind: PlanKind::Ready(value),
                                hit: Some(true),
                                evicted: None,
                                shard,
                                warm,
                            },
                            SharedProbe::Miss { evicted } => {
                                pending.insert(fp.0, compute.len());
                                TaskPlan {
                                    kind: PlanKind::Compute(compute.len()),
                                    hit: Some(false),
                                    evicted,
                                    shard,
                                    warm: false,
                                }
                            }
                        }
                    };
                    if matches!(plan.kind, PlanKind::Compute(_)) {
                        compute.push(i);
                    }
                    report.tally(&plan);
                    fps.push(Some(fp));
                    plans.push(plan);
                }
            }
            CacheHandle::Off => {
                for i in 0..tasks.len() {
                    plans.push(TaskPlan {
                        kind: PlanKind::Compute(compute.len()),
                        hit: None,
                        evicted: None,
                        shard: None,
                        warm: false,
                    });
                    compute.push(i);
                    fps.push(None);
                }
            }
        }

        // Phase 2: parallel compute over the planned-compute tasks.
        let capture = self.cfg.capture && rec.enabled();
        let values = self.run_pool(ctx, jobs, tasks, &compute, capture, solver);

        // Publish finished values so later batches can hit on them,
        // then snapshot residency for the report.
        match &self.cache {
            CacheHandle::Private(cache) => {
                let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
                for (slot, &task_idx) in compute.iter().enumerate() {
                    if let Some(fp) = fps[task_idx] {
                        cache.publish(fp, slot, &values[slot].0);
                    }
                }
                report.cache_resident = cache.len() as u64;
                report.cache_capacity = cache.capacity() as u64;
            }
            CacheHandle::Shared(shared) => {
                for (slot, &task_idx) in compute.iter().enumerate() {
                    if let Some(fp) = fps[task_idx] {
                        shared.publish(fp, &values[slot].0);
                    }
                }
                report.cache_resident = shared.resident();
                report.cache_capacity = shared.capacity();
            }
            CacheHandle::Off => {}
        }

        // Phase 3: sequential emit in input order. Task span ids are
        // allocated here — one per task, in input order — so they are
        // identical whatever `jobs` was.
        for (i, (task, plan)) in tasks.iter().zip(&plans).enumerate() {
            let task_span = span_ctx.map(|(alloc, engine_span)| {
                let span = alloc.next();
                record!(
                    rec,
                    Event::SpanStart {
                        span,
                        parent: Some(engine_span),
                        name: "task",
                    }
                );
                span
            });
            if let (Some(fp), Some(hit)) = (fps[i], plan.hit) {
                record!(
                    rec,
                    Event::CacheQuery {
                        key: fp.0,
                        hit,
                        shard: plan.shard,
                        warm: plan.warm,
                        span: task_span,
                    }
                );
            }
            if let Some((key, resident)) = plan.evicted {
                record!(
                    rec,
                    Event::CacheEvict {
                        key,
                        resident,
                        shard: plan.shard,
                        span: task_span,
                    }
                );
            }
            let (value, from_cache) = match &plan.kind {
                PlanKind::Compute(slot) => {
                    match task_span {
                        Some(span) => BufferRecorder::replay_with_span(&values[*slot].1, rec, span),
                        None => BufferRecorder::replay(&values[*slot].1, rec),
                    }
                    (&values[*slot].0, false)
                }
                PlanKind::Alias(slot) => (&values[*slot].0, true),
                PlanKind::Ready(v) => (v, true),
            };
            let outcome = match (&value.result, from_cache, value.degraded) {
                (None, _, _) => TaskOutcome::Failed,
                (Some(_), true, _) => TaskOutcome::Cached,
                (Some(_), false, true) => TaskOutcome::Degraded,
                (Some(_), false, false) => TaskOutcome::Scheduled,
            };
            match outcome {
                TaskOutcome::Scheduled | TaskOutcome::Cached => {}
                TaskOutcome::Degraded => {
                    record!(
                        rec,
                        Event::Diagnostic {
                            severity: Severity::Warning,
                            code: "task_degraded",
                            message: &format!(
                                "task {i} ({}): {}; emitted the per-block rank schedule",
                                task.label,
                                value.error.as_deref().unwrap_or("scheduler failed"),
                            ),
                        }
                    );
                }
                TaskOutcome::Failed => {
                    record!(
                        rec,
                        Event::Diagnostic {
                            severity: Severity::Error,
                            code: "task_failed",
                            message: &format!(
                                "task {i} ({}): {}",
                                task.label,
                                value.error.as_deref().unwrap_or("scheduler failed"),
                            ),
                        }
                    );
                }
            }
            let makespan = value.result.as_ref().map_or(0, |r| r.makespan);
            record!(
                rec,
                Event::TaskDone {
                    task: i as u32,
                    outcome,
                    makespan,
                    span: task_span,
                }
            );
            if let Some(span) = task_span {
                // The task span's duration is the measured compute time
                // of its slot; cache hits did no work and report 0.
                let nanos = match &plan.kind {
                    PlanKind::Compute(slot) => values[*slot].2,
                    PlanKind::Alias(_) | PlanKind::Ready(_) => 0,
                };
                record!(rec, Event::SpanEnd { span, nanos });
            }
            match outcome {
                TaskOutcome::Scheduled => report.scheduled += 1,
                TaskOutcome::Cached => report.cached += 1,
                TaskOutcome::Degraded => report.degraded += 1,
                TaskOutcome::Failed => report.failed += 1,
            }
            report.tasks.push(TaskReport {
                index: i,
                label: task.label.clone(),
                fingerprint: fps[i],
                outcome,
                makespan,
                result: value.result.clone(),
                error: value.error.clone(),
            });
        }

        report.elapsed_nanos = start.elapsed().as_nanos() as u64;
        report
    }

    /// Run the compute-phase tasks, returning `(value, events)` per
    /// compute slot. `jobs <= 1` runs inline on the caller's thread —
    /// the exact same per-task code path the workers run.
    fn run_pool(
        &self,
        ctx: Option<&mut SchedCtx>,
        jobs: usize,
        tasks: &[TraceTask],
        compute: &[usize],
        capture: bool,
        solver: &Solver,
    ) -> Vec<Computed> {
        let budget = self.cfg.step_budget;
        if jobs <= 1 || compute.len() <= 1 {
            let mut fresh;
            let ctx = match ctx {
                Some(c) => c,
                None => {
                    fresh = SchedCtx::new();
                    &mut fresh
                }
            };
            return compute
                .iter()
                .map(|&i| solve_one(ctx, &tasks[i], budget, capture, solver))
                .collect();
        }
        let slots: Vec<Mutex<Option<Computed>>> =
            (0..compute.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = jobs.min(compute.len());
        std::thread::scope(|s| {
            for _ in 0..workers {
                // One scheduling context per worker thread: its analysis
                // cache and scratch buffers persist across every task
                // this worker pulls off the queue.
                s.spawn(|| {
                    let mut ctx = SchedCtx::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= compute.len() {
                            break;
                        }
                        let out =
                            solve_one(&mut ctx, &tasks[compute[slot]], budget, capture, solver);
                        *slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every compute slot is filled before the scope ends")
            })
            .collect()
    }
}

/// A computed task value, the events buffered while computing it, and
/// the measured compute wall-clock in nanoseconds (the payload of the
/// task's `span_end` in traced runs).
type Computed = (Arc<TaskValue>, Vec<OwnedEvent>, u64);

/// The production solver: Algorithm `Lookahead` over the task's trace.
fn lookahead_solver(
    ctx: &mut SchedCtx,
    t: &TraceTask,
    cfg: &LookaheadConfig,
    r: &dyn Recorder,
) -> Result<TraceResult, CoreError> {
    schedule_trace(
        ctx,
        &t.graph,
        &t.machine,
        cfg,
        &SchedOpts::default().with_recorder(r),
    )
}

/// Solve one task under panic isolation, degrading to the per-block
/// Rank schedule on any failure.
fn solve_one(
    ctx: &mut SchedCtx,
    task: &TraceTask,
    budget: Option<u64>,
    capture: bool,
    solver: &Solver,
) -> Computed {
    let buf = BufferRecorder::new();
    let rec: &dyn Recorder = if capture { &buf } else { &NULL };
    let mut cfg = task.config;
    if cfg.step_budget.is_none() {
        cfg.step_budget = budget;
    }
    let start = Instant::now();
    let value = match catch_unwind(AssertUnwindSafe(|| solver(&mut *ctx, task, &cfg, rec))) {
        Ok(Ok(result)) => TaskValue {
            result: Some(result),
            degraded: false,
            error: None,
        },
        Ok(Err(err)) => degrade(ctx, task, err.to_string()),
        // `as_ref` matters: passing `&panic` would coerce the `Box`
        // itself to `dyn Any` and the message downcasts would miss.
        Err(panic) => degrade(ctx, task, panic_text(panic.as_ref())),
    };
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (Arc::new(value), buf.into_events(), nanos)
}

/// The degradation path: the guaranteed-cheap per-block Rank schedule,
/// measured on the window model. Itself panic-isolated — if even this
/// fails the task is reported `Failed`, never the whole batch.
fn degrade(ctx: &mut SchedCtx, task: &TraceTask, why: String) -> TaskValue {
    let attempt = catch_unwind(AssertUnwindSafe(|| rank_fallback(&mut *ctx, task)));
    match attempt {
        Ok(Ok(result)) => TaskValue {
            result: Some(result),
            degraded: true,
            error: Some(why),
        },
        Ok(Err(err)) => TaskValue {
            result: None,
            degraded: true,
            error: Some(format!("{why}; rank fallback failed: {err}")),
        },
        Err(panic) => TaskValue {
            result: None,
            degraded: true,
            error: Some(format!(
                "{why}; rank fallback panicked: {}",
                panic_text(panic.as_ref())
            )),
        },
    }
}

fn rank_fallback(ctx: &mut SchedCtx, task: &TraceTask) -> Result<TraceResult, CoreError> {
    let orders = schedule_blocks_independent(
        ctx,
        &task.graph,
        &task.machine,
        task.config.delay_idle_slots,
    )?;
    let stream = InstStream::from_blocks(&orders);
    let sim = simulate(
        ctx,
        &task.graph,
        &task.machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    );
    let predicted = schedule_of(&task.graph, &task.machine, &stream, &sim);
    Ok(TraceResult {
        permutation: predicted.order(),
        makespan: sim.completion,
        predicted,
        block_orders: orders,
        blocks: task.graph.blocks(),
    })
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}
