//! Content-addressed task fingerprints.
//!
//! The schedule cache keys on *what the scheduler sees*: the block DAG
//! (execution times, classes, block membership, tie-break positions and
//! every `<latency, distance>` edge), the machine model (unit classes
//! and window size `W`) and the full [`LookaheadConfig`]. Node labels
//! are deliberately excluded — they never influence a scheduling
//! decision, so `add r1,r2` and `add r5,r6` with identical dependence
//! structure share one cache entry. The step budget is also excluded:
//! a budget only bounds how much work the scheduler may spend — it can
//! abort a computation, but it never alters a *completed* result — so
//! two tasks differing only in budget would compute identical
//! schedules. Keying on it would make every deadline-derived budget
//! (which varies with server load) a distinct cache entry and defeat
//! warm-starting; instead, only fully-computed (non-degraded) values
//! are published to shared/persistent caches, so a budget-truncated
//! run can never satisfy a later, more generous one.
//!
//! The hash is a 128-bit FNV-1a variant (two independently seeded
//! 64-bit lanes over the same canonical byte stream). It is not
//! cryptographic; it only needs to make accidental collisions across a
//! corpus run vanishingly unlikely, and it must be dependency-free and
//! deterministic across platforms (the build is hermetic).

use asched_core::LookaheadConfig;
use asched_graph::{DepGraph, DepKind, FuClass, MachineModel};
use std::fmt;

/// Domain tag mixed into every fingerprint and stamped into cache-file
/// headers. Bump it whenever the fingerprint scheme changes so stale
/// on-disk caches are rejected instead of silently mis-keyed.
pub const FINGERPRINT_DOMAIN: &str = "asched-engine-v2";

/// A 128-bit content fingerprint of one scheduling task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Second-lane seed (the 64-bit golden ratio); a different starting
/// state decorrelates the two lanes over the same byte stream.
const LANE2_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;

struct Hasher2 {
    a: u64,
    b: u64,
}

impl Hasher2 {
    fn new() -> Self {
        Hasher2 {
            a: FNV_OFFSET,
            b: LANE2_OFFSET,
        }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        }
    }

    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(self) -> Fingerprint {
        Fingerprint((u128::from(self.a) << 64) | u128::from(self.b))
    }
}

fn class_tag(c: FuClass) -> u8 {
    match c {
        FuClass::Any => 0,
        FuClass::Fixed => 1,
        FuClass::Float => 2,
        FuClass::Memory => 3,
        FuClass::Branch => 4,
    }
}

fn kind_tag(k: DepKind) -> u8 {
    match k {
        DepKind::Data => 0,
        DepKind::Anti => 1,
        DepKind::Output => 2,
        DepKind::Memory => 3,
        DepKind::Control => 4,
    }
}

/// Fingerprint one scheduling task: graph structure + machine + config.
pub fn fingerprint_task(
    g: &DepGraph,
    machine: &MachineModel,
    cfg: &LookaheadConfig,
) -> Fingerprint {
    // Domain tag doubles as the persistence-format domain: bumping it
    // (v1 → v2 when the step budget left the key) invalidates every
    // on-disk cache file written under the old scheme.
    let mut h = Hasher2::new();
    h.bytes(FINGERPRINT_DOMAIN.as_bytes());

    // Graph: nodes in id order, then each node's out-edges in insertion
    // order (both orders are part of the scheduler's deterministic
    // tie-breaking, so they belong in the key).
    h.u32(g.len() as u32);
    for id in g.node_ids() {
        let n = g.node(id);
        h.u32(n.exec_time);
        h.u8(class_tag(n.class));
        h.u32(n.block.0);
        h.u32(n.source_pos);
    }
    for id in g.node_ids() {
        let out = g.out_edges(id);
        h.u32(out.len() as u32);
        for e in out {
            h.u32(e.dst.index() as u32);
            h.u32(e.latency);
            h.u32(e.distance);
            h.u8(kind_tag(e.kind));
        }
    }

    // Machine model.
    h.u32(machine.units.len() as u32);
    for &u in &machine.units {
        h.u8(class_tag(u));
    }
    h.u64(machine.window as u64);

    // Every config knob that can change a completed result is keyed.
    // `step_budget` is deliberately absent — see the module docs.
    h.u8(cfg.delay_idle_slots as u8);
    h.u8(cfg.protect_old as u8);
    h.u64(cfg.loop_eval_window as u64);
    h.u32(cfg.loop_eval_iters);
    h.u8(cfg.portfolio as u8);
    h.u8(cfg.filter_loop_candidates as u8);

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    fn chain(latency: u32) -> DepGraph {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, latency);
        g
    }

    #[test]
    fn identical_tasks_share_a_fingerprint() {
        let cfg = LookaheadConfig::default();
        let m = MachineModel::single_unit(4);
        assert_eq!(
            fingerprint_task(&chain(2), &m, &cfg),
            fingerprint_task(&chain(2), &m, &cfg)
        );
    }

    #[test]
    fn labels_do_not_key_the_cache() {
        let cfg = LookaheadConfig::default();
        let m = MachineModel::single_unit(2);
        let mut relabeled = DepGraph::new();
        let a = relabeled.add_simple("load", BlockId(0));
        let b = relabeled.add_simple("store", BlockId(0));
        relabeled.add_dep(a, b, 2);
        assert_eq!(
            fingerprint_task(&chain(2), &m, &cfg),
            fingerprint_task(&relabeled, &m, &cfg)
        );
    }

    #[test]
    fn structure_machine_and_config_all_key_the_cache() {
        let cfg = LookaheadConfig::default();
        let m = MachineModel::single_unit(2);
        let base = fingerprint_task(&chain(2), &m, &cfg);
        // Different edge latency.
        assert_ne!(base, fingerprint_task(&chain(3), &m, &cfg));
        // Different window.
        assert_ne!(
            base,
            fingerprint_task(&chain(2), &MachineModel::single_unit(4), &cfg)
        );
        // Different unit mix.
        assert_ne!(
            base,
            fingerprint_task(&chain(2), &MachineModel::uniform(2, 2), &cfg)
        );
        // Different config.
        assert_ne!(
            base,
            fingerprint_task(&chain(2), &m, &LookaheadConfig::without_idle_delay())
        );
    }

    #[test]
    fn step_budget_does_not_key_the_cache() {
        // A budget bounds work; it never changes a completed result.
        // Keying on it would shatter warm-start reuse across the
        // deadline-derived budgets a serving tier computes per request.
        let cfg = LookaheadConfig::default();
        let m = MachineModel::single_unit(2);
        let base = fingerprint_task(&chain(2), &m, &cfg);
        assert_eq!(
            base,
            fingerprint_task(&chain(2), &m, &cfg.with_step_budget(100))
        );
        assert_eq!(
            base,
            fingerprint_task(&chain(2), &m, &cfg.with_step_budget(7))
        );
    }
}
