//! `asched-engine` — deterministic parallel batch scheduling.
//!
//! The paper's Algorithm `Lookahead` schedules one trace at a time;
//! this crate turns it into a corpus service. A batch of
//! [`TraceTask`]s (program × trace × window `W` × machine model) is
//! sharded across a `std::thread::scope` worker pool and resolved
//! against a content-addressed schedule cache keyed on what the
//! scheduler actually sees (block DAG + latencies + machine + config —
//! see [`fingerprint_task`]).
//!
//! Three properties are load-bearing:
//!
//! - **Determinism.** Results, cache counters and the emitted event
//!   stream (modulo `pass_end` wall-clock payloads) are byte-identical
//!   at any `jobs` setting: all cache decisions are planned
//!   sequentially in input order before workers start, and worker
//!   events are buffered and replayed in input order afterwards.
//! - **Robustness.** Every task runs under `catch_unwind` with an
//!   optional per-task step budget; a panic, scheduler error or
//!   exhausted budget degrades the task to the per-block Rank schedule
//!   (with a `Diagnostic` event) instead of aborting the batch.
//! - **Observability.** Cache traffic and task outcomes surface as
//!   `cache_query` / `cache_evict` / `task_done` events through the
//!   ordinary `asched-obs` [`Recorder`](asched_obs::Recorder) API,
//!   under a timed `engine` pass.
//!
//! See `docs/engine.md` for the architecture write-up and
//! `crates/bench/src/bin/batch.rs` (`asched-batch`) for the CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod corpus;
mod engine;
mod fingerprint;
pub mod persist;
mod shared_cache;

pub use corpus::{parse_manifest, synth_corpus, CorpusError};
pub use engine::{BatchReport, Engine, EngineConfig, Solver, TaskReport, TaskValue, TraceTask};
pub use fingerprint::{fingerprint_task, Fingerprint, FINGERPRINT_DOMAIN};
pub use shared_cache::{SharedCacheStats, SharedScheduleCache, WarmStart};

/// Re-export of the outcome vocabulary shared with `asched-obs`.
pub use asched_obs::TaskOutcome;
