//! The process-wide, content-addressed, sharded schedule cache.
//!
//! One [`SharedScheduleCache`] can back any number of [`Engine`]s —
//! every serve worker, say — so N workers stop paying N cold misses
//! for the same hot fingerprint. The key design points:
//!
//! - **Sharded.** Entries live in `2^k` shards selected by the *high*
//!   bits of the 128-bit fingerprint (FNV output is well-mixed, and
//!   the high bits are independent of any HashMap bucketing of the low
//!   bits). Each shard has its own mutex and its own FIFO, so
//!   concurrent engines mostly touch disjoint locks and an eviction
//!   never scans other shards.
//! - **Deterministic per engine.** An engine still makes every cache
//!   decision in its sequential plan phase, in input order; the shared
//!   cache is only probed/inserted from there, never from worker
//!   threads. With a single engine, results and the
//!   `cache_query`/`cache_evict` stream remain a pure function of the
//!   corpus at any `jobs` setting. Within-batch duplicates are aliased
//!   by the *engine* (a batch-local pending map), not by this cache,
//!   so one batch never blocks on another's in-flight compute.
//! - **Placeholders, not promises.** A planned miss inserts a
//!   [`Slot::Placeholder`] that holds FIFO residency. A *different*
//!   batch probing a placeholder treats it as a miss and computes the
//!   value itself (without inserting again): schedules are pure
//!   functions of the fingerprinted inputs, so duplicated work is
//!   merely wasted, never wrong, and nobody waits on a foreign batch.
//!   Whoever publishes first upgrades the placeholder; later publishes
//!   of the same fingerprint are no-ops.
//! - **Only completed values are shared.** `publish` refuses degraded
//!   or failed values (the placeholder is dropped instead). The
//!   fingerprint deliberately ignores step budgets, so a
//!   budget-truncated fallback must never satisfy a later, more
//!   generous request. Private per-engine caches still memoize
//!   degraded values — a retry there reuses the same budget.
//! - **Warm-startable.** [`SharedScheduleCache::warm_start`] replays a
//!   [`persist`](crate::persist) cache file into the shards (marking
//!   entries *warm*, which cache events report) and attaches an
//!   appender: every subsequent first publish of a fingerprint is
//!   appended to the file, so the next process restart starts hot.
//!
//! [`Engine`]: crate::Engine

use std::collections::{HashMap, VecDeque};
use std::fs::OpenOptions;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::TaskValue;
use crate::fingerprint::Fingerprint;
use crate::persist;

/// One shard slot: a finished value, or residency held for an
/// in-flight compute planned by some batch.
enum Slot {
    Placeholder,
    Ready { value: Arc<TaskValue>, warm: bool },
}

struct Shard {
    map: HashMap<u128, Slot>,
    fifo: VecDeque<u128>,
    capacity: usize,
}

impl Shard {
    /// Evict the oldest entry still resident. The FIFO is cleaned
    /// lazily (dropped placeholders leave their key behind), so pop
    /// until a key that is actually mapped. Returns
    /// `(evicted_key, resident_after)`.
    fn evict_one(&mut self) -> Option<(u128, u64)> {
        while let Some(old) = self.fifo.pop_front() {
            if self.map.remove(&old).is_some() {
                return Some((old, self.map.len() as u64));
            }
        }
        None
    }
}

/// How one shared-cache probe resolved (plan-phase only).
pub(crate) enum SharedProbe {
    /// A finished value is resident; `warm` when it was loaded from a
    /// cache file rather than computed by this process.
    Hit { value: Arc<TaskValue>, warm: bool },
    /// Not resident (or resident only as a foreign placeholder, in
    /// which case nothing was inserted and `evicted` is `None`).
    Miss { evicted: Option<(u128, u64)> },
}

/// Aggregate counters of a shared cache, for `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SharedCacheStats {
    /// Plan-phase probe hits across every attached engine.
    pub hits: u64,
    /// Plan-phase probe misses.
    pub misses: u64,
    /// FIFO evictions across all shards.
    pub evictions: u64,
    /// Hits served by entries loaded from a cache file.
    pub warm_hits: u64,
    /// Entries loaded from a cache file at warm-start.
    pub loaded: u64,
    /// Records appended to the cache file by this process.
    pub persisted: u64,
    /// Entries currently resident (sums every shard).
    pub resident: u64,
    /// Total capacity across shards.
    pub capacity: u64,
    /// Shard count.
    pub shards: u64,
}

impl SharedCacheStats {
    /// Hit rate over all probes so far (0.0 before any probe).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of a [`SharedScheduleCache::warm_start`] load.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmStart {
    /// Records loaded into the cache.
    pub loaded: u64,
    /// CRC-intact records dropped (fingerprint mismatch or undecodable
    /// payload).
    pub skipped: u64,
    /// Torn/corrupt tail bytes truncated before appending resumes.
    pub truncated: u64,
}

/// A process-wide sharded schedule cache. See the module docs.
pub struct SharedScheduleCache {
    shards: Vec<Mutex<Shard>>,
    /// `128 - log2(shards.len())`: shift that maps a fingerprint's
    /// high bits to its shard index.
    shard_shift: u32,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    warm_hits: AtomicU64,
    loaded: AtomicU64,
    persisted: AtomicU64,
    appender: Mutex<Option<std::fs::File>>,
}

impl SharedScheduleCache {
    /// Build a cache with `capacity` total entries spread over
    /// `shards` shards. The shard count is rounded up to a power of
    /// two (minimum 1); per-shard capacity is `capacity / shards`,
    /// floored at 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = (capacity.max(1) / shards).max(1);
        SharedScheduleCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        fifo: VecDeque::new(),
                        capacity: per_shard,
                    })
                })
                .collect(),
            shard_shift: 128 - shards.trailing_zeros(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            loaded: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
            appender: Mutex::new(None),
        }
    }

    /// The shard a fingerprint maps to (also the `shard` attribution
    /// on cache events).
    pub fn shard_of(&self, fp: Fingerprint) -> u32 {
        if self.shards.len() == 1 {
            0
        } else {
            (fp.0 >> self.shard_shift) as u32
        }
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<Shard> {
        &self.shards[self.shard_of(fp) as usize]
    }

    /// Probe-and-reserve for one planned task. Called only from an
    /// engine's sequential plan phase.
    pub(crate) fn plan(&self, fp: Fingerprint) -> SharedProbe {
        let mut shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
        match shard.map.get(&fp.0) {
            Some(Slot::Ready { value, warm }) => {
                let (value, warm) = (Arc::clone(value), *warm);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if warm {
                    self.warm_hits.fetch_add(1, Ordering::Relaxed);
                }
                SharedProbe::Hit { value, warm }
            }
            Some(Slot::Placeholder) => {
                // A foreign batch is computing this. Recompute rather
                // than wait or alias; see the module docs.
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                SharedProbe::Miss { evicted: None }
            }
            None => {
                let mut evicted = None;
                if shard.map.len() >= shard.capacity {
                    evicted = shard.evict_one();
                }
                shard.map.insert(fp.0, Slot::Placeholder);
                shard.fifo.push_back(fp.0);
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                if evicted.is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                SharedProbe::Miss { evicted }
            }
        }
    }

    /// Publish a computed value. Upgrades the placeholder to `Ready`
    /// when the value is storable; drops it otherwise (degraded and
    /// failed values must not outlive their batch — the key ignores
    /// step budgets). No-op when the entry was evicted meanwhile or
    /// another batch already published it. The first upgrade is also
    /// appended to the attached cache file, if any.
    pub(crate) fn publish(&self, fp: Fingerprint, value: &Arc<TaskValue>) {
        let storable = persist::storable(value);
        let upgraded = {
            let mut shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
            // Only a placeholder may be acted on: a `Ready` entry means
            // another batch already published (same value — schedules
            // are pure functions of the key), and absence means the
            // entry was evicted while the batch ran.
            if !matches!(shard.map.get(&fp.0), Some(Slot::Placeholder)) {
                false
            } else if storable {
                shard.map.insert(
                    fp.0,
                    Slot::Ready {
                        value: Arc::clone(value),
                        warm: false,
                    },
                );
                true
            } else {
                shard.map.remove(&fp.0);
                false
            }
        };
        if upgraded {
            self.append_record(fp, value);
        }
    }

    /// Insert an entry loaded from a cache file. Later records for the
    /// same fingerprint supersede earlier ones in place (no second
    /// FIFO slot).
    fn insert_warm(&self, fp: Fingerprint, value: Arc<TaskValue>) {
        let mut shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
        let slot = Slot::Ready { value, warm: true };
        match shard.map.get_mut(&fp.0) {
            Some(existing) => *existing = slot,
            None => {
                if shard.map.len() >= shard.capacity && shard.evict_one().is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                shard.map.insert(fp.0, slot);
                shard.fifo.push_back(fp.0);
            }
        }
    }

    /// Load a cache file into the shards and attach an appender to it.
    ///
    /// Missing file: created (header only). Damaged file: the valid
    /// prefix is loaded, the torn tail is truncated, and appending
    /// resumes from there — a crash mid-append costs at most the last
    /// record. A file from another fingerprint domain is reset
    /// entirely. Never fatal for cache correctness; only I/O errors on
    /// the path itself are returned.
    pub fn warm_start(&self, path: &Path) -> io::Result<WarmStart> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let dec = persist::decode_file(&bytes);
        let mut out = WarmStart {
            loaded: dec.records.len() as u64,
            skipped: dec.skipped,
            truncated: (bytes.len() - dec.valid_len) as u64,
        };
        for (fp, value) in dec.records {
            self.insert_warm(Fingerprint(fp), Arc::new(value));
        }
        self.loaded.store(out.loaded, Ordering::Relaxed);

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if dec.valid_len == 0 {
            // Empty, torn-at-header or foreign-domain file: reset.
            out.truncated = bytes.len() as u64;
            file.set_len(0)?;
            file.write_all(&persist::header())?;
        } else {
            file.set_len(dec.valid_len as u64)?;
            file.seek(SeekFrom::End(0))?;
        }
        *self.appender.lock().unwrap_or_else(|e| e.into_inner()) = Some(file);
        Ok(out)
    }

    fn append_record(&self, fp: Fingerprint, value: &Arc<TaskValue>) {
        let mut guard = self.appender.lock().unwrap_or_else(|e| e.into_inner());
        let Some(file) = guard.as_mut() else { return };
        let Some(frame) = persist::encode_record(fp.0, value) else {
            return;
        };
        // Best-effort: a full disk must not take the serving tier
        // down, so an append failure just detaches the appender.
        if file.write_all(&frame).and_then(|()| file.flush()).is_err() {
            *guard = None;
            return;
        }
        self.persisted.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently resident, across all shards.
    pub fn resident(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len() as u64)
            .sum()
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).capacity as u64)
            .sum()
    }

    /// Snapshot every counter.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
            resident: self.resident(),
            capacity: self.capacity(),
            shards: self.shards.len() as u64,
        }
    }
}

impl std::fmt::Debug for SharedScheduleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedScheduleCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value() -> Arc<TaskValue> {
        // Storable stand-in: tests here only exercise slot mechanics,
        // not serialization, so an empty-but-complete result works.
        Arc::new(TaskValue {
            result: Some(asched_core::TraceResult {
                permutation: vec![],
                predicted: asched_graph::Schedule::new(0),
                makespan: 0,
                block_orders: vec![],
                blocks: vec![],
            }),
            degraded: false,
            error: None,
        })
    }

    fn degraded() -> Arc<TaskValue> {
        Arc::new(TaskValue {
            result: None,
            degraded: true,
            error: Some("budget".into()),
        })
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(SharedScheduleCache::new(64, 3).stats().shards, 4);
        assert_eq!(SharedScheduleCache::new(64, 0).stats().shards, 1);
        // Per-shard capacity floors at 1, so total can round up too.
        assert_eq!(SharedScheduleCache::new(2, 8).capacity(), 8);
    }

    #[test]
    fn high_bits_pick_the_shard() {
        let c = SharedScheduleCache::new(64, 4);
        assert_eq!(c.shard_of(Fingerprint(0)), 0);
        assert_eq!(c.shard_of(Fingerprint(1 << 126)), 1);
        assert_eq!(c.shard_of(Fingerprint(u128::MAX)), 3);
        let one = SharedScheduleCache::new(64, 1);
        assert_eq!(one.shard_of(Fingerprint(u128::MAX)), 0);
    }

    #[test]
    fn miss_then_publish_then_hit() {
        let c = SharedScheduleCache::new(16, 2);
        let fp = Fingerprint(42);
        assert!(matches!(c.plan(fp), SharedProbe::Miss { evicted: None }));
        // A second probe before publish sees the placeholder: miss,
        // no second insert.
        assert!(matches!(c.plan(fp), SharedProbe::Miss { evicted: None }));
        c.publish(fp, &value());
        match c.plan(fp) {
            SharedProbe::Hit { warm, .. } => assert!(!warm),
            SharedProbe::Miss { .. } => panic!("expected a hit after publish"),
        }
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn degraded_values_are_never_shared() {
        let c = SharedScheduleCache::new(16, 1);
        let fp = Fingerprint(7);
        c.plan(fp);
        c.publish(fp, &degraded());
        assert_eq!(c.resident(), 0);
        // The next probe misses (and re-reserves a placeholder).
        assert!(matches!(c.plan(fp), SharedProbe::Miss { .. }));
    }

    #[test]
    fn eviction_is_fifo_within_a_shard() {
        let c = SharedScheduleCache::new(2, 1);
        let (a, b, d) = (Fingerprint(1), Fingerprint(2), Fingerprint(3));
        for fp in [a, b] {
            c.plan(fp);
            c.publish(fp, &value());
        }
        match c.plan(d) {
            SharedProbe::Miss { evicted } => assert_eq!(evicted, Some((1, 1))),
            SharedProbe::Hit { .. } => panic!("d was never inserted"),
        }
        // b survived (probing it inserts nothing); a was the FIFO head.
        assert!(matches!(c.plan(b), SharedProbe::Hit { .. }));
        assert!(matches!(c.plan(a), SharedProbe::Miss { .. }));
    }

    #[test]
    fn dropped_placeholders_do_not_consume_evictions() {
        let c = SharedScheduleCache::new(2, 1);
        let (a, b, d) = (Fingerprint(1), Fingerprint(2), Fingerprint(3));
        c.plan(a);
        c.publish(a, &degraded()); // placeholder dropped, fifo keeps key a
        c.plan(b);
        c.publish(b, &value());
        // Shard is at len 1 < capacity 2: no eviction for d.
        match c.plan(d) {
            SharedProbe::Miss { evicted } => assert_eq!(evicted, None),
            SharedProbe::Hit { .. } => panic!("d was never inserted"),
        }
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn publish_after_eviction_is_a_no_op() {
        let c = SharedScheduleCache::new(1, 1);
        let (a, b) = (Fingerprint(1), Fingerprint(2));
        c.plan(a);
        c.plan(b); // evicts a's placeholder
        c.publish(a, &value());
        assert!(matches!(c.plan(a), SharedProbe::Miss { .. }));
    }

    #[test]
    fn warm_start_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!(
            "asched-shared-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        let _ = std::fs::remove_file(&path);

        let c = SharedScheduleCache::new(16, 2);
        let ws = c.warm_start(&path).unwrap();
        assert_eq!(ws.loaded, 0);
        let fp = Fingerprint(99);
        c.plan(fp);
        c.publish(fp, &value());
        assert_eq!(c.stats().persisted, 1);

        // Fresh cache, same file: the entry comes back warm.
        let c2 = SharedScheduleCache::new(16, 2);
        let ws2 = c2.warm_start(&path).unwrap();
        assert_eq!(ws2.loaded, 1);
        match c2.plan(fp) {
            SharedProbe::Hit { warm, .. } => assert!(warm),
            SharedProbe::Miss { .. } => panic!("expected a warm hit"),
        }
        assert_eq!(c2.stats().warm_hits, 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
