//! Satellite: crash-safety of the on-disk cache format under arbitrary
//! damage. A writer crash can tear the tail; disk corruption can flip
//! any byte. Whatever happens, `persist::decode_file` must never
//! panic, must recover the valid record prefix, and a fingerprint
//! mismatch must drop only the one damaged record.

use asched_core::TraceResult;
use asched_engine::persist::{decode_file, encode_record, header};
use asched_engine::TaskValue;
use asched_graph::{BlockId, NodeId, Schedule};
use proptest::prelude::*;

/// A storable value derived from a seed: varying capacity, schedule
/// shape, permutation and makespan.
fn sample_value(seed: u64) -> TaskValue {
    let capacity = 2 + (seed % 5) as usize;
    let mut predicted = Schedule::new(capacity);
    let mut permutation = Vec::new();
    for i in 0..capacity {
        if (seed >> i) & 1 == 0 {
            let id = NodeId(i as u32);
            predicted.assign(id, seed + i as u64, i % 2, 1 + (seed % 3) as u32);
            permutation.push(id);
        }
    }
    TaskValue {
        result: Some(TraceResult {
            permutation,
            predicted,
            makespan: seed * 3 + 1,
            block_orders: vec![vec![NodeId(0)], vec![]],
            blocks: vec![BlockId(0), BlockId((seed % 4) as u32)],
        }),
        degraded: false,
        error: None,
    }
}

/// `count` records with distinct fingerprints derived from `seed`.
fn sample_records(count: usize, seed: u64) -> Vec<(u128, TaskValue)> {
    (0..count)
        .map(|i| {
            let s = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
            ((s as u128) << 64 | i as u128, sample_value(s % 1000))
        })
        .collect()
}

fn file_with(records: &[(u128, TaskValue)]) -> Vec<u8> {
    let mut out = header();
    for (fp, v) in records {
        out.extend_from_slice(&encode_record(*fp, v).expect("storable"));
    }
    out
}

fn makespan(v: &TaskValue) -> u64 {
    v.result.as_ref().unwrap().makespan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncation at ANY offset — mid-header, mid-frame, mid-payload —
    /// never panics and recovers exactly the records whose frames lie
    /// entirely inside the cut.
    #[test]
    fn truncation_recovers_the_valid_prefix(
        count in 1usize..6,
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let records = sample_records(count, seed);
        let file = file_with(&records);
        let cut = (file.len() as f64 * cut_frac) as usize;
        let dec = decode_file(&file[..cut]);

        prop_assert!(dec.valid_len <= cut);
        prop_assert_eq!(dec.skipped, 0);
        // Whatever survived is an exact prefix of what was written.
        prop_assert!(dec.records.len() <= records.len());
        for (got, want) in dec.records.iter().zip(&records) {
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(makespan(&got.1), makespan(&want.1));
        }
        // Recovery is a fixpoint: decoding the valid prefix again
        // yields the same records and the same length.
        let again = decode_file(&file[..dec.valid_len]);
        prop_assert_eq!(again.valid_len, dec.valid_len);
        prop_assert_eq!(again.records.len(), dec.records.len());
    }

    /// Flipping ANY single byte never panics and never fabricates a
    /// record: everything recovered was genuinely written, and at most
    /// the records at or after the damage are lost (CRC failure stops
    /// the load; a frame-fingerprint mismatch skips exactly one).
    #[test]
    fn single_byte_corruption_never_panics_or_fabricates(
        count in 1usize..6,
        seed in any::<u64>(),
        at_frac in 0.0f64..1.0,
        flip in 1u32..256,
    ) {
        let records = sample_records(count, seed);
        let mut file = file_with(&records);
        let at = ((file.len() - 1) as f64 * at_frac) as usize;
        file[at] ^= flip as u8;
        let dec = decode_file(&file);

        prop_assert!(dec.valid_len <= file.len());
        // No fabricated entries: every recovered record matches one
        // written under the same fingerprint.
        let by_fp: std::collections::HashMap<u128, u64> =
            records.iter().map(|(fp, v)| (*fp, makespan(v))).collect();
        for (fp, v) in &dec.records {
            prop_assert_eq!(by_fp.get(fp).copied(), Some(makespan(v)));
        }
        // Damage is contained: losses (stopped tail + skips) never
        // exceed the record count, and a header hit loses everything
        // rather than mis-keying anything.
        prop_assert!(dec.records.len() + dec.skipped as usize <= records.len());
        if at >= header().len() {
            // Records strictly before the damaged byte's frame are
            // untouched — count how many frames end at or before `at`.
            let mut end = header().len();
            let mut intact = 0;
            for (fp, v) in &records {
                end += encode_record(*fp, v).unwrap().len();
                if end <= at {
                    intact += 1;
                }
            }
            prop_assert!(dec.records.len() >= intact);
        }
    }

    /// A frame-fingerprint flip (the bytes outside the CRC) drops only
    /// that record: every other record survives.
    #[test]
    fn frame_fingerprint_damage_drops_exactly_one(
        count in 2usize..6,
        seed in any::<u64>(),
        victim_frac in 0.0f64..1.0,
    ) {
        let records = sample_records(count, seed);
        let victim = ((count - 1) as f64 * victim_frac) as usize;
        let mut file = header();
        let mut victim_at = 0usize;
        for (i, (fp, v)) in records.iter().enumerate() {
            if i == victim {
                victim_at = file.len();
            }
            file.extend_from_slice(&encode_record(*fp, v).unwrap());
        }
        // Frame fp lives at offset 8..24 of the frame, outside the CRC.
        file[victim_at + 8] ^= 0xA5;

        let dec = decode_file(&file);
        prop_assert_eq!(dec.valid_len, file.len());
        prop_assert_eq!(dec.skipped, 1);
        prop_assert_eq!(dec.records.len(), records.len() - 1);
        let expect: Vec<u128> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, (fp, _))| *fp)
            .collect();
        let got: Vec<u128> = dec.records.iter().map(|(fp, _)| *fp).collect();
        prop_assert_eq!(got, expect);
    }
}
