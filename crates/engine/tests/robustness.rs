//! Robustness contract of the batch engine: panic isolation, step
//! budgets, graceful degradation, caching semantics and input-order
//! results.

use asched_core::{schedule_blocks_independent, schedule_trace, CoreError, SchedCtx, SchedOpts};
use asched_engine::{synth_corpus, Engine, EngineConfig, TaskOutcome, TraceTask};
use asched_graph::{BlockId, DepGraph, MachineModel};
use asched_obs::{JsonlRecorder, NULL};
use asched_workloads::{random_trace_dag, DagParams};

fn small_corpus(n: usize) -> Vec<TraceTask> {
    (0..n)
        .map(|i| {
            let g = random_trace_dag(&DagParams {
                nodes: 18,
                blocks: 3,
                seed: 1000 + i as u64,
                ..DagParams::default()
            });
            TraceTask::new(format!("t{i}"), g, MachineModel::single_unit(4))
        })
        .collect()
}

#[test]
fn panicking_tasks_degrade_without_aborting_the_batch() {
    let tasks = small_corpus(6);
    let engine = Engine::new(EngineConfig {
        jobs: 4,
        ..EngineConfig::default()
    });
    // A solver that panics on two specific tasks and defers to the real
    // scheduler otherwise.
    let report = engine.run_batch_with(&tasks, &NULL, &|ctx, t, cfg, rec| {
        if t.label == "t1" || t.label == "t4" {
            panic!("injected failure in {}", t.label);
        }
        schedule_trace(
            ctx,
            &t.graph,
            &t.machine,
            cfg,
            &SchedOpts::default().with_recorder(rec),
        )
    });

    assert_eq!(report.tasks.len(), 6);
    assert_eq!(report.degraded, 2);
    assert_eq!(report.scheduled, 4);
    assert_eq!(report.failed, 0);
    // Results come back in input order regardless of worker timing.
    for (i, t) in report.tasks.iter().enumerate() {
        assert_eq!(t.index, i);
        assert_eq!(t.label, format!("t{i}"));
    }
    // The degraded tasks carry the panic text and the per-block rank
    // schedule.
    let t1 = &report.tasks[1];
    assert_eq!(t1.outcome, TaskOutcome::Degraded);
    assert!(t1.error.as_deref().unwrap().contains("injected failure"));
    let fallback = schedule_blocks_independent(
        &mut SchedCtx::new(),
        &tasks[1].graph,
        &tasks[1].machine,
        true,
    )
    .unwrap();
    assert_eq!(t1.result.as_ref().unwrap().block_orders, fallback);
}

#[test]
fn step_budget_degrades_instead_of_failing() {
    let tasks = small_corpus(3);
    let engine = Engine::new(EngineConfig {
        step_budget: Some(1), // no merge fits in one step
        ..EngineConfig::default()
    });
    let report = engine.run_batch(&tasks, &NULL);
    assert_eq!(report.degraded, 3);
    for t in &report.tasks {
        assert!(t.result.is_some(), "degraded tasks still carry a schedule");
        assert!(t.error.as_deref().unwrap().contains("step budget"));
    }
}

#[test]
fn solver_errors_use_the_rank_fallback() {
    let tasks = small_corpus(2);
    let engine = Engine::default();
    let report = engine.run_batch_with(&tasks, &NULL, &|_, _, _, _| Err(CoreError::MergeFailed));
    assert_eq!(report.degraded, 2);
    assert!(report.tasks.iter().all(|t| t.result.is_some()));
}

#[test]
fn unschedulable_input_fails_that_task_only() {
    // A loop-independent dependence cycle defeats the fallback too.
    let mut cyclic = DepGraph::new();
    let a = cyclic.add_simple("a", BlockId(0));
    let b = cyclic.add_simple("b", BlockId(0));
    cyclic.add_dep(a, b, 1);
    cyclic.add_dep(b, a, 1);
    let mut tasks = small_corpus(2);
    tasks.insert(
        1,
        TraceTask::new("cyclic", cyclic, MachineModel::single_unit(2)),
    );

    // Route diagnostics into a JSONL buffer to check the event stream.
    let rec = JsonlRecorder::new(Vec::new());
    let report = Engine::default().run_batch(&tasks, &rec);
    assert_eq!(report.failed, 1);
    assert_eq!(report.scheduled, 2);
    assert_eq!(report.tasks[1].outcome, TaskOutcome::Failed);
    assert!(report.tasks[1].result.is_none());
    assert_eq!(report.tasks[1].makespan, 0);

    let log = String::from_utf8(rec.into_inner()).unwrap();
    assert!(log.contains(r#""code":"task_failed""#), "{log}");
    assert!(log.contains(r#""outcome":"failed""#), "{log}");
    // The batch is bracketed by the engine pass.
    assert!(
        log.contains(r#""ev":"pass_begin","pass":"engine""#),
        "{log}"
    );
}

#[test]
fn cache_serves_repeats_across_batches() {
    let tasks = small_corpus(4);
    let engine = Engine::new(EngineConfig {
        cache: true,
        cache_capacity: 64,
        ..EngineConfig::default()
    });
    let first = engine.run_batch(&tasks, &NULL);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.cache_misses, 4);
    assert_eq!(first.scheduled, 4);

    let second = engine.run_batch(&tasks, &NULL);
    assert_eq!(second.cache_hits, 4);
    assert_eq!(second.cache_misses, 0);
    assert_eq!(second.cached, 4);
    for (a, b) in first.tasks.iter().zip(&second.tasks) {
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(
            a.result.as_ref().unwrap().block_orders,
            b.result.as_ref().unwrap().block_orders
        );
    }
}

#[test]
fn within_batch_duplicates_hit_and_capacity_evicts() {
    let mut tasks = small_corpus(2);
    tasks.push(tasks[0].clone()); // duplicate of task 0 in the same batch
    let engine = Engine::new(EngineConfig {
        cache: true,
        cache_capacity: 1,
        ..EngineConfig::default()
    });
    let rec = JsonlRecorder::new(Vec::new());
    let report = engine.run_batch(&tasks, &rec);
    // Task 1 evicted task 0's entry, so the duplicate still hits only
    // via... it cannot: capacity 1 evicted it. Misses: t0, t1, t2.
    assert_eq!(report.cache_misses, 3);
    assert!(report.cache_evictions >= 2);
    let log = String::from_utf8(rec.into_inner()).unwrap();
    assert!(log.contains(r#""ev":"cache_evict""#), "{log}");

    // With room for both, the duplicate aliases task 0's computation.
    let roomy = Engine::new(EngineConfig {
        cache: true,
        cache_capacity: 16,
        ..EngineConfig::default()
    });
    let report = roomy.run_batch(&tasks, &NULL);
    assert_eq!(report.cache_hits, 1);
    assert_eq!(report.cached, 1);
    assert_eq!(report.tasks[2].outcome, TaskOutcome::Cached);
    assert_eq!(
        report.tasks[0].result.as_ref().unwrap().block_orders,
        report.tasks[2].result.as_ref().unwrap().block_orders
    );
}

#[test]
fn parallel_equals_sequential_on_a_synth_corpus() {
    let tasks = synth_corpus(48, 7);
    let seq = Engine::new(EngineConfig {
        jobs: 1,
        cache: true,
        ..EngineConfig::default()
    })
    .run_batch(&tasks, &NULL);
    let par = Engine::new(EngineConfig {
        jobs: 8,
        cache: true,
        ..EngineConfig::default()
    })
    .run_batch(&tasks, &NULL);
    assert_eq!(seq.metrics(), par.metrics());
    for (a, b) in seq.tasks.iter().zip(&par.tasks) {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(
            a.result.as_ref().map(|r| &r.block_orders),
            b.result.as_ref().map(|r| &r.block_orders)
        );
    }
}
