//! Satellite: engine output is byte-identical for `jobs = 1` vs
//! `jobs = 8` over a seeded `random_prog` corpus — results, JSONL
//! events (modulo `pass_end` timestamps) and deterministic BENCH
//! metrics.

use asched_engine::{BatchReport, Engine, EngineConfig, TraceTask};
use asched_graph::MachineModel;
use asched_ir::{build_trace_graph, LatencyModel};
use asched_obs::{JsonlRecorder, SpanAlloc, SpanScope};
use asched_workloads::{random_program, ProgParams};

/// A seeded random_prog corpus with deliberate duplicates (seeds wrap
/// modulo 7) so the cache path is exercised too.
fn prog_corpus() -> Vec<TraceTask> {
    let mut tasks = Vec::new();
    for i in 0..40u64 {
        let seed = 9000 + i % 7;
        let w = [2, 4, 8][(i % 3) as usize];
        let prog = random_program(&ProgParams {
            blocks: 3,
            insts_per_block: 8,
            with_branches: false,
            seed,
            ..ProgParams::default()
        });
        let g = build_trace_graph(&prog, &LatencyModel::fig3());
        tasks.push(TraceTask::new(
            format!("prog:{seed}:w{w}"),
            g,
            MachineModel::single_unit(w),
        ));
    }
    tasks
}

/// Zero out every `"nanos":N` payload — the only nondeterministic field
/// in the event stream (wall-clock span durations on `pass_end`).
fn normalize_nanos(log: &str) -> String {
    let mut out = String::with_capacity(log.len());
    let mut rest = log;
    const KEY: &str = "\"nanos\":";
    while let Some(at) = rest.find(KEY) {
        let (head, tail) = rest.split_at(at + KEY.len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn run(jobs: usize, tasks: &[TraceTask]) -> (BatchReport, String) {
    let engine = Engine::new(EngineConfig {
        jobs,
        cache: true,
        cache_capacity: 256,
        ..EngineConfig::default()
    });
    let rec = JsonlRecorder::new(Vec::new());
    let report = engine.run_batch(tasks, &rec);
    let log = String::from_utf8(rec.into_inner()).unwrap();
    (report, log)
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let tasks = prog_corpus();
    let (seq, seq_log) = run(1, &tasks);
    let (par, par_log) = run(8, &tasks);

    // Results: outcome, makespan, fingerprint and emitted code agree
    // task by task, in input order.
    assert_eq!(seq.tasks.len(), par.tasks.len());
    for (a, b) in seq.tasks.iter().zip(&par.tasks) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.label, b.label);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.fingerprint, b.fingerprint);
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(ra.block_orders, rb.block_orders);
        assert_eq!(ra.permutation, rb.permutation);
    }

    // The corpus has duplicates, so the cache must actually fire for
    // this test to mean anything.
    assert!(seq.cache_hits > 0, "corpus must exercise the cache");
    assert!(seq.scheduled > 0);

    // Deterministic BENCH metrics are identical...
    assert_eq!(seq.metrics(), par.metrics());
    // ...and the full JSONL event stream is byte-identical once the
    // wall-clock payloads are zeroed.
    assert_eq!(normalize_nanos(&seq_log), normalize_nanos(&par_log));

    // Both logs validate against the documented schema.
    asched_obs::schema::validate_document(&seq_log)
        .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
}

fn run_traced(jobs: usize, tasks: &[TraceTask]) -> (BatchReport, String) {
    let engine = Engine::new(EngineConfig {
        jobs,
        cache: true,
        cache_capacity: 256,
        ..EngineConfig::default()
    });
    let rec = JsonlRecorder::new(Vec::new());
    let spans = SpanAlloc::new();
    let report = engine.run_batch_traced(None, tasks, &rec, Some(SpanScope::root(&spans)));
    let log = String::from_utf8(rec.into_inner()).unwrap();
    (report, log)
}

/// The traced batch path allocates span ids only in the engine's
/// sequential plan/emit phases, so the *span forest* — ids, parents,
/// names, attribution — must also be byte-identical across job counts.
#[test]
fn traced_spans_are_byte_identical_across_jobs() {
    let tasks = prog_corpus();
    let (seq, seq_log) = run_traced(1, &tasks);
    let (par, par_log) = run_traced(8, &tasks);

    assert_eq!(seq.metrics(), par.metrics());
    assert_eq!(normalize_nanos(&seq_log), normalize_nanos(&par_log));

    // One "engine" root with one "task" span per task, all closed, no
    // orphans — checked by the schema's cross-line span checker.
    let report = asched_obs::schema::check_spans(&seq_log)
        .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
    assert_eq!(report.started, 1 + tasks.len());
    assert_eq!(report.ended, report.started);
    assert!(report.unclosed.is_empty());
    asched_obs::schema::validate_document(&seq_log)
        .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));

    // Every cache query and task_done is attributed to a task span.
    for line in seq_log.lines() {
        if line.contains("\"ev\":\"cache_query\"") || line.contains("\"ev\":\"task_done\"") {
            assert!(line.contains("\"span\":"), "unattributed event: {line}");
        }
    }
}
