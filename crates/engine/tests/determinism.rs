//! Satellite: engine output is byte-identical for `jobs = 1` vs
//! `jobs = 8` over a seeded `random_prog` corpus — results, JSONL
//! events (modulo `pass_end` timestamps) and deterministic BENCH
//! metrics. The same contract holds when the engine is backed by a
//! process-wide [`SharedScheduleCache`], and results (though not
//! hit/miss labels) are identical whichever cache backs the engine.

use std::sync::Arc;

use asched_engine::{BatchReport, Engine, EngineConfig, SharedScheduleCache, TraceTask};
use asched_graph::MachineModel;
use asched_ir::{build_trace_graph, LatencyModel};
use asched_obs::{JsonlRecorder, SpanAlloc, SpanScope};
use asched_workloads::{random_program, ProgParams};

/// A seeded random_prog corpus with deliberate duplicates (seeds wrap
/// modulo 7) so the cache path is exercised too.
fn prog_corpus() -> Vec<TraceTask> {
    let mut tasks = Vec::new();
    for i in 0..40u64 {
        let seed = 9000 + i % 7;
        let w = [2, 4, 8][(i % 3) as usize];
        let prog = random_program(&ProgParams {
            blocks: 3,
            insts_per_block: 8,
            with_branches: false,
            seed,
            ..ProgParams::default()
        });
        let g = build_trace_graph(&prog, &LatencyModel::fig3());
        tasks.push(TraceTask::new(
            format!("prog:{seed}:w{w}"),
            g,
            MachineModel::single_unit(w),
        ));
    }
    tasks
}

/// Zero out every `"nanos":N` payload — the only nondeterministic field
/// in the event stream (wall-clock span durations on `pass_end`).
fn normalize_nanos(log: &str) -> String {
    let mut out = String::with_capacity(log.len());
    let mut rest = log;
    const KEY: &str = "\"nanos\":";
    while let Some(at) = rest.find(KEY) {
        let (head, tail) = rest.split_at(at + KEY.len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn run(jobs: usize, tasks: &[TraceTask]) -> (BatchReport, String) {
    let engine = Engine::new(EngineConfig {
        jobs,
        cache: true,
        cache_capacity: 256,
        ..EngineConfig::default()
    });
    let rec = JsonlRecorder::new(Vec::new());
    let report = engine.run_batch(tasks, &rec);
    let log = String::from_utf8(rec.into_inner()).unwrap();
    (report, log)
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical() {
    let tasks = prog_corpus();
    let (seq, seq_log) = run(1, &tasks);
    let (par, par_log) = run(8, &tasks);

    // Results: outcome, makespan, fingerprint and emitted code agree
    // task by task, in input order.
    assert_eq!(seq.tasks.len(), par.tasks.len());
    for (a, b) in seq.tasks.iter().zip(&par.tasks) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.label, b.label);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.fingerprint, b.fingerprint);
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(ra.block_orders, rb.block_orders);
        assert_eq!(ra.permutation, rb.permutation);
    }

    // The corpus has duplicates, so the cache must actually fire for
    // this test to mean anything.
    assert!(seq.cache_hits > 0, "corpus must exercise the cache");
    assert!(seq.scheduled > 0);

    // Deterministic BENCH metrics are identical...
    assert_eq!(seq.metrics(), par.metrics());
    // ...and the full JSONL event stream is byte-identical once the
    // wall-clock payloads are zeroed.
    assert_eq!(normalize_nanos(&seq_log), normalize_nanos(&par_log));

    // Both logs validate against the documented schema.
    asched_obs::schema::validate_document(&seq_log)
        .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
}

fn run_shared(jobs: usize, shards: usize, tasks: &[TraceTask]) -> (BatchReport, String) {
    let engine = Engine::with_shared_cache(
        EngineConfig {
            jobs,
            cache: true,
            cache_capacity: 256,
            ..EngineConfig::default()
        },
        Arc::new(SharedScheduleCache::new(256, shards)),
    );
    let rec = JsonlRecorder::new(Vec::new());
    let report = engine.run_batch(tasks, &rec);
    let log = String::from_utf8(rec.into_inner()).unwrap();
    (report, log)
}

/// The determinism contract survives the shared cache: with a fresh
/// shared cache per run, results, deterministic metrics and the event
/// stream (now carrying `shard` attribution) are byte-identical at any
/// job count — every cache decision still happens in the sequential
/// plan phase.
#[test]
fn shared_cache_is_byte_identical_across_jobs() {
    let tasks = prog_corpus();
    let (seq, seq_log) = run_shared(1, 8, &tasks);
    let (par, par_log) = run_shared(8, 8, &tasks);

    assert_eq!(seq.tasks.len(), par.tasks.len());
    for (a, b) in seq.tasks.iter().zip(&par.tasks) {
        assert_eq!(a.outcome, b.outcome, "{}", a.label);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.fingerprint, b.fingerprint);
    }
    assert!(seq.cache_hits > 0, "corpus must exercise the shared cache");
    assert_eq!(seq.metrics(), par.metrics());
    assert_eq!(normalize_nanos(&seq_log), normalize_nanos(&par_log));

    // Sharded cache events (with their shard field) still validate.
    assert!(seq_log.contains("\"shard\":"), "shard attribution missing");
    asched_obs::schema::validate_document(&seq_log)
        .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
}

/// Task results are a pure function of the corpus whatever cache backs
/// the engine — private, shared (any shard count), or none — and a
/// single-sharded shared cache reproduces the private cache's counters
/// exactly (same FIFO, same capacity, same plan order).
#[test]
fn results_agree_across_cache_backends() {
    let tasks = prog_corpus();
    let (private, _) = run(1, &tasks);
    let (shared, _) = run_shared(1, 1, &tasks);
    let (sharded, _) = run_shared(1, 8, &tasks);
    let uncached = Engine::new(EngineConfig {
        jobs: 1,
        cache: false,
        ..EngineConfig::default()
    })
    .run_batch(&tasks, &asched_obs::NULL);

    for ((a, b), (c, d)) in private
        .tasks
        .iter()
        .zip(&shared.tasks)
        .zip(sharded.tasks.iter().zip(&uncached.tasks))
    {
        assert_eq!(a.makespan, b.makespan, "{}", a.label);
        assert_eq!(a.makespan, c.makespan, "{}", a.label);
        assert_eq!(a.makespan, d.makespan, "{}", a.label);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.fingerprint, c.fingerprint);
        // Outcome labels differ by design (cached engines report
        // Cached for duplicates; the uncached engine recomputes), and
        // the uncached engine never fingerprints — but the schedule
        // itself must be the same bytes everywhere.
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        let rd = d.result.as_ref().unwrap();
        assert_eq!(ra.permutation, rb.permutation);
        assert_eq!(ra.permutation, rd.permutation);
        assert_eq!(ra.block_orders, rb.block_orders);
        assert_eq!(ra.block_orders, rd.block_orders);
    }

    // One shard, same capacity → the private cache's exact counters.
    assert_eq!(private.cache_hits, shared.cache_hits);
    assert_eq!(private.cache_misses, shared.cache_misses);
    assert_eq!(private.cache_evictions, shared.cache_evictions);
    assert_eq!(private.cache_resident, shared.cache_resident);
    assert_eq!(private.cache_capacity, shared.cache_capacity);
}

fn run_traced(jobs: usize, tasks: &[TraceTask]) -> (BatchReport, String) {
    let engine = Engine::new(EngineConfig {
        jobs,
        cache: true,
        cache_capacity: 256,
        ..EngineConfig::default()
    });
    let rec = JsonlRecorder::new(Vec::new());
    let spans = SpanAlloc::new();
    let report = engine.run_batch_traced(None, tasks, &rec, Some(SpanScope::root(&spans)));
    let log = String::from_utf8(rec.into_inner()).unwrap();
    (report, log)
}

/// The traced batch path allocates span ids only in the engine's
/// sequential plan/emit phases, so the *span forest* — ids, parents,
/// names, attribution — must also be byte-identical across job counts.
#[test]
fn traced_spans_are_byte_identical_across_jobs() {
    let tasks = prog_corpus();
    let (seq, seq_log) = run_traced(1, &tasks);
    let (par, par_log) = run_traced(8, &tasks);

    assert_eq!(seq.metrics(), par.metrics());
    assert_eq!(normalize_nanos(&seq_log), normalize_nanos(&par_log));

    // One "engine" root with one "task" span per task, all closed, no
    // orphans — checked by the schema's cross-line span checker.
    let report = asched_obs::schema::check_spans(&seq_log)
        .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));
    assert_eq!(report.started, 1 + tasks.len());
    assert_eq!(report.ended, report.started);
    assert!(report.unclosed.is_empty());
    asched_obs::schema::validate_document(&seq_log)
        .unwrap_or_else(|(line, err)| panic!("line {line}: {err}"));

    // Every cache query and task_done is attributed to a task span.
    for line in seq_log.lines() {
        if line.contains("\"ev\":\"cache_query\"") || line.contains("\"ev\":\"task_done\"") {
            assert!(line.contains("\"span\":"), "unattributed event: {line}");
        }
    }
}
