//! E11: compile-time scaling of the schedulers (criterion).
//!
//! Times the Rank Algorithm, idle-slot delaying, Algorithm `Lookahead`,
//! the baselines and the window simulator across graph sizes.

use asched_baselines::all_baselines;
use asched_core::{schedule_trace, LookaheadConfig};
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_rank::{delay_idle_slots, rank_schedule_default, Deadlines};
use asched_sim::{simulate, InstStream, IssuePolicy};
use asched_workloads::{random_trace_dag, DagParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows: the repository's benches are run routinely
/// alongside the test suite; statistical depth matters less than keeping
/// `cargo bench` under a minute.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500))
}

fn workload(nodes: usize, blocks: usize) -> asched_graph::DepGraph {
    random_trace_dag(&DagParams {
        nodes,
        blocks,
        edge_prob: 0.25,
        cross_prob: 0.1,
        max_latency: 2,
        seed: 0xBEEF + nodes as u64,
        ..DagParams::default()
    })
}

fn bench_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_schedule");
    for &n in &[32usize, 128, 512] {
        let g = workload(n, 1);
        let machine = MachineModel::single_unit(4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut sc = SchedCtx::new();
            b.iter(|| {
                rank_schedule_default(&mut sc, &g, &g.all_nodes(), &machine).expect("schedules")
            })
        });
    }
    group.finish();
}

fn bench_delay_idle_slots(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_idle_slots");
    for &n in &[32usize, 128] {
        let g = workload(n, 1);
        let machine = MachineModel::single_unit(4);
        let mask = g.all_nodes();
        let mut sc = SchedCtx::new();
        let s0 = rank_schedule_default(&mut sc, &g, &mask, &machine).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut d = Deadlines::uniform(&g, &mask, s0.makespan() as i64);
                delay_idle_slots(
                    &mut sc,
                    &g,
                    &mask,
                    &machine,
                    s0.clone(),
                    &mut d,
                    &SchedOpts::default(),
                )
            })
        });
    }
    group.finish();
}

fn bench_lookahead(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_lookahead");
    for &(n, m) in &[(32usize, 4usize), (128, 8), (512, 16)] {
        let g = workload(n, m);
        let machine = MachineModel::single_unit(4);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}n_{m}b")),
            &n,
            |b, _| {
                let mut sc = SchedCtx::new();
                b.iter(|| {
                    schedule_trace(
                        &mut sc,
                        &g,
                        &machine,
                        &LookaheadConfig::default(),
                        &SchedOpts::default(),
                    )
                    .expect("ok")
                })
            },
        );
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_128n");
    let g = workload(128, 8);
    let machine = MachineModel::single_unit(4);
    for base in all_baselines() {
        group.bench_function(base.name, |b| {
            b.iter(|| (base.run)(&g, &machine).expect("schedules"))
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_simulator");
    for &n in &[128usize, 512] {
        let g = workload(n, 4);
        let machine = MachineModel::single_unit(8);
        let mut sc = SchedCtx::new();
        let res = schedule_trace(
            &mut sc,
            &g,
            &machine,
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .unwrap();
        let stream = InstStream::from_blocks(&res.block_orders);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                simulate(
                    &mut sc,
                    &g,
                    &machine,
                    &stream,
                    IssuePolicy::Strict,
                    &SchedOpts::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_rank, bench_delay_idle_slots, bench_lookahead, bench_baselines, bench_simulator
}
criterion_main!(benches);
