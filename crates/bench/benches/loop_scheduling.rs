//! E11 (continued): compile-time of the loop schedulers — Section 5.2.3
//! candidate search, modulo scheduling and the anticipatory post-pass.

use asched_core::{schedule_single_block_loop, LookaheadConfig};
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_ir::{build_loop_graph, LatencyModel};
use asched_pipeline::{anticipatory_postpass, modulo_schedule};
use asched_workloads::kernels::all_kernels;
use asched_workloads::{random_loop_dag, DagParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows: the repository's benches are run routinely
/// alongside the test suite; statistical depth matters less than keeping
/// `cargo bench` under a minute.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500))
}

fn bench_single_block_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("section_5_2_3");
    let machine = MachineModel::single_unit(1);
    let cfg = LookaheadConfig::default();
    for (name, prog) in all_kernels() {
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        if g.blocks().len() != 1 {
            continue;
        }
        group.bench_function(name, |b| {
            let mut sc = SchedCtx::new();
            b.iter(|| {
                schedule_single_block_loop(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
                    .expect("schedules")
            })
        });
    }
    for &n in &[16usize, 48] {
        let g = random_loop_dag(
            &DagParams {
                nodes: n,
                blocks: 1,
                edge_prob: 0.3,
                max_latency: 4,
                seed: 0xBEE5 + n as u64,
                ..DagParams::default()
            },
            4,
        );
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, _| {
            let mut sc = SchedCtx::new();
            b.iter(|| {
                schedule_single_block_loop(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
                    .expect("schedules")
            })
        });
    }
    group.finish();
}

fn bench_modulo(c: &mut Criterion) {
    let mut group = c.benchmark_group("modulo_scheduling");
    let machine = MachineModel::single_unit(1);
    for (name, prog) in all_kernels() {
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        if g.blocks().len() != 1 {
            continue;
        }
        group.bench_function(name, |b| {
            b.iter(|| modulo_schedule(&g, &machine).expect("pipelines"))
        });
    }
    group.finish();
}

fn bench_postpass(c: &mut Criterion) {
    let mut group = c.benchmark_group("anticipatory_postpass");
    let machine = MachineModel::single_unit(1);
    let cfg = LookaheadConfig::default();
    let g = build_loop_graph(
        &asched_workloads::fixtures::fig3_program(),
        &LatencyModel::fig3(),
    );
    group.bench_function("fig3", |b| {
        let mut sc = SchedCtx::new();
        b.iter(|| {
            anticipatory_postpass(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
                .expect("pipelines")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_single_block_loop, bench_modulo, bench_postpass
}
criterion_main!(benches);
