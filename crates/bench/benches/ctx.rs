//! Context-reuse benchmarks: cold (fresh [`SchedCtx`] per call) versus
//! warm (one context reused) across graph sizes, for the rank kernel
//! and the full trace scheduler.
//!
//! The warm path serves the topo order, descendant bitsets and
//! successor lists from the analysis cache and recycles every scratch
//! buffer, so after the first call it runs allocation-free (see
//! `crates/rank/tests/zero_alloc.rs` for the allocator-level proof).
//!
//! Besides the criterion timings, the harness writes a
//! `BENCH_ctx.json` snapshot with the cold/warm medians and speedups
//! under the `ctx.*` metric namespace, so the context-reuse trajectory
//! is tracked across PRs exactly like the experiment cycle counts.

use asched_bench::report;
use asched_core::{merge, schedule_trace, LookaheadConfig};
use asched_graph::{BlockId, DepGraph, MachineModel, SchedCtx, SchedOpts};
use asched_rank::{compute_ranks, Deadlines};
use asched_workloads::{random_trace_dag, DagParams};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

/// The sizes the issue tracks (64/256/1024) plus the 512-node point the
/// acceptance gate measures.
const SIZES: [usize; 4] = [64, 256, 512, 1024];

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(500))
}

/// A paper-shaped trace: many small basic blocks (~8 instructions,
/// the realistic block size) with light cross-block coupling. Small
/// blocks keep descendant sets short, so the per-call backward pass is
/// cheap and the cold/warm gap isolates the cached analyses.
fn workload(nodes: usize) -> DepGraph {
    random_trace_dag(&DagParams {
        nodes,
        blocks: (nodes / 8).max(1),
        edge_prob: 0.3,
        cross_prob: 0.05,
        max_latency: 2,
        seed: 0xC0DE + nodes as u64,
        ..DagParams::default()
    })
}

fn trace_workload(nodes: usize) -> DepGraph {
    random_trace_dag(&DagParams {
        nodes,
        blocks: 4,
        edge_prob: 0.2,
        cross_prob: 0.1,
        max_latency: 2,
        seed: 0xC0DE + nodes as u64,
        ..DagParams::default()
    })
}

fn bench_ranks_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctx_compute_ranks");
    for &n in &SIZES {
        let g = workload(n);
        let mask = g.all_nodes();
        let machine = MachineModel::single_unit(4);
        let d = Deadlines::uniform(&g, &mask, g.len() as i64 * 4);
        let opts = SchedOpts::default();
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                let mut sc = SchedCtx::new();
                let r = compute_ranks(&mut sc, &g, &mask, &machine, &d, &opts).unwrap();
                black_box(r[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            let mut sc = SchedCtx::new();
            // Prime the analysis cache and scratch before measuring.
            compute_ranks(&mut sc, &g, &mask, &machine, &d, &opts).unwrap();
            b.iter(|| {
                let r = compute_ranks(&mut sc, &g, &mask, &machine, &d, &opts).unwrap();
                black_box(r[0])
            })
        });
    }
    group.finish();
}

fn bench_merge_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctx_merge");
    let cfg = LookaheadConfig::default();
    let opts = SchedOpts::default();
    for &n in &SIZES {
        // Two-block trace: merge block 1 into block 0's carried tail.
        let g = random_trace_dag(&DagParams {
            nodes: n,
            blocks: 2,
            edge_prob: 0.25,
            cross_prob: 0.1,
            max_latency: 2,
            seed: 0xC0DE + n as u64,
            ..DagParams::default()
        });
        let machine = MachineModel::single_unit(4);
        let old = g.block_nodes(BlockId(0));
        let new = g.block_nodes(BlockId(1));
        let d0 = Deadlines::unbounded(&g, &g.all_nodes());
        let mut saved = Vec::new();
        d0.save_into(&mut saved);
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            let mut d = d0.clone();
            b.iter(|| {
                let mut sc = SchedCtx::new();
                d.restore_from(&saved);
                merge(&mut sc, &g, &machine, &old, &new, &mut d, &cfg, &opts)
                    .unwrap()
                    .schedule
                    .makespan()
            })
        });
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            let mut sc = SchedCtx::new();
            let mut d = d0.clone();
            merge(&mut sc, &g, &machine, &old, &new, &mut d, &cfg, &opts).unwrap();
            b.iter(|| {
                d.restore_from(&saved);
                merge(&mut sc, &g, &machine, &old, &new, &mut d, &cfg, &opts)
                    .unwrap()
                    .schedule
                    .makespan()
            })
        });
    }
    group.finish();
}

fn bench_trace_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctx_schedule_trace");
    let cfg = LookaheadConfig::default();
    let opts = SchedOpts::default();
    for &n in &SIZES {
        let g = trace_workload(n);
        let machine = MachineModel::single_unit(4);
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                let mut sc = SchedCtx::new();
                schedule_trace(&mut sc, &g, &machine, &cfg, &opts)
                    .unwrap()
                    .makespan
            })
        });
        group.bench_with_input(BenchmarkId::new("warm", n), &n, |b, _| {
            let mut sc = SchedCtx::new();
            schedule_trace(&mut sc, &g, &machine, &cfg, &opts).unwrap();
            b.iter(|| {
                schedule_trace(&mut sc, &g, &machine, &cfg, &opts)
                    .unwrap()
                    .makespan
            })
        });
    }
    group.finish();
}

/// Median wall-clock of `f` over `samples` runs, in nanoseconds.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as f64
}

/// Snapshot pass: re-measure cold vs warm with plain wall-clock medians
/// and publish `ctx.*` metrics into `BENCH_ctx.json`.
fn write_snapshot() {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let machine = MachineModel::single_unit(4);
    let opts = SchedOpts::default();
    for &n in &SIZES {
        let g = workload(n);
        let mask = g.all_nodes();
        let d = Deadlines::uniform(&g, &mask, g.len() as i64 * 4);
        let cold = median_ns(31, || {
            let mut sc = SchedCtx::new();
            let r = compute_ranks(&mut sc, &g, &mask, &machine, &d, &opts).unwrap();
            black_box(r[0]);
        });
        let mut sc = SchedCtx::new();
        compute_ranks(&mut sc, &g, &mask, &machine, &d, &opts).unwrap();
        let warm = median_ns(31, || {
            let r = compute_ranks(&mut sc, &g, &mask, &machine, &d, &opts).unwrap();
            black_box(r[0]);
        });
        metrics.push((format!("ctx.ranks.cold_ns.{n}"), cold));
        metrics.push((format!("ctx.ranks.warm_ns.{n}"), warm));
        metrics.push((format!("ctx.ranks.speedup.{n}"), cold / warm.max(1.0)));
    }
    let doc = report::snapshot_json("ctx", &metrics, None);
    // Write at the workspace root (like the other BENCH snapshots),
    // independent of the bench harness's working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ctx.json");
    match std::fs::write(path, doc + "\n") {
        Ok(()) => println!("wrote BENCH_ctx.json ({} metrics)", metrics.len()),
        Err(e) => eprintln!("cannot write BENCH_ctx.json: {e}"),
    }
    for (name, v) in &metrics {
        println!("{name}: {v:.0}");
    }
}

fn bench_snapshot(_c: &mut Criterion) {
    write_snapshot();
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_ranks_cold_vs_warm, bench_merge_cold_vs_warm, bench_trace_cold_vs_warm, bench_snapshot
);
criterion_main!(benches);
