//! Regenerates every figure/table of the paper under `cargo bench`
//! (deliverable: the harness prints the same rows/series the paper
//! reports). Not a timing benchmark — see `scheduler_scaling` for E11.

fn main() {
    let mut out = std::io::stdout().lock();
    asched_bench::experiments::run_all(&mut out).expect("experiments run");
}
