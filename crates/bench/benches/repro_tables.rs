//! Regenerates every figure/table of the paper under `cargo bench`
//! (deliverable: the harness prints the same rows/series the paper
//! reports). Not a timing benchmark — see `scheduler_scaling` for E11.

fn main() {
    let mut out = std::io::stdout().lock();
    let mut ctx = asched_bench::experiments::RunCtx::new(&mut out);
    asched_bench::experiments::run_all(&mut ctx).expect("experiments run");
}
