//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are pre-formatted strings).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// A section header for experiment output.
pub fn section(id: &str, title: &str) -> String {
    let line = "=".repeat(72);
    format!("\n{line}\n[{id}] {title}\n{line}\n")
}

/// Format a rational period as `a/b = x.xx`.
pub fn period((num, den): (u64, u64)) -> String {
    if num % den == 0 {
        format!("{}", num / den)
    } else {
        format!("{:.2}", num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rendering() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "123"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned columns have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn period_formatting() {
        assert_eq!(period((12, 2)), "6");
        assert_eq!(period((13, 2)), "6.50");
    }

    #[test]
    fn section_contains_id() {
        assert!(section("F1", "Figure 1").contains("[F1] Figure 1"));
    }
}
