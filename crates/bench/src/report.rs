//! Plain-text table rendering for experiment reports, plus the
//! machine-readable `BENCH_<label>.json` snapshot format that tracks
//! the cycle-count trajectory (and, optionally, a [`RunProfile`])
//! across PRs.

use asched_obs::json::JsonObject;
use asched_obs::RunProfile;
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are pre-formatted strings).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// A section header for experiment output.
pub fn section(id: &str, title: &str) -> String {
    let line = "=".repeat(72);
    format!("\n{line}\n[{id}] {title}\n{line}\n")
}

/// Format a rational period as `a/b = x.xx`.
pub fn period((num, den): (u64, u64)) -> String {
    if num % den == 0 {
        format!("{}", num / den)
    } else {
        format!("{:.2}", num as f64 / den as f64)
    }
}

/// Render a [`RunProfile`] as a report section: the per-pass timing
/// table and the event counters, in the same aligned-table style as
/// the experiment output.
pub fn profile_section(profile: &RunProfile) -> String {
    let mut out = section("PROFILE", "per-pass wall-clock and event counters");
    out.push_str(&profile.to_string());
    out
}

/// The `BENCH_<label>.json` snapshot document: experiment metrics
/// (insertion-ordered name/value pairs, typically cycle counts), and
/// the aggregated [`RunProfile`] when one was collected.
///
/// The format is a single flat-ish JSON object:
///
/// ```json
/// {"schema":"asched-bench-snapshot-v2","label":"...",
///  "metrics":{"f2.anticipatory_cycles":10.0, ...},
///  "profile":{...}}
/// ```
///
/// v2 (engine PR): snapshots may now carry the batch engine's
/// `engine.*` counters (task outcomes, cache hits/misses/evictions,
/// hit rate) and the batch CLI's `wall.*` timings alongside the
/// experiment cycle counts. v1 consumers that treated `metrics` as an
/// opaque name→number map keep working; the version records that the
/// metric namespace widened.
pub fn snapshot_json(
    label: &str,
    metrics: &[(String, f64)],
    profile: Option<&RunProfile>,
) -> String {
    let mut m = JsonObject::new();
    for (name, value) in metrics {
        m.f64(name, *value);
    }
    let mut o = JsonObject::new();
    o.str("schema", "asched-bench-snapshot-v2")
        .str("label", label);
    o.raw("metrics", &m.finish());
    if let Some(p) = profile {
        o.raw("profile", &p.to_json());
    }
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rendering() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "123"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned columns have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn period_formatting() {
        assert_eq!(period((12, 2)), "6");
        assert_eq!(period((13, 2)), "6.50");
    }

    #[test]
    fn section_contains_id() {
        assert!(section("F1", "Figure 1").contains("[F1] Figure 1"));
    }

    #[test]
    fn snapshot_json_shape() {
        let metrics = vec![("f2.anticipatory_cycles".to_string(), 10.0)];
        let doc = snapshot_json("pr1", &metrics, None);
        assert!(doc.starts_with(r#"{"schema":"asched-bench-snapshot-v2","label":"pr1""#));
        assert!(doc.contains(r#""f2.anticipatory_cycles":10"#));
        assert!(!doc.contains("profile"));

        let mut p = RunProfile::new();
        p.bump("merges", 3);
        let doc = snapshot_json("pr1", &metrics, Some(&p));
        assert!(doc.contains(r#""profile":{"#));
        assert!(doc.contains(r#""merges":3"#));
    }

    #[test]
    fn profile_section_embeds_passes() {
        let mut p = RunProfile::new();
        p.add_pass(asched_obs::Pass::Merge, 1_500_000);
        let s = profile_section(&p);
        assert!(s.contains("[PROFILE]"));
        assert!(s.contains("merge"));
    }
}
