//! Benchmark and reproduction harness.
//!
//! Regenerates every figure of the paper (F1, F2, F3, F8) and the
//! future-work evaluation the paper proposes (E5–E13). Run with:
//!
//! ```text
//! cargo run -p asched-bench --bin repro            # everything
//! cargo run -p asched-bench --bin repro f3 e5      # selected
//! ```
//!
//! The same tables are printed by `cargo bench` (the `repro_tables`
//! bench target) alongside the criterion timing benches (E11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
