//! E8: multiple functional units (the Section 4.2 heuristic).

use crate::experiments::{sim_blocks, RunCtx};
use crate::report::{section, Table};
use asched_baselines::{critical_path, warren};
use asched_core::schedule_blocks_independent;
use asched_engine::TraceTask;
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_rank::{rank_schedule, BackwardMode, Deadlines};
use asched_workloads::{random_trace_dag, DagParams};
use std::io::{self, Write};

const SEEDS: u64 = 10;

fn machine_slug(name: &str) -> &'static str {
    match name {
        "1 universal unit" => "u1",
        "2 universal units" => "u2",
        _ => "rs6000",
    }
}

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "E8",
            "multiple functional units at W=4 — mean cycles over 10 class-tagged traces"
        )
    )?;
    let machines: Vec<(&str, MachineModel)> = vec![
        ("1 universal unit", MachineModel::single_unit(4)),
        ("2 universal units", MachineModel::uniform(2, 4)),
        ("fixed/float/mem/branch", MachineModel::rs6000_like(4)),
    ];
    let mut sc = SchedCtx::new();
    let mut t = Table::new([
        "machine",
        "critpath",
        "warren",
        "local+delay",
        "anticipatory",
    ]);
    for (name, machine) in &machines {
        let mut sums = [0.0f64; 4];
        let mut graphs = Vec::new();
        let mut tasks = Vec::new();
        for seed in 0..SEEDS {
            let g = random_trace_dag(&DagParams {
                nodes: 32,
                blocks: 4,
                edge_prob: 0.3,
                cross_prob: 0.15,
                max_latency: 3,
                max_exec: 2,
                class_fraction: 1.0,
                seed: seed * 193 + 3,
            });
            tasks.push(TraceTask::new(
                format!("e8:{}:s{seed}", machine_slug(name)),
                g.clone(),
                machine.clone(),
            ));
            graphs.push(g);
        }
        let ants = w.trace_batch(tasks);
        for (g, ant) in graphs.iter().zip(&ants) {
            let cp = critical_path(g, machine).expect("schedules");
            sums[0] += sim_blocks(&mut sc, g, machine, &cp) as f64;
            let wa = warren(g, machine).expect("schedules");
            sums[1] += sim_blocks(&mut sc, g, machine, &wa) as f64;
            let local = schedule_blocks_independent(&mut sc, g, machine, true).expect("schedules");
            sums[2] += sim_blocks(&mut sc, g, machine, &local) as f64;
            sums[3] += sim_blocks(&mut sc, g, machine, &ant.block_orders) as f64;
        }
        let n = SEEDS as f64;
        w.metric_f(
            &format!("e8.{}.anticipatory", machine_slug(name)),
            sums[3] / n,
        );
        t.row([
            name.to_string(),
            format!("{:.1}", sums[0] / n),
            format!("{:.1}", sums[1] / n),
            format!("{:.1}", sums[2] / n),
            format!("{:.1}", sums[3] / n),
        ]);
    }
    writeln!(w, "{}", t.render())?;

    // Section 4.2's two backward-scheduling variants for non-unit
    // execution times: whole insertion vs piecewise (single-cycle
    // pieces). Per-block rank scheduling, simulated at W=4.
    let mut t2 = Table::new(["machine", "rank (whole)", "rank (piecewise)"]);
    for (name, machine) in &machines {
        let mut sums = [0.0f64; 2];
        for seed in 0..SEEDS {
            let g = random_trace_dag(&DagParams {
                nodes: 32,
                blocks: 4,
                edge_prob: 0.3,
                cross_prob: 0.15,
                max_latency: 3,
                max_exec: 3,
                class_fraction: 1.0,
                seed: seed * 811 + 9,
            });
            for (i, mode) in [BackwardMode::Whole, BackwardMode::Piecewise]
                .into_iter()
                .enumerate()
            {
                let mut orders = Vec::new();
                for blk in g.blocks() {
                    let mask = g.block_nodes(blk);
                    let free = Deadlines::unbounded(&g, &mask);
                    let opts = SchedOpts::default().with_backward(mode);
                    let out = rank_schedule(&mut sc, &g, &mask, machine, &free, &opts)
                        .expect("schedules");
                    orders.push(out.schedule.order());
                }
                sums[i] += sim_blocks(&mut sc, &g, machine, &orders) as f64;
            }
        }
        let n = SEEDS as f64;
        w.metric_f(
            &format!("e8.{}.rank_whole", machine_slug(name)),
            sums[0] / n,
        );
        w.metric_f(
            &format!("e8.{}.rank_piecewise", machine_slug(name)),
            sums[1] / n,
        );
        t2.row([
            name.to_string(),
            format!("{:.1}", sums[0] / n),
            format!("{:.1}", sums[1] / n),
        ]);
    }
    writeln!(w, "{}", t2.render())?;
    writeln!(
        w,
        "expected shape: the heuristic extension keeps (or extends) the anticipatory\n\
         advantage on assigned-unit machines; nothing is provably optimal here\n\
         (the problem is NP-hard — paper Section 4.2). The whole/piecewise backward\n\
         variants trade rank tightness against soundness and land within a few\n\
         percent of each other."
    )?;
    Ok(())
}
