//! Figure 1: the Rank Algorithm on BB1 and idle-slot delaying.

use crate::experiments::RunCtx;
use crate::report::{section, Table};
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_rank::{compute_ranks, delay_idle_slots, rank_schedule, Deadlines};
use asched_workloads::fixtures::{fig1, FIG1_IDLE_AFTER, FIG1_IDLE_BEFORE, FIG1_MAKESPAN};
use std::io::{self, Write};

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "F1",
            "Figure 1 — rank schedule and Move_Idle_Slot on basic block BB1"
        )
    )?;
    let (g, [x, e, wn, b, a, r]) = fig1();
    let machine = MachineModel::single_unit(2);
    let mask = g.all_nodes();
    let mut sc = SchedCtx::new();
    let opts = SchedOpts::default();

    // Ranks with the paper's artificial deadline 100.
    let d100 = Deadlines::uniform(&g, &mask, 100);
    let ranks = compute_ranks(&mut sc, &g, &mask, &machine, &d100, &opts)
        .expect("fig1 is feasible")
        .to_vec();
    let mut t = Table::new(["node", "rank (paper)", "rank (ours)"]);
    let expected = [(x, 95), (e, 95), (wn, 98), (b, 98), (a, 100), (r, 100)];
    for (n, exp) in expected {
        t.row([
            g.node(n).label.clone(),
            exp.to_string(),
            ranks[n.index()].to_string(),
        ]);
    }
    writeln!(w, "{}", t.render())?;

    let out = rank_schedule(&mut sc, &g, &mask, &machine, &d100, &opts).expect("fig1 schedules");
    let s0 = out.schedule;
    writeln!(
        w,
        "rank schedule        : {}   (makespan {}, paper {})",
        s0.gantt(&g, &machine),
        s0.makespan(),
        FIG1_MAKESPAN
    )?;
    let idles0 = s0.idle_slots(&machine);
    writeln!(
        w,
        "idle slot before     : t={}  (paper t={})",
        idles0[0], FIG1_IDLE_BEFORE
    )?;

    let mut d = Deadlines::uniform(&g, &mask, s0.makespan() as i64);
    let s1 = delay_idle_slots(&mut sc, &g, &mask, &machine, s0, &mut d, &opts);
    let idles1 = s1.idle_slots(&machine);
    writeln!(
        w,
        "after Delay_Idle_Slot: {}   (makespan {})",
        s1.gantt(&g, &machine),
        s1.makespan()
    )?;
    writeln!(
        w,
        "idle slot after      : t={}  (paper t={});  finalized d(x) = {} (paper 1)",
        idles1[0],
        FIG1_IDLE_AFTER,
        d.get(x)
    )?;
    let ok = s1.makespan() == FIG1_MAKESPAN
        && idles0 == vec![FIG1_IDLE_BEFORE]
        && idles1 == vec![FIG1_IDLE_AFTER]
        && d.get(x) == 1;
    w.metric("f1.makespan", s1.makespan());
    w.metric("f1.idle_slot_before", idles0[0]);
    w.metric("f1.idle_slot_after", idles1[0]);
    w.metric("f1.exact", ok as u64);
    writeln!(w, "reproduction: {}", if ok { "EXACT" } else { "MISMATCH" })?;
    Ok(())
}
