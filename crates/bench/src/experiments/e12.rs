//! E12: sensitivity to branch-prediction accuracy.
//!
//! Anticipatory scheduling banks on the hardware filling its window with
//! the *predicted* next block (paper Section 1). When predictions fail,
//! the cross-block overlap is flushed and a penalty paid — this sweep
//! measures how fast the advantage over local scheduling erodes.

use crate::experiments::RunCtx;
use crate::report::{section, Table};
use asched_core::schedule_blocks_independent;
use asched_engine::TraceTask;
use asched_graph::{MachineModel, SchedCtx};
use asched_sim::simulate_with_prediction;
use asched_workloads::{seam_trace, SeamParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Write};

const ACCURACIES: [f64; 5] = [0.5, 0.7, 0.9, 0.95, 1.0];
const PENALTY: u64 = 6;
const SEEDS: u64 = 8;
const TRIALS: u32 = 40;

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "E12",
            "branch prediction sweep at W=4, mispredict penalty 6 cycles"
        )
    )?;
    let machine = MachineModel::single_unit(4);
    let mut sc = SchedCtx::new();
    let mut t = Table::new(["accuracy", "local+delay", "anticipatory", "advantage"]);
    for &acc in &ACCURACIES {
        let mut local_sum = 0.0f64;
        let mut ant_sum = 0.0f64;
        let mut count = 0.0f64;
        let mut graphs = Vec::new();
        let mut tasks = Vec::new();
        for seed in 0..SEEDS {
            let g = seam_trace(&SeamParams {
                blocks: 6,
                fillers: 3,
                seam_latency: 3,
                chain_latency: 2,
                seed: seed * 1301 + 11,
            });
            let pct = (acc * 100.0) as u32;
            tasks.push(TraceTask::new(
                format!("e12:acc{pct}:s{seed}"),
                g.clone(),
                machine.clone(),
            ));
            graphs.push(g);
        }
        let ants = w.trace_batch(tasks);
        for (seed, (g, ant)) in graphs.iter().zip(&ants).enumerate() {
            let seed = seed as u64;
            let local = schedule_blocks_independent(&mut sc, g, &machine, true).expect("ok");
            let ant = &ant.block_orders;
            let boundaries = local.len() - 1;
            let mut rng = StdRng::seed_from_u64(seed * 31337 + (acc * 1000.0) as u64);
            for _ in 0..TRIALS {
                let outcomes: Vec<bool> = (0..boundaries).map(|_| rng.gen_bool(acc)).collect();
                local_sum +=
                    simulate_with_prediction(&mut sc, g, &machine, &local, &outcomes, PENALTY)
                        as f64;
                ant_sum +=
                    simulate_with_prediction(&mut sc, g, &machine, ant, &outcomes, PENALTY) as f64;
                count += 1.0;
            }
        }
        let (l, a) = (local_sum / count, ant_sum / count);
        let pct = (acc * 100.0) as u32;
        w.metric_f(&format!("e12.acc{pct}.local_delay"), l);
        w.metric_f(&format!("e12.acc{pct}.anticipatory"), a);
        t.row([
            format!("{:.0}%", acc * 100.0),
            format!("{l:.1}"),
            format!("{a:.1}"),
            format!("{:.1}%", (l - a) / l * 100.0),
        ]);
    }
    writeln!(w, "{}", t.render())?;
    writeln!(
        w,
        "expected shape: the anticipatory advantage is largest at perfect prediction\n\
         and decays as mispredictions flush the cross-block window overlap; it never\n\
         goes negative (within-block improvements survive any prediction)."
    )?;
    Ok(())
}
