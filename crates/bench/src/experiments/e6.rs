//! E6: trace-length sweep at a fixed window.

use crate::experiments::{sim_blocks, sim_order, RunCtx};
use crate::report::{section, Table};
use asched_baselines::{critical_path, global_oracle};
use asched_core::schedule_blocks_independent;
use asched_engine::TraceTask;
use asched_graph::{MachineModel, SchedCtx};
use asched_workloads::{random_trace_dag, DagParams};
use std::io::{self, Write};

const BLOCKS: [usize; 6] = [1, 2, 4, 8, 12, 16];
const SEEDS: u64 = 8;

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "E6",
            "trace length sweep at W=4 — mean cycles (6 instructions per block)"
        )
    )?;
    let machine = MachineModel::single_unit(4);
    let mut sc = SchedCtx::new();
    let mut t = Table::new([
        "blocks",
        "critpath",
        "local+delay",
        "anticipatory",
        "oracle",
        "speedup",
    ]);
    for &m in &BLOCKS {
        let mut sums = [0.0f64; 4];
        let mut graphs = Vec::new();
        let mut tasks = Vec::new();
        for seed in 0..SEEDS {
            let g = random_trace_dag(&DagParams {
                nodes: 6 * m,
                blocks: m,
                edge_prob: 0.35,
                cross_prob: 0.2,
                max_latency: 2,
                seed: seed * 104729 + m as u64,
                ..DagParams::default()
            });
            tasks.push(TraceTask::new(
                format!("e6:b{m}:s{seed}"),
                g.clone(),
                machine.clone(),
            ));
            graphs.push(g);
        }
        let ants = w.trace_batch(tasks);
        for (g, ant) in graphs.iter().zip(&ants) {
            let cp = critical_path(g, &machine).expect("schedules");
            sums[0] += sim_blocks(&mut sc, g, &machine, &cp) as f64;
            let local = schedule_blocks_independent(&mut sc, g, &machine, true).expect("schedules");
            sums[1] += sim_blocks(&mut sc, g, &machine, &local) as f64;
            sums[2] += sim_blocks(&mut sc, g, &machine, &ant.block_orders) as f64;
            let oracle = global_oracle(g, &machine).expect("schedules");
            sums[3] += sim_order(&mut sc, g, &machine, &oracle) as f64;
        }
        let n = SEEDS as f64;
        w.metric_f(&format!("e6.b{m}.critpath"), sums[0] / n);
        w.metric_f(&format!("e6.b{m}.local_delay"), sums[1] / n);
        w.metric_f(&format!("e6.b{m}.anticipatory"), sums[2] / n);
        w.metric_f(&format!("e6.b{m}.oracle"), sums[3] / n);
        t.row([
            m.to_string(),
            format!("{:.1}", sums[0] / n),
            format!("{:.1}", sums[1] / n),
            format!("{:.1}", sums[2] / n),
            format!("{:.1}", sums[3] / n),
            format!("{:.3}x", sums[0] / sums[2]),
        ]);
    }
    writeln!(w, "{}", t.render())?;
    writeln!(
        w,
        "expected shape: the anticipatory advantage over per-block scheduling grows\n\
         with the number of block seams, then saturates (each seam contributes a\n\
         bounded overlap opportunity)."
    )?;
    Ok(())
}
