//! Figure 8: the counter-example showing the single-source transform is
//! insufficient; the general case (5.2.3) finds the 4n schedule.

use crate::experiments::RunCtx;
use crate::report::{period, section, Table};
use asched_core::{schedule_single_block_loop, CandidateKind, LookaheadConfig};
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_sim::loop_completion;
use asched_workloads::fixtures::{fig8, FIG8_PERIODS};
use std::io::{self, Write};

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "F8",
            "Figure 8 — 1-(1)->3, 2-(1)->3, loop-carried 3-(1,1)->1"
        )
    )?;
    let (g, [n1, n2, n3]) = fig8();
    let w1 = MachineModel::single_unit(1);
    let mut sc = SchedCtx::new();

    // The two schedules of the figure, with their completion formulas.
    let mut t = Table::new(["n", "S1 = 1 2 3 (paper 5n-1)", "S2 = 2 1 3 (paper 4n)"]);
    for n in 1..=5u32 {
        t.row([
            n.to_string(),
            loop_completion(&mut sc, &g, &w1, &[n1, n2, n3], n).to_string(),
            loop_completion(&mut sc, &g, &w1, &[n2, n1, n3], n).to_string(),
        ]);
    }
    writeln!(w, "{}", t.render())?;

    let res = schedule_single_block_loop(
        &mut sc,
        &g,
        &MachineModel::single_unit(2),
        &LookaheadConfig::default(),
        &SchedOpts::default(),
    )
    .expect("schedules");
    let mut t2 = Table::new(["candidate", "order", "steady/iter"]);
    for c in &res.candidates {
        let kind = match c.kind {
            CandidateKind::Local => "local".to_string(),
            CandidateKind::DummySink(n) => format!("5.2.1 src={}", g.node(n).label),
            CandidateKind::DummySource(n) => format!("5.2.2 sink={}", g.node(n).label),
        };
        let order: Vec<&str> = c.order.iter().map(|&n| g.node(n).label.as_str()).collect();
        t2.row([kind, order.join(" "), period(c.period)]);
    }
    writeln!(w, "{}", t2.render())?;
    let sel: Vec<&str> = res
        .order
        .iter()
        .map(|&n| g.node(n).label.as_str())
        .collect();
    writeln!(
        w,
        "selected: {}  at {} cycles/iteration (paper: the general case must pick 2 1 3 at {})",
        sel.join(" "),
        period(res.period),
        FIG8_PERIODS.1
    )?;
    let sink_cand = res
        .candidates
        .iter()
        .find(|c| matches!(c.kind, CandidateKind::DummySink(s) if s == n1))
        .expect("dummy-sink candidate exists");
    writeln!(
        w,
        "single-source transform alone: {} cycles/iteration (paper {}; symmetric in 1,2 so it cannot win)",
        period(sink_cand.period),
        FIG8_PERIODS.0
    )?;
    let ok = res.order == vec![n2, n1, n3]
        && res.period.0 == FIG8_PERIODS.1 * res.period.1
        && sink_cand.period.0 == FIG8_PERIODS.0 * sink_cand.period.1;
    w.metric_f(
        "f8.general_cycles_per_iter",
        res.period.0 as f64 / res.period.1 as f64,
    );
    w.metric_f(
        "f8.single_source_cycles_per_iter",
        sink_cand.period.0 as f64 / sink_cand.period.1 as f64,
    );
    w.metric("f8.exact", ok as u64);
    writeln!(w, "reproduction: {}", if ok { "EXACT" } else { "MISMATCH" })?;
    Ok(())
}
