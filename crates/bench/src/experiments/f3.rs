//! Figure 3: the partial-products loop, from IR text through dependence
//! analysis to Section 5.2.3 loop scheduling.

use crate::experiments::RunCtx;
use crate::report::{period, section, Table};
use asched_core::{schedule_single_block_loop, CandidateKind, LookaheadConfig};
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_ir::format_scheduled_block;
use asched_workloads::fixtures::{fig3_graph, fig3_program, FIG3_ASM, FIG3_SCHED1, FIG3_SCHED2};
use std::io::{self, Write};

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "F3",
            "Figure 3 — partial products loop: C source -> IR -> dependence graph -> schedules"
        )
    )?;
    writeln!(w, "IR source:{FIG3_ASM}")?;
    let prog = fig3_program();
    let g = fig3_graph();
    writeln!(w, "dependence edges (latency, distance):")?;
    for e in g.edges() {
        writeln!(
            w,
            "  {:>4} -> {:<4} <{},{}> {}",
            g.node(e.src).label,
            g.node(e.dst).label,
            e.latency,
            e.distance,
            e.kind
        )?;
    }
    writeln!(w)?;

    let machine = MachineModel::single_unit(2);
    let res = schedule_single_block_loop(
        &mut SchedCtx::new(),
        &g,
        &machine,
        &LookaheadConfig::default(),
        &SchedOpts::default(),
    )
    .expect("schedules");

    let mut t = Table::new(["candidate", "order", "1 iter", "steady/iter"]);
    for c in &res.candidates {
        let kind = match c.kind {
            CandidateKind::Local => "local (rank)".to_string(),
            CandidateKind::DummySink(n) => format!("5.2.1 src={}", g.node(n).label),
            CandidateKind::DummySource(n) => format!("5.2.2 sink={}", g.node(n).label),
        };
        let order: Vec<&str> = c.order.iter().map(|&n| g.node(n).label.as_str()).collect();
        t.row([
            kind,
            order.join(" "),
            c.single_iter.to_string(),
            period(c.period),
        ]);
    }
    writeln!(w, "{}", t.render())?;

    let sel: Vec<&str> = res
        .order
        .iter()
        .map(|&n| g.node(n).label.as_str())
        .collect();
    writeln!(
        w,
        "selected: {}  ({} cycles first iteration, {} per iteration steady-state)",
        sel.join(" "),
        res.single_iter,
        period(res.period)
    )?;
    writeln!(
        w,
        "paper:    Schedule 1 = {} then {}/iter;  Schedule 2 = {} then {}/iter (selected)",
        FIG3_SCHED1.0, FIG3_SCHED1.1, FIG3_SCHED2.0, FIG3_SCHED2.1
    )?;
    writeln!(w, "\nemitted loop body:")?;
    writeln!(w, "{}", format_scheduled_block(&prog, 0, &res.order))?;

    let local = res
        .candidates
        .iter()
        .find(|c| c.kind == CandidateKind::Local)
        .expect("local candidate always present");
    let ok = local.single_iter == FIG3_SCHED1.0
        && local.period == (FIG3_SCHED1.1 * local.period.1, local.period.1)
        && res.single_iter == FIG3_SCHED2.0
        && res.period == (FIG3_SCHED2.1 * res.period.1, res.period.1);
    w.metric("f3.first_iter_cycles", res.single_iter);
    w.metric_f(
        "f3.steady_cycles_per_iter",
        res.period.0 as f64 / res.period.1 as f64,
    );
    w.metric("f3.exact", ok as u64);
    writeln!(w, "reproduction: {}", if ok { "EXACT" } else { "MISMATCH" })?;
    Ok(())
}
