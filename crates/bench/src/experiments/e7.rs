//! E7: optimality in the restricted case, heuristic gap beyond it.
//!
//! The paper proves Algorithm `Lookahead` optimal for 0/1 latencies,
//! unit execution times and one functional unit. We certify this
//! empirically against the exact branch-and-bound scheduler, and then
//! measure how the heuristic degrades when latencies grow.

use crate::experiments::{sim_blocks, RunCtx};
use crate::report::{section, Table};
use asched_engine::TraceTask;
use asched_graph::{BlockId, DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use asched_rank::brute::optimal_makespan;
use asched_rank::{delay_idle_slots, rank_schedule_default, Deadlines};
use asched_workloads::{random_trace_dag, DagParams};
use std::io::{self, Write};

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section("E7", "optimality vs brute force (single unit)")
    )?;

    // Part A0: EXHAUSTIVE enumeration of every DAG on 5 nodes where each
    // of the 10 forward pairs is absent, a latency-0 edge or a latency-1
    // edge (3^10 = 59049 instances): the restricted-case optimality
    // claim certified with no sampling at all.
    let machine = MachineModel::single_unit(4);
    let mut sc = SchedCtx::new();
    {
        let n = 5usize;
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let total = 3usize.pow(pairs.len() as u32);
        let mut optimal = 0usize;
        for code in 0..total {
            let mut g = DepGraph::new();
            for i in 0..n {
                g.add_simple(format!("n{i}"), BlockId(0));
            }
            let mut c = code;
            for &(i, j) in &pairs {
                match c % 3 {
                    0 => {}
                    1 => g.add_dep(NodeId(i), NodeId(j), 0),
                    _ => g.add_dep(NodeId(i), NodeId(j), 1),
                }
                c /= 3;
            }
            let mask = g.all_nodes();
            let s = rank_schedule_default(&mut sc, &g, &mask, &machine).expect("schedules");
            if s.makespan() == optimal_makespan(&g, &mask, &machine) {
                optimal += 1;
            }
        }
        w.metric("e7.a0.optimal", optimal as u64);
        w.metric("e7.a0.total", total as u64);
        writeln!(
            w,
            "A0. exhaustive: rank optimal on {optimal}/{total} five-node 0/1-latency DAGs"
        )?;
    }

    // Part A: single blocks, restricted case (0/1 latencies).
    let trials = 200;
    let mut optimal = 0;
    for seed in 0..trials {
        let g = random_trace_dag(&DagParams {
            nodes: 6 + (seed as usize % 4),
            blocks: 1,
            edge_prob: 0.4,
            cross_prob: 0.0,
            max_latency: 1,
            seed: seed * 31 + 1,
            ..DagParams::default()
        });
        let mask = g.all_nodes();
        let s = rank_schedule_default(&mut sc, &g, &mask, &machine).expect("schedules");
        let mut d = Deadlines::uniform(&g, &mask, s.makespan() as i64);
        let s = delay_idle_slots(
            &mut sc,
            &g,
            &mask,
            &machine,
            s,
            &mut d,
            &SchedOpts::default(),
        );
        let opt = optimal_makespan(&g, &mask, &machine);
        assert!(s.makespan() >= opt, "brute force must be a lower bound");
        if s.makespan() == opt {
            optimal += 1;
        }
    }
    w.metric("e7.a.optimal", optimal as u64);
    writeln!(
        w,
        "A. single blocks, 0/1 latencies, unit times: rank+delay optimal on {optimal}/{trials} instances"
    )?;

    // Part B: two-block traces, restricted case. The no-window brute
    // force is a lower bound on any legal schedule; at the paper's small
    // windows the anticipatory result should sit on or near it.
    let mut t = Table::new(["W", "instances", "== lower bound", "mean gap (cycles)"]);
    for win in [2usize, 4, 8] {
        let machine = MachineModel::single_unit(win);
        let trials = 120;
        let mut on_bound = 0;
        let mut gap_sum = 0u64;
        let mut graphs = Vec::new();
        let mut tasks = Vec::new();
        for seed in 0..trials {
            let g = random_trace_dag(&DagParams {
                nodes: 9,
                blocks: 2,
                edge_prob: 0.35,
                cross_prob: 0.3,
                max_latency: 1,
                seed: seed * 97 + 5,
                ..DagParams::default()
            });
            tasks.push(TraceTask::new(
                format!("e7:b:w{win}:s{seed}"),
                g.clone(),
                machine.clone(),
            ));
            graphs.push(g);
        }
        let results = w.trace_batch(tasks);
        for (g, res) in graphs.iter().zip(&results) {
            let got = sim_blocks(&mut sc, g, &machine, &res.block_orders);
            let lb = optimal_makespan(g, &g.all_nodes(), &machine);
            assert!(got >= lb);
            if got == lb {
                on_bound += 1;
            }
            gap_sum += got - lb;
        }
        w.metric(&format!("e7.b.w{win}.on_bound"), on_bound as u64);
        w.metric_f(
            &format!("e7.b.w{win}.mean_gap"),
            gap_sum as f64 / trials as f64,
        );
        t.row([
            win.to_string(),
            trials.to_string(),
            on_bound.to_string(),
            format!("{:.3}", gap_sum as f64 / trials as f64),
        ]);
    }
    writeln!(w, "{}", t.render())?;

    // Part C: heuristic degradation with larger latencies (single
    // blocks; brute force remains exact).
    let mut t2 = Table::new(["max latency", "optimal", "mean gap (cycles)"]);
    for max_lat in [1u32, 2, 3, 4] {
        let machine = MachineModel::single_unit(4);
        let trials = 120;
        let mut optimal = 0;
        let mut gap = 0u64;
        for seed in 0..trials {
            let g = random_trace_dag(&DagParams {
                nodes: 8,
                blocks: 1,
                edge_prob: 0.4,
                cross_prob: 0.0,
                max_latency: max_lat,
                seed: seed * 53 + 17,
                ..DagParams::default()
            });
            let mask = g.all_nodes();
            let s = rank_schedule_default(&mut sc, &g, &mask, &machine).expect("ok");
            let opt = optimal_makespan(&g, &mask, &machine);
            if s.makespan() == opt {
                optimal += 1;
            }
            gap += s.makespan() - opt;
        }
        w.metric(&format!("e7.c.lat{max_lat}.optimal"), optimal as u64);
        w.metric_f(
            &format!("e7.c.lat{max_lat}.mean_gap"),
            gap as f64 / trials as f64,
        );
        t2.row([
            max_lat.to_string(),
            format!("{optimal}/{trials}"),
            format!("{:.3}", gap as f64 / trials as f64),
        ]);
    }
    writeln!(w, "{}", t2.render())?;
    writeln!(
        w,
        "expected shape: near-100% optimal in the restricted case. A0's residue\n\
         (27 of 59049 instances, all off by one cycle) is inherent to the\n\
         conference paper's summarized rank computation: resolving those ties\n\
         differently changes the published Figure 2 rank values, so the exact\n\
         tie-breaking lives in the unavailable companion TR [11]. B's gap comes\n\
         from the window-legality constraint the lower bound ignores; the rank\n\
         heuristic's gap grows slowly with the maximum latency (C)."
    )?;
    Ok(())
}
