//! E14: register reuse, renaming and the scheduler.
//!
//! The paper's Related Work (Section 6) notes that the PL.8-style
//! compilers "obviate the need for the scheduler to explicitly deal with
//! constraints introduced by register allocation, other than those
//! encoded in the dependence graph". This sweep quantifies that: tight
//! register pools create anti/output dependences that serialize
//! otherwise-independent work; the `rename_locals` pass removes the
//! provably-dead reuse and gives the anticipatory scheduler room.

use crate::experiments::{sim_blocks, RunCtx};
use crate::report::{section, Table};
use asched_engine::TraceTask;
use asched_graph::{MachineModel, SchedCtx};
use asched_ir::transform::rename_locals;
use asched_ir::{build_trace_graph, LatencyModel};
use asched_workloads::{random_program, ProgParams};
use std::io::{self, Write};

const SEEDS: u64 = 10;

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "E14",
            "register pressure — anticipatory cycles with and without local renaming (W=4)"
        )
    )?;
    let machine = MachineModel::single_unit(4);
    let model = LatencyModel::fig3();
    let mut sc = SchedCtx::new();
    let mut t = Table::new(["GPR pool", "false deps", "as written", "renamed", "gain"]);
    for regs in [3u8, 4, 6, 10] {
        let mut false_deps = 0usize;
        let mut as_written = 0.0f64;
        let mut renamed = 0.0f64;
        let mut graphs = Vec::new();
        let mut tasks = Vec::new();
        for seed in 0..SEEDS {
            let prog = random_program(&ProgParams {
                blocks: 3,
                insts_per_block: 10,
                regs,
                mem_fraction: 0.25,
                mul_fraction: 0.3,
                with_branches: false,
                seed: seed * 2693 + 41,
                ..ProgParams::default()
            });
            let g1 = build_trace_graph(&prog, &model);
            let prog2 = rename_locals(&prog);
            let g2 = build_trace_graph(&prog2, &model);
            tasks.push(TraceTask::new(
                format!("e14:r{regs}:s{seed}:as_written"),
                g1.clone(),
                machine.clone(),
            ));
            tasks.push(TraceTask::new(
                format!("e14:r{regs}:s{seed}:renamed"),
                g2.clone(),
                machine.clone(),
            ));
            graphs.push((g1, g2));
        }
        let results = w.trace_batch(tasks);
        for (si, (g1, g2)) in graphs.iter().enumerate() {
            false_deps += g1
                .edges()
                .filter(|e| {
                    matches!(
                        e.kind,
                        asched_graph::DepKind::Anti | asched_graph::DepKind::Output
                    )
                })
                .count();
            let (r1, r2) = (&results[2 * si], &results[2 * si + 1]);
            as_written += sim_blocks(&mut sc, g1, &machine, &r1.block_orders) as f64;
            renamed += sim_blocks(&mut sc, g2, &machine, &r2.block_orders) as f64;
        }
        let n = SEEDS as f64;
        w.metric_f(&format!("e14.r{regs}.as_written"), as_written / n);
        w.metric_f(&format!("e14.r{regs}.renamed"), renamed / n);
        t.row([
            regs.to_string(),
            format!("{:.1}", false_deps as f64 / n),
            format!("{:.1}", as_written / n),
            format!("{:.1}", renamed / n),
            format!("{:.1}%", (as_written - renamed) / as_written * 100.0),
        ]);
    }
    writeln!(w, "{}", t.render())?;
    writeln!(
        w,
        "expected shape: the tighter the register pool, the more false dependences\n\
         the code carries and the more cycles local renaming buys back; with a\n\
         roomy pool the compiler already avoided the reuse and the gain vanishes."
    )?;
    Ok(())
}
