//! E13: loop unrolling × anticipatory scheduling.
//!
//! Unrolling gives the *block* scheduler what the lookahead window gives
//! the hardware: visibility across iteration boundaries. This sweep
//! measures how quickly the Section 5.2.3 schedule of the unrolled body
//! approaches the recurrence bound as the unroll factor grows.

use crate::experiments::RunCtx;
use crate::report::{section, Table};
use asched_core::{schedule_single_block_loop, LookaheadConfig};
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_ir::{
    build_loop_graph,
    transform::{rename_locals, unroll},
    LatencyModel,
};
use asched_pipeline::{mii, modulo_schedule};
use asched_workloads::kernels::all_kernels;
use std::io::{self, Write};

const FACTORS: [u32; 4] = [1, 2, 3, 4];

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "E13",
            "unroll sweep — 5.2.3 steady-state cycles per ORIGINAL iteration"
        )
    )?;
    let machine = MachineModel::single_unit(1);
    let cfg = LookaheadConfig::default();
    let mut sc = SchedCtx::new();
    let mut headers = vec!["loop".to_string()];
    headers.extend(FACTORS.iter().map(|f| format!("u={f}")));
    headers.push("MII(u=1)".to_string());
    let mut t = Table::new(headers);
    for (name, prog) in all_kernels() {
        if prog.blocks.len() != 1 {
            continue;
        }
        let mut cells = vec![name.to_string()];
        let mut bound = 0;
        for &f in &FACTORS {
            let u = unroll(&prog, f);
            let g = build_loop_graph(&u, &LatencyModel::fig3());
            if f == 1 {
                bound = mii(&g, &machine);
            }
            let res =
                schedule_single_block_loop(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
                    .expect("schedules");
            let per_orig = res.period.0 as f64 / (res.period.1 * f as u64) as f64;
            w.metric_f(&format!("e13.{name}.u{f}"), per_orig);
            cells.push(format!("{per_orig:.2}"));
        }
        cells.push(bound.to_string());
        t.row(cells);
    }
    writeln!(w, "{}", t.render())?;

    // Unroll + local renaming + modulo scheduling: the unrolled body
    // turns cross-iteration register reuse into intra-block reuse that
    // `rename_locals` can legally eliminate (modulo variable expansion in
    // effect), and software pipelining then schedules the widened body.
    writeln!(
        w,
        "unroll + rename_locals + modulo scheduling (II per ORIGINAL iteration):"
    )?;
    let mut headers = vec!["loop".to_string()];
    headers.extend(FACTORS.iter().map(|f| format!("u={f}")));
    let mut t2 = Table::new(headers);
    for (name, prog) in all_kernels() {
        if prog.blocks.len() != 1 {
            continue;
        }
        let mut cells = vec![name.to_string()];
        for &f in &FACTORS {
            let body = rename_locals(&unroll(&prog, f));
            let g = build_loop_graph(&body, &LatencyModel::fig3());
            match modulo_schedule(&g, &machine) {
                Ok(s) => cells.push(format!("{:.2}", s.ii as f64 / f as f64)),
                Err(_) => cells.push("-".to_string()),
            }
        }
        t2.row(cells);
    }
    writeln!(w, "{}", t2.render())?;
    writeln!(
        w,
        "expected shape: per-iteration cycles fall monotonically as the unroll\n\
         factor grows — static unrolling and the dynamic lookahead window are two\n\
         routes to the same cross-iteration overlap. Recurrence-bound loops\n\
         converge to their MII; resource-bound loops (fir3) can even dip below\n\
         the u=1 MII because unrolling deletes the interior exit branches.\n\
         With renaming, unroll x2 realizes pprod's renamed-MII headroom exactly\n\
         (5 cycles/iteration vs the un-renamed bound of 6 — compare E9)."
    )?;
    Ok(())
}
