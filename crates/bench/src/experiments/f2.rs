//! Figure 2: anticipatory scheduling of a two-block trace at W = 2.

use crate::experiments::{sim_blocks, RunCtx};
use crate::report::{section, Table};
use asched_core::{legal, schedule_blocks_independent};
use asched_engine::TraceTask;
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_rank::{compute_ranks, Deadlines};
use asched_workloads::fixtures::{fig2, FIG2_MAKESPAN};
use std::io::{self, Write};

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "F2",
            "Figure 2 — trace BB1,BB2 with edge w->z (latency 1), window W = 2"
        )
    )?;
    let (g, bb1, bb2) = fig2();
    let [x, e, wn, b, a, r] = bb1;
    let [z, q, p, v, gg] = bb2;
    let machine = MachineModel::single_unit(2);
    let mut sc = SchedCtx::new();

    // Merged ranks with the paper's deadline 100.
    let d100 = Deadlines::uniform(&g, &g.all_nodes(), 100);
    let ranks = compute_ranks(
        &mut sc,
        &g,
        &g.all_nodes(),
        &machine,
        &d100,
        &SchedOpts::default(),
    )
    .expect("feasible")
    .to_vec();
    let mut t = Table::new(["node", "rank (paper)", "rank (ours)"]);
    for (n, exp) in [
        (x, 90),
        (e, 91),
        (wn, 93),
        (z, 95),
        (q, 97),
        (p, 98),
        (b, 98),
        (v, 100),
        (a, 100),
        (r, 100),
        (gg, 100),
    ] {
        t.row([
            g.node(n).label.clone(),
            exp.to_string(),
            ranks[n.index()].to_string(),
        ]);
    }
    writeln!(w, "{}", t.render())?;

    let res = w
        .trace_batch(vec![TraceTask::new("f2", g.clone(), machine.clone())])
        .pop()
        .expect("one result");
    writeln!(
        w,
        "anticipatory schedule: {}   (makespan {}, paper {})",
        res.predicted.gantt(&g, &machine),
        res.makespan,
        FIG2_MAKESPAN
    )?;
    let bb1_order: Vec<String> = res.block_orders[0]
        .iter()
        .map(|&n| g.node(n).label.clone())
        .collect();
    let bb2_order: Vec<String> = res.block_orders[1]
        .iter()
        .map(|&n| g.node(n).label.clone())
        .collect();
    writeln!(w, "emitted BB1 order    : {}", bb1_order.join(" "))?;
    writeln!(w, "emitted BB2 order    : {}", bb2_order.join(" "))?;

    let simulated = sim_blocks(&mut sc, &g, &machine, &res.block_orders);
    writeln!(
        w,
        "hardware simulation  : {simulated} cycles (predicted {})",
        res.makespan
    )?;
    let legal_ok = legal::is_legal(&mut sc, &g, &g.all_nodes(), &machine, &res.predicted);
    writeln!(w, "Definition 2.3 legal : {legal_ok}")?;

    // Baseline: per-block scheduling without trace knowledge.
    let naive = schedule_blocks_independent(&mut sc, &g, &machine, false).expect("schedules");
    let naive_cycles = sim_blocks(&mut sc, &g, &machine, &naive);
    let delayed = schedule_blocks_independent(&mut sc, &g, &machine, true).expect("schedules");
    let delayed_cycles = sim_blocks(&mut sc, &g, &machine, &delayed);
    let mut t2 = Table::new(["scheduler", "cycles @ W=2"]);
    t2.row(["local (rank per block)", &naive_cycles.to_string()]);
    t2.row(["local + idle-slot delay", &delayed_cycles.to_string()]);
    t2.row(["anticipatory (Lookahead)", &res.makespan.to_string()]);
    writeln!(w, "{}", t2.render())?;

    let ok = res.makespan == FIG2_MAKESPAN && simulated == FIG2_MAKESPAN && legal_ok;
    w.metric("f2.anticipatory_cycles", simulated);
    w.metric("f2.local_cycles", naive_cycles);
    w.metric("f2.local_delay_cycles", delayed_cycles);
    w.metric("f2.exact", ok as u64);
    writeln!(w, "reproduction: {}", if ok { "EXACT" } else { "MISMATCH" })?;
    Ok(())
}
