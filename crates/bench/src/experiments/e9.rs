//! E9: loop steady state — local vs Section 5.2.3 vs modulo scheduling
//! vs modulo + anticipatory post-pass.

use crate::experiments::RunCtx;
use crate::report::{period, section, Table};
use asched_core::{
    schedule_blocks_independent, schedule_loop_trace, schedule_single_block_loop, CandidateKind,
    LookaheadConfig,
};
use asched_graph::{MachineModel, SchedCtx, SchedOpts};
use asched_ir::{build_loop_graph, transform::unroll, LatencyModel, Program};
use asched_pipeline::{anticipatory_postpass, mii};
use asched_sim::trace_steady_period_with;
use asched_workloads::kernels::all_kernels;
use asched_workloads::{random_loop_dag, DagParams};
use std::io::{self, Write};

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "E9",
            "loop steady-state cycles/iteration (single unit, literal-schedule semantics)"
        )
    )?;
    let machine = MachineModel::single_unit(1);
    let cfg = LookaheadConfig::default();
    let mut sc = SchedCtx::new();
    let mut t = Table::new([
        "loop",
        "insts",
        "MII",
        "MII(renamed)",
        "local",
        "5.2.3",
        "unroll2+5.2.3",
        "modulo II",
        "modulo+post",
    ]);

    // IR kernels (multi-block loops are skipped by 5.2.3; filter).
    for (name, prog) in all_kernels() {
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        if g.blocks().len() != 1 {
            continue;
        }
        add_row(&mut sc, &mut t, w, name, &g, Some(&prog), &machine, &cfg);
    }
    // Random loop bodies.
    for seed in 0..3u64 {
        let g = random_loop_dag(
            &DagParams {
                nodes: 10,
                blocks: 1,
                edge_prob: 0.3,
                max_latency: 4,
                seed: seed * 811 + 7,
                ..DagParams::default()
            },
            3,
        );
        let name = format!("rand{seed}");
        add_row(&mut sc, &mut t, w, &name, &g, None, &machine, &cfg);
    }
    writeln!(w, "{}", t.render())?;

    // Multi-block loops go through Section 5.1 (Algorithm Lookahead plus
    // the BBm-vs-next-BB1 wrap-around step).
    writeln!(
        w,
        "multi-block loops (Section 5.1), steady cycles/iteration:"
    )?;
    let mut t2 = Table::new(["loop", "blocks", "local", "5.1 wrap-aware"]);
    for (name, prog) in all_kernels() {
        let g = build_loop_graph(&prog, &LatencyModel::fig3());
        if g.blocks().len() < 2 {
            continue;
        }
        let res = schedule_loop_trace(&mut sc, &g, &machine, &cfg, &SchedOpts::default())
            .expect("5.1 schedules");
        let local = schedule_blocks_independent(&mut sc, &g, &machine, true).expect("schedules");
        w.metric_f(
            &format!("e9.{name}.sec51"),
            res.period.0 as f64 / res.period.1 as f64,
        );
        t2.row([
            name.to_string(),
            g.blocks().len().to_string(),
            period(trace_steady_period_with(&mut sc, &g, &machine, &local, 16)),
            period(res.period),
        ]);
    }
    writeln!(w, "{}", t2.render())?;
    writeln!(
        w,
        "expected shape: 5.2.3 <= local everywhere (Figure 3 generalizes: a locally\n\
         optimal block order can lose in steady state); unrolling lets the block\n\
         scheduler overlap iterations statically; modulo scheduling reaches MII when\n\
         resources allow; the anticipatory post-pass never hurts the kernel.\n\
         MII(renamed) is the recurrence bound after idealized register renaming\n\
         (anti/output dependences stripped): the storage-pressure headroom that a\n\
         renaming pass — future work in 1996, standard today — would unlock.\n\
         Multi-block loops: the 5.1 wrap-around step never loses to loop-blind\n\
         per-block scheduling."
    )?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn add_row(
    sc: &mut SchedCtx,
    t: &mut Table,
    ctx: &mut RunCtx<'_>,
    name: &str,
    g: &asched_graph::DepGraph,
    prog: Option<&Program>,
    machine: &MachineModel,
    cfg: &LookaheadConfig,
) {
    let opts = SchedOpts::default();
    let bound = mii(g, machine);
    let renamed_bound = mii(&g.strip_false_deps(), machine);
    let res = schedule_single_block_loop(sc, g, machine, cfg, &opts).expect("5.2.3 schedules");
    let local = res
        .candidates
        .iter()
        .find(|c| c.kind == CandidateKind::Local)
        .expect("local candidate");
    // Unroll the source by 2 and re-run 5.2.3; report per original
    // iteration (the unrolled body covers two of them).
    let unrolled = prog.map(|p| {
        let u = unroll(p, 2);
        let gu = build_loop_graph(&u, &LatencyModel::fig3());
        let r =
            schedule_single_block_loop(sc, &gu, machine, cfg, &opts).expect("unrolled schedules");
        period((r.period.0, r.period.1 * 2))
    });
    let post = anticipatory_postpass(sc, g, machine, cfg, &opts);
    let (m_ii, p_period) = match &post {
        Ok(r) => (r.kernel.ii.to_string(), period(r.after)),
        Err(_) => ("-".to_string(), "-".to_string()),
    };
    ctx.metric_f(
        &format!("e9.{name}.sec523"),
        res.period.0 as f64 / res.period.1 as f64,
    );
    ctx.metric(&format!("e9.{name}.mii"), bound);
    t.row([
        name.to_string(),
        g.len().to_string(),
        bound.to_string(),
        renamed_bound.to_string(),
        period(local.period),
        period(res.period),
        unrolled.unwrap_or_else(|| "-".to_string()),
        m_ii,
        p_period,
    ]);
}
