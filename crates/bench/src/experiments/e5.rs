//! E5: window-size sweep.
//!
//! The paper's central claim, quantified: anticipatory scheduling
//! "delivers many of the benefits of global instruction scheduling" once
//! the hardware window can overlap blocks. At W = 1 every within-block
//! scheduler ties (no lookahead to anticipate); as W grows, anticipatory
//! scheduling approaches the unsafe global-motion oracle while staying
//! within basic blocks.

use crate::experiments::{sim_blocks, sim_order, RunCtx};
use crate::report::{section, Table};
use asched_baselines::{all_baselines, global_oracle};
use asched_core::schedule_blocks_independent;
use asched_engine::TraceTask;
use asched_graph::{DepGraph, MachineModel, SchedCtx};
use asched_workloads::{random_trace_dag, seam_trace, DagParams, SeamParams};
use std::io::{self, Write};

const WINDOWS: [usize; 6] = [1, 2, 4, 6, 8, 16];
const SEEDS: u64 = 12;

fn workload(seed: u64, family: &str) -> DepGraph {
    match family {
        "0/1 latencies" => random_trace_dag(&DagParams {
            nodes: 36,
            blocks: 4,
            edge_prob: 0.3,
            cross_prob: 0.15,
            max_latency: 1,
            seed: seed * 7919 + 13,
            ..DagParams::default()
        }),
        "latencies up to 4" => random_trace_dag(&DagParams {
            nodes: 36,
            blocks: 4,
            edge_prob: 0.3,
            cross_prob: 0.15,
            max_latency: 4,
            seed: seed * 7919 + 13,
            ..DagParams::default()
        }),
        // Figure-2-shaped traces: each block's tail produces a value the
        // next block's head consumes after a few cycles.
        _ => seam_trace(&SeamParams {
            blocks: 5,
            fillers: 3,
            seam_latency: 3,
            chain_latency: 2,
            seed,
        }),
    }
}

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "E5",
            "window sweep — mean cycles over 12 random 4-block traces (36 nodes)"
        )
    )?;
    for (name, slug) in [
        ("0/1 latencies", "lat01"),
        ("latencies up to 4", "lat4"),
        ("seam traces (Figure-2 shaped)", "seam"),
    ] {
        writeln!(w, "--- {name} ---")?;
        let mut headers = vec!["scheduler".to_string()];
        headers.extend(WINDOWS.iter().map(|w| format!("W={w}")));
        let mut table = Table::new(headers);

        // scheduler name -> per-window mean
        let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
        let schedulers: Vec<String> = all_baselines()
            .iter()
            .map(|b| b.name.to_string())
            .chain([
                "local+delay".to_string(),
                "anticipatory".to_string(),
                "global oracle".to_string(),
            ])
            .collect();
        for s in &schedulers {
            rows.push((s.clone(), vec![0.0; WINDOWS.len()]));
        }

        // The per-block baselines, the local fallback and the oracle
        // never read the window size — schedule them once per seed and
        // only re-simulate per window. Only the anticipatory scheduler
        // is window-aware (its chop cut depends on W), so its
        // seed x window corpus goes through the batch engine.
        let mut sc = SchedCtx::new();
        let mut fixed_runs = Vec::new();
        let mut tasks = Vec::new();
        for seed in 0..SEEDS {
            let g = workload(seed, name);
            let fixed = MachineModel::single_unit(4);
            let baseline_orders: Vec<Vec<Vec<_>>> = all_baselines()
                .iter()
                .map(|b| (b.run)(&g, &fixed).expect("baseline schedules"))
                .collect();
            let local = schedule_blocks_independent(&mut sc, &g, &fixed, true).expect("schedules");
            let oracle = global_oracle(&g, &fixed).expect("oracle schedules");
            for &win in &WINDOWS {
                tasks.push(TraceTask::new(
                    format!("e5:{slug}:s{seed}:w{win}"),
                    g.clone(),
                    MachineModel::single_unit(win),
                ));
            }
            fixed_runs.push((g, baseline_orders, local, oracle));
        }
        let ants = w.trace_batch(tasks);
        for (si, (g, baseline_orders, local, oracle)) in fixed_runs.iter().enumerate() {
            for (wi, &win) in WINDOWS.iter().enumerate() {
                let machine = MachineModel::single_unit(win);
                let mut ri = 0;
                for orders in baseline_orders {
                    rows[ri].1[wi] += sim_blocks(&mut sc, g, &machine, orders) as f64;
                    ri += 1;
                }
                rows[ri].1[wi] += sim_blocks(&mut sc, g, &machine, local) as f64;
                ri += 1;
                let ant = &ants[si * WINDOWS.len() + wi];
                rows[ri].1[wi] += sim_blocks(&mut sc, g, &machine, &ant.block_orders) as f64;
                ri += 1;
                rows[ri].1[wi] += sim_order(&mut sc, g, &machine, oracle) as f64;
            }
        }
        for (name, sums) in &rows {
            let mut cells = vec![name.clone()];
            cells.extend(sums.iter().map(|s| format!("{:.1}", s / SEEDS as f64)));
            table.row(cells);
        }
        for (rname, sums) in &rows {
            if rname == "anticipatory" || rname == "global oracle" {
                let rslug = if rname == "anticipatory" {
                    "anticipatory"
                } else {
                    "oracle"
                };
                for (wi, &win) in WINDOWS.iter().enumerate() {
                    w.metric_f(
                        &format!("e5.{slug}.{rslug}.w{win}"),
                        sums[wi] / SEEDS as f64,
                    );
                }
            }
        }
        writeln!(w, "{}", table.render())?;
    }
    writeln!(
        w,
        "expected shape: all schedulers tie at W=1; anticipatory <= every local\n\
         baseline for W >= 2 and approaches the (unsafe) global oracle as W grows."
    )?;
    Ok(())
}
