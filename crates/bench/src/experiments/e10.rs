//! E10: ablations — what each ingredient of Algorithm `Lookahead`
//! contributes.

use crate::experiments::{sim_blocks, RunCtx};
use crate::report::{section, Table};
use asched_core::{schedule_blocks_independent, LookaheadConfig};
use asched_engine::TraceTask;
use asched_graph::{MachineModel, SchedCtx};
use asched_workloads::fixtures::fig2_chain;
use asched_workloads::{seam_trace, SeamParams};
use std::io::{self, Write};

const SEEDS: u64 = 12;

pub(crate) fn run(w: &mut RunCtx<'_>) -> io::Result<()> {
    writeln!(
        w,
        "{}",
        section(
            "E10",
            "ablations — mean cycles over 12 seam traces (5 blocks)"
        )
    )?;
    let mut t = Table::new([
        "W",
        "local (no delay)",
        "local+delay",
        "full Lookahead",
        "no idle delay",
        "no old-protect",
    ]);
    let ablations = [
        ("full", LookaheadConfig::default()),
        ("nodelay", LookaheadConfig::without_idle_delay()),
        ("noprot", LookaheadConfig::without_old_protection()),
    ];
    let mut sc = SchedCtx::new();
    for win in [2usize, 4, 8] {
        let machine = MachineModel::single_unit(win);
        let mut sums = [0.0f64; 5];
        let mut graphs = Vec::new();
        let mut tasks = Vec::new();
        for seed in 0..SEEDS {
            let g = seam_trace(&SeamParams {
                blocks: 5,
                fillers: 3,
                seam_latency: 3,
                chain_latency: 2,
                seed: seed * 577 + 29,
            });
            for (slug, cfg) in &ablations {
                tasks.push(TraceTask {
                    label: format!("e10:seam:w{win}:s{seed}:{slug}"),
                    graph: g.clone(),
                    machine: machine.clone(),
                    config: *cfg,
                });
            }
            graphs.push(g);
        }
        let results = w.trace_batch(tasks);
        for (si, g) in graphs.iter().enumerate() {
            let plain = schedule_blocks_independent(&mut sc, g, &machine, false).expect("ok");
            sums[0] += sim_blocks(&mut sc, g, &machine, &plain) as f64;
            let delayed = schedule_blocks_independent(&mut sc, g, &machine, true).expect("ok");
            sums[1] += sim_blocks(&mut sc, g, &machine, &delayed) as f64;
            for i in 0..ablations.len() {
                let res = &results[si * ablations.len() + i];
                sums[2 + i] += sim_blocks(&mut sc, g, &machine, &res.block_orders) as f64;
            }
        }
        let n = SEEDS as f64;
        w.metric_f(&format!("e10.seam.w{win}.full"), sums[2] / n);
        w.metric_f(&format!("e10.seam.w{win}.no_idle_delay"), sums[3] / n);
        w.metric_f(&format!("e10.seam.w{win}.no_old_protect"), sums[4] / n);
        t.row([
            win.to_string(),
            format!("{:.1}", sums[0] / n),
            format!("{:.1}", sums[1] / n),
            format!("{:.1}", sums[2] / n),
            format!("{:.1}", sums[3] / n),
            format!("{:.1}", sums[4] / n),
        ]);
    }
    writeln!(w, "{}", t.render())?;

    // Figure-2 chains: the family where Delay_Idle_Slots is the whole
    // story (each seam is the paper's Figure 2).
    writeln!(w, "Figure-2 chains (m Figure-1 blocks, w_k -> block k+1):")?;
    let mut t2 = Table::new([
        "blocks",
        "W",
        "local (no delay)",
        "local+delay",
        "full Lookahead",
        "no idle delay",
        "no old-protect",
    ]);
    const CHAIN_BLOCKS: [usize; 3] = [3, 5, 8];
    const CHAIN_WINDOWS: [usize; 2] = [2, 4];
    let mut chains = Vec::new();
    let mut tasks = Vec::new();
    for m in CHAIN_BLOCKS {
        let g = fig2_chain(m);
        for win in CHAIN_WINDOWS {
            for (slug, cfg) in &ablations {
                tasks.push(TraceTask {
                    label: format!("e10:chain:m{m}:w{win}:{slug}"),
                    graph: g.clone(),
                    machine: MachineModel::single_unit(win),
                    config: *cfg,
                });
            }
        }
        chains.push(g);
    }
    let results = w.trace_batch(tasks);
    for (mi, m) in CHAIN_BLOCKS.into_iter().enumerate() {
        let g = &chains[mi];
        for (wi, win) in CHAIN_WINDOWS.into_iter().enumerate() {
            let machine = MachineModel::single_unit(win);
            let plain = schedule_blocks_independent(&mut sc, g, &machine, false).expect("ok");
            let delayed = schedule_blocks_independent(&mut sc, g, &machine, true).expect("ok");
            let at = (mi * CHAIN_WINDOWS.len() + wi) * ablations.len();
            let [full, nodelay, noprot] = [&results[at], &results[at + 1], &results[at + 2]];
            let full_cycles = sim_blocks(&mut sc, g, &machine, &full.block_orders);
            w.metric(&format!("e10.chain.m{m}.w{win}.full"), full_cycles);
            t2.row([
                m.to_string(),
                win.to_string(),
                sim_blocks(&mut sc, g, &machine, &plain).to_string(),
                sim_blocks(&mut sc, g, &machine, &delayed).to_string(),
                full_cycles.to_string(),
                sim_blocks(&mut sc, g, &machine, &nodelay.block_orders).to_string(),
                sim_blocks(&mut sc, g, &machine, &noprot.block_orders).to_string(),
            ]);
        }
    }
    writeln!(w, "{}", t2.render())?;
    writeln!(
        w,
        "expected shape: on Figure-2 chains, removing Delay_Idle_Slots erases the\n\
         entire anticipatory win (it is the paper's 'key idea'); on seam traces the\n\
         win comes from merge-driven ordering and survives the ablation. Old-\n\
         protection guards prediction fidelity rather than raw cycles here."
    )?;
    Ok(())
}
