//! The experiment registry.
//!
//! Each experiment regenerates one figure of the paper or one table of
//! the future-work evaluation, writing a self-describing report to the
//! given writer. Experiment ids match DESIGN.md / EXPERIMENTS.md.

use asched_core::TraceResult;
use asched_engine::{Engine, TraceTask};
use asched_graph::{DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use asched_obs::{record, Event, Recorder, SpanAlloc, SpanScope, NULL};
use asched_sim::{simulate, InstStream, IssuePolicy};
use std::io::{self, Write};

mod e10;
mod e12;
mod e13;
mod e14;
mod e5;
mod e6;
mod e7;
mod e8;
mod e9;
mod f1;
mod f2;
mod f3;
mod f8;

/// Context threaded through every experiment: the report writer, the
/// active event [`Recorder`], the batch [`Engine`] that schedules every
/// trace corpus, and the machine-readable metrics the experiment
/// publishes alongside its text tables (the cycle counts that end up in
/// `BENCH_<label>.json` snapshots).
///
/// `RunCtx` implements [`io::Write`] by delegating to the report
/// writer, so experiment code keeps using `writeln!`.
pub struct RunCtx<'a> {
    out: &'a mut dyn Write,
    rec: &'a dyn Recorder,
    engine: Engine,
    metrics: Vec<(String, f64)>,
    /// Span ids for `--trace` runs. One allocator for the whole repro,
    /// drawn from only in the engine's sequential phases, so traces are
    /// byte-identical across `--jobs` settings (modulo `nanos`).
    spans: SpanAlloc,
}

impl<'a> RunCtx<'a> {
    /// Context writing to `out`, with recording disabled.
    pub fn new(out: &'a mut dyn Write) -> Self {
        RunCtx::with_recorder(out, &NULL)
    }

    /// Context writing to `out` and reporting events to `rec`. The
    /// engine defaults to sequential execution with the cache off, so
    /// the output is the reference (single-threaded) reproduction.
    pub fn with_recorder(out: &'a mut dyn Write, rec: &'a dyn Recorder) -> Self {
        RunCtx::with_engine(out, rec, Engine::default())
    }

    /// Context with a caller-configured engine (`repro --jobs N`).
    pub fn with_engine(out: &'a mut dyn Write, rec: &'a dyn Recorder, engine: Engine) -> Self {
        RunCtx {
            out,
            rec,
            engine,
            metrics: Vec::new(),
            spans: SpanAlloc::new(),
        }
    }

    /// The active recorder, for passing into `*_rec` entry points.
    pub fn recorder(&self) -> &'a dyn Recorder {
        self.rec
    }

    /// Schedule a corpus of trace tasks through the batch engine and
    /// return the results in input order. Experiments collect their
    /// (graph, machine, config) triples up front and batch them here,
    /// so `repro --jobs N` parallelizes every embarrassingly-parallel
    /// sweep without changing its output — the engine's results are a
    /// pure function of the corpus.
    ///
    /// Panics if a task fails even the engine's rank fallback; the
    /// experiment corpora are all schedulable by construction, so a
    /// failure here is a bug, exactly like the `.expect("schedules")`
    /// calls it replaces.
    pub fn trace_batch(&self, tasks: Vec<TraceTask>) -> Vec<TraceResult> {
        // Each batch becomes one root "engine" span with a "task" span
        // per task; with recording disabled the traced path collapses
        // to the plain one and allocates no ids.
        self.engine
            .run_batch_traced(None, &tasks, self.rec, Some(SpanScope::root(&self.spans)))
            .into_results()
            .expect("experiment corpus schedules")
    }

    /// Publish one integer metric (typically a cycle count). Mirrored
    /// onto the event stream as a `counter` event so profiles and
    /// traces see the same numbers as the snapshot.
    pub fn metric(&mut self, name: &str, value: u64) {
        record!(self.rec, Event::Counter { name, delta: value });
        self.metrics.push((name.to_string(), value as f64));
    }

    /// Publish one fractional metric (means, ratios). Snapshot-only:
    /// the event stream's counters are integral.
    pub fn metric_f(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// All metrics published so far, in insertion order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }
}

impl io::Write for RunCtx<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.out.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// One registered experiment.
pub struct Experiment {
    /// Identifier (`f1`, `e5`, …).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Run it, writing the report and publishing metrics.
    pub run: fn(&mut RunCtx<'_>) -> io::Result<()>,
}

/// All experiments, in presentation order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "f1",
            title: "Figure 1: rank schedule and idle-slot delaying for BB1",
            run: f1::run,
        },
        Experiment {
            id: "f2",
            title: "Figure 2: anticipatory scheduling of BB1,BB2 at W=2",
            run: f2::run,
        },
        Experiment {
            id: "f3",
            title: "Figure 3: partial-products loop (from IR) and Section 5.2.3",
            run: f3::run,
        },
        Experiment {
            id: "f8",
            title: "Figure 8: single-source counter-example, general case wins",
            run: f8::run,
        },
        Experiment {
            id: "e5",
            title: "E5: window-size sweep, all schedulers on random traces",
            run: e5::run,
        },
        Experiment {
            id: "e6",
            title: "E6: trace-length sweep at W=4",
            run: e6::run,
        },
        Experiment {
            id: "e7",
            title: "E7: optimality check against brute force (restricted case)",
            run: e7::run,
        },
        Experiment {
            id: "e8",
            title: "E8: multiple functional units (Section 4.2 heuristic)",
            run: e8::run,
        },
        Experiment {
            id: "e9",
            title: "E9: loop steady state — local vs 5.2.3 vs modulo vs post-pass",
            run: e9::run,
        },
        Experiment {
            id: "e10",
            title: "E10: ablations — idle-slot delaying and old-protection",
            run: e10::run,
        },
        Experiment {
            id: "e12",
            title: "E12: branch-prediction accuracy sensitivity",
            run: e12::run,
        },
        Experiment {
            id: "e13",
            title: "E13: loop unrolling x anticipatory scheduling",
            run: e13::run,
        },
        Experiment {
            id: "e14",
            title: "E14: register pressure and local renaming",
            run: e14::run,
        },
    ]
}

/// Run every experiment.
pub fn run_all(ctx: &mut RunCtx<'_>) -> io::Result<()> {
    for e in all() {
        (e.run)(ctx)?;
    }
    Ok(())
}

/// Run one experiment by id. Returns false if the id is unknown.
pub fn run_by_id(id: &str, ctx: &mut RunCtx<'_>) -> io::Result<bool> {
    for e in all() {
        if e.id.eq_ignore_ascii_case(id) {
            (e.run)(ctx)?;
            return Ok(true);
        }
    }
    Ok(false)
}

/// Simulated completion of emitted per-block orders.
pub(crate) fn sim_blocks(
    sc: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    orders: &[Vec<NodeId>],
) -> u64 {
    let stream = InstStream::from_blocks(orders);
    simulate(
        sc,
        g,
        machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    )
    .completion
}

/// Simulated completion of a single global order (the trace-scheduling
/// oracle's code after global motion).
pub(crate) fn sim_order(
    sc: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    order: &[NodeId],
) -> u64 {
    let stream = InstStream::from_order(order);
    simulate(
        sc,
        g,
        machine,
        &stream,
        IssuePolicy::Strict,
        &SchedOpts::default(),
    )
    .completion
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert_eq!(n, 13);
    }

    #[test]
    fn unknown_id_reports_false() {
        let mut sink = Vec::new();
        let mut ctx = RunCtx::new(&mut sink);
        assert!(!run_by_id("zz", &mut ctx).unwrap());
    }

    /// Every experiment runs without error and produces output
    /// containing its section id. This is the smoke test that keeps the
    /// whole harness wired.
    #[test]
    fn all_experiments_run() {
        for e in all() {
            let mut out = Vec::new();
            let mut ctx = RunCtx::new(&mut out);
            (e.run)(&mut ctx).unwrap_or_else(|err| panic!("{} failed: {err}", e.id));
            assert!(
                !ctx.metrics().is_empty(),
                "{} must publish at least one metric",
                e.id
            );
            drop(ctx);
            let text = String::from_utf8(out).unwrap();
            assert!(
                text.to_lowercase()
                    .contains(&format!("[{}]", e.id).to_lowercase()),
                "{} output must carry its id",
                e.id
            );
            assert!(text.len() > 100, "{} output too small", e.id);
            if e.id.starts_with('f') {
                assert!(
                    text.contains("reproduction: EXACT"),
                    "{} must reproduce the paper exactly",
                    e.id
                );
            }
        }
    }
}
