//! `repro` — regenerate the paper's figures and the evaluation tables.
//!
//! ```text
//! repro            # run everything
//! repro f3 e5      # run selected experiments
//! repro --list     # list experiment ids
//! ```

use asched_bench::experiments;
use std::io::{self, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = io::stdout();
    let mut out = stdout.lock();

    if args.iter().any(|a| a == "--list" || a == "-l") {
        for e in experiments::all() {
            let _ = writeln!(out, "{:>4}  {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }

    writeln!(
        out,
        "Anticipatory Instruction Scheduling (Sarkar & Simons, SPAA 1996) — reproduction"
    )
    .ok();

    let result = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::run_all(&mut out)
    } else {
        let mut ok = true;
        for id in &args {
            match experiments::run_by_id(id, &mut out) {
                Ok(true) => {}
                Ok(false) => {
                    eprintln!("unknown experiment `{id}` (try --list)");
                    ok = false;
                }
                Err(e) => {
                    eprintln!("io error: {e}");
                    ok = false;
                }
            }
        }
        if ok {
            Ok(())
        } else {
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("io error: {e}");
            ExitCode::FAILURE
        }
    }
}
