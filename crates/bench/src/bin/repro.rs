//! `repro` — regenerate the paper's figures and the evaluation tables.
//!
//! ```text
//! repro                      # run everything
//! repro f3 e5                # run selected experiments
//! repro --list               # list experiment ids
//! repro --trace FILE         # also write a JSONL event trace
//! repro --profile            # also print the aggregated RunProfile
//! repro --snapshot LABEL     # also write BENCH_<LABEL>.json metrics
//! repro --jobs N             # schedule trace corpora on N threads
//! repro --cache              # reuse schedules across identical tasks
//! ```
//!
//! `--jobs` defaults to 1 and the engine's batch results are a pure
//! function of the corpus, so the report is byte-identical at any job
//! count (`repro_output.txt` is the reference).
//!
//! Diagnostics (unknown ids, I/O failures) are routed through the
//! `asched-obs` event stream: they reach stderr via
//! [`StderrDiagnostics`] and, when tracing, the JSONL file too.

use asched_bench::experiments::{self, RunCtx};
use asched_bench::report;
use asched_engine::{Engine, EngineConfig};
use asched_obs::{
    Event, JsonlRecorder, ProfileRecorder, Recorder, Severity, StderrDiagnostics, TeeRecorder, NULL,
};
use std::io::{self, Write};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--list] [--trace FILE] [--profile] [--snapshot LABEL] \
         [--jobs N] [--cache] [ids... | all]"
    );
    std::process::exit(2);
}

struct Options {
    list: bool,
    trace: Option<String>,
    profile: bool,
    snapshot: Option<String>,
    jobs: usize,
    cache: bool,
    ids: Vec<String>,
}

fn parse_args() -> Options {
    let mut o = Options {
        list: false,
        trace: None,
        profile: false,
        snapshot: None,
        jobs: 1,
        cache: false,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" | "-l" => o.list = true,
            "--trace" => o.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => o.profile = true,
            "--snapshot" => o.snapshot = Some(args.next().unwrap_or_else(|| usage())),
            "--jobs" | "-j" => {
                o.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cache" => o.cache = true,
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => o.ids.push(a),
        }
    }
    o
}

fn main() -> ExitCode {
    let o = parse_args();
    let stdout = io::stdout();
    let mut out = stdout.lock();

    if o.list {
        for e in experiments::all() {
            let _ = writeln!(out, "{:>4}  {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }

    // Experiment-facing recorder: trace file and/or profile aggregator.
    // With neither flag both sides are null and instrumented code never
    // constructs an event (the default, bit-identical-output path).
    let diag_stderr = StderrDiagnostics;
    let tracer = match o.trace.as_deref() {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(JsonlRecorder::new(io::BufWriter::new(f))),
            Err(e) => {
                diag_stderr.record(&Event::Diagnostic {
                    severity: Severity::Error,
                    code: "trace_create_failed",
                    message: &format!("cannot create trace file {path}: {e}"),
                });
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let profiler = (o.profile || o.snapshot.is_some()).then(ProfileRecorder::new);
    let trace_rec: &dyn Recorder = tracer.as_ref().map_or(&NULL as &dyn Recorder, |r| r);
    let profile_rec: &dyn Recorder = profiler.as_ref().map_or(&NULL as &dyn Recorder, |r| r);
    let tee = TeeRecorder::new(trace_rec, profile_rec);
    let rec: &dyn Recorder = &tee;
    // CLI diagnostics reach stderr and, when enabled, the trace/profile.
    let diag = TeeRecorder::new(&diag_stderr, rec);

    writeln!(
        out,
        "Anticipatory Instruction Scheduling (Sarkar & Simons, SPAA 1996) — reproduction"
    )
    .ok();

    let engine = Engine::new(EngineConfig {
        jobs: o.jobs,
        cache: o.cache,
        ..EngineConfig::default()
    });
    let mut ctx = RunCtx::with_engine(&mut out, rec, engine);
    let mut ok = true;
    if o.ids.is_empty() || o.ids.iter().any(|a| a == "all") {
        if let Err(e) = experiments::run_all(&mut ctx) {
            diag.record(&Event::Diagnostic {
                severity: Severity::Error,
                code: "io_error",
                message: &format!("io error: {e}"),
            });
            ok = false;
        }
    } else {
        for id in &o.ids {
            match experiments::run_by_id(id, &mut ctx) {
                Ok(true) => {}
                Ok(false) => {
                    diag.record(&Event::Diagnostic {
                        severity: Severity::Error,
                        code: "unknown_experiment",
                        message: &format!("unknown experiment `{id}` (try --list)"),
                    });
                    ok = false;
                }
                Err(e) => {
                    diag.record(&Event::Diagnostic {
                        severity: Severity::Error,
                        code: "io_error",
                        message: &format!("io error: {e}"),
                    });
                    ok = false;
                }
            }
        }
    }
    let metrics = ctx.metrics().to_vec();
    drop(ctx);

    if o.profile {
        if let Some(p) = profiler.as_ref() {
            let _ = write!(out, "{}", report::profile_section(&p.snapshot()));
        }
    }
    if let Some(label) = o.snapshot.as_deref() {
        let profile = profiler.as_ref().map(|p| p.snapshot());
        let doc = report::snapshot_json(label, &metrics, profile.as_ref());
        let path = format!("BENCH_{label}.json");
        match std::fs::write(&path, doc + "\n") {
            Ok(()) => diag.record(&Event::Diagnostic {
                severity: Severity::Info,
                code: "snapshot_written",
                message: &format!("wrote {path} ({} metrics)", metrics.len()),
            }),
            Err(e) => {
                diag.record(&Event::Diagnostic {
                    severity: Severity::Error,
                    code: "snapshot_write_failed",
                    message: &format!("cannot write {path}: {e}"),
                });
                ok = false;
            }
        }
    }
    if let Some(t) = tracer {
        let mut w = t.into_inner();
        if let Err(e) = w.flush() {
            diag_stderr.record(&Event::Diagnostic {
                severity: Severity::Error,
                code: "trace_write_failed",
                message: &format!("error writing trace file: {e}"),
            });
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
