//! `asched-batch` — drive the batch scheduling engine over a corpus.
//!
//! ```text
//! asched-batch --synth 500                    # seeded synthetic corpus
//! asched-batch --corpus traces.corpus        # corpus manifest file
//! asched-batch --synth 500 --jobs 8 --cache 256
//! asched-batch --synth 500 --jobs 8 --compare-jobs 1 --snapshot engine
//! asched-batch --synth 500 --cache-file warm.bin   # persist + warm-start
//! ```
//!
//! The engine's results are a pure function of the corpus, so
//! `--compare-jobs M` doubles as a determinism check: the run is
//! repeated on M workers and the per-task outcomes, makespans,
//! fingerprints and deterministic counters must match exactly — any
//! divergence is a hard error. The wall-clock of both runs (and their
//! ratio) lands in the `BENCH_<label>.json` snapshot under `wall.*`.
//!
//! Per-task results go to `--results FILE` as JSONL; the full event
//! stream (including the scheduler's inner passes) to `--trace FILE`.
//!
//! `--cache-file FILE` backs the run with a shared schedule cache
//! persisted to FILE: entries from a previous run are loaded (warm
//! hits) and newly computed schedules are appended, so repeated
//! invocations over overlapping corpora start hot. Implies caching
//! even without `--cache`. The `--compare-jobs` run warm-starts from a
//! snapshot of FILE taken *before* the main run, so both runs see the
//! same warm set and the determinism check still demands identical
//! counters.

use asched_bench::report;
use asched_engine::{
    parse_manifest, synth_corpus, BatchReport, Engine, EngineConfig, SharedScheduleCache, TraceTask,
};
use asched_obs::json::JsonObject;
use asched_obs::{
    Event, JsonlRecorder, ProfileRecorder, Recorder, Severity, SpanAlloc, SpanScope,
    StderrDiagnostics, TeeRecorder, NULL,
};
use std::io::{self, Write};
use std::process::ExitCode;
use std::sync::Arc;

/// Shard count for `--cache-file` runs — matches the serving tier so
/// traces from both attribute the same shard ids to the same keys.
const CACHE_SHARDS: usize = 16;

fn usage() -> ! {
    eprintln!(
        "usage: asched-batch [--corpus FILE | --synth N] [--seed S] [--jobs N]\n\
         \x20                   [--cache CAP] [--cache-file FILE] [--budget N]\n\
         \x20                   [--results FILE] [--trace FILE] [--snapshot LABEL]\n\
         \x20                   [--compare-jobs M]"
    );
    std::process::exit(2);
}

struct Options {
    corpus: Option<String>,
    synth: Option<usize>,
    seed: u64,
    jobs: usize,
    cache: Option<usize>,
    cache_file: Option<String>,
    budget: Option<u64>,
    results: Option<String>,
    trace: Option<String>,
    snapshot: Option<String>,
    compare_jobs: Option<usize>,
}

fn parse_args() -> Options {
    let mut o = Options {
        corpus: None,
        synth: None,
        seed: 1,
        jobs: 1,
        cache: None,
        cache_file: None,
        budget: None,
        results: None,
        trace: None,
        snapshot: None,
        compare_jobs: None,
    };
    fn value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    }
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--corpus" => o.corpus = Some(value(&mut args)),
            "--synth" => o.synth = Some(value(&mut args)),
            "--seed" => o.seed = value(&mut args),
            "--jobs" | "-j" => o.jobs = value(&mut args),
            "--cache" => o.cache = Some(value(&mut args)),
            "--cache-file" => o.cache_file = Some(value(&mut args)),
            "--budget" => o.budget = Some(value(&mut args)),
            "--results" => o.results = Some(value(&mut args)),
            "--trace" => o.trace = Some(value(&mut args)),
            "--snapshot" => o.snapshot = Some(value(&mut args)),
            "--compare-jobs" => o.compare_jobs = Some(value(&mut args)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if o.corpus.is_some() == o.synth.is_some() {
        usage(); // exactly one corpus source
    }
    o
}

fn engine_config(o: &Options, jobs: usize) -> EngineConfig {
    EngineConfig {
        jobs,
        // --cache-file implies caching: the point of the file is reuse.
        cache: o.cache.is_some() || o.cache_file.is_some(),
        cache_capacity: o.cache.unwrap_or(1024),
        step_budget: o.budget,
        // Buffering every scheduler event only pays off when a trace
        // file wants them; engine-level events flow regardless.
        capture: o.trace.is_some(),
    }
}

/// Build an engine for the run, warm-starting a shared cache from
/// `--cache-file` when given.
fn build_engine(o: &Options, jobs: usize, cache_file: Option<&str>) -> io::Result<(Engine, u64)> {
    let cfg = engine_config(o, jobs);
    match cache_file {
        None => Ok((Engine::new(cfg), 0)),
        Some(path) => {
            let cache = Arc::new(SharedScheduleCache::new(cfg.cache_capacity, CACHE_SHARDS));
            let warm = cache.warm_start(path.as_ref())?;
            Ok((Engine::with_shared_cache(cfg, cache), warm.loaded))
        }
    }
}

fn results_jsonl(report: &BatchReport) -> String {
    let mut out = String::new();
    for t in &report.tasks {
        let mut obj = JsonObject::new();
        obj.u64("task", t.index as u64).str("label", &t.label);
        match t.fingerprint {
            Some(fp) => obj.str("fingerprint", &fp.to_string()),
            None => obj.raw("fingerprint", "null"),
        };
        obj.str("outcome", t.outcome.name())
            .u64("makespan", t.makespan);
        if let Some(err) = &t.error {
            obj.str("error", err);
        }
        out.push_str(&obj.finish());
        out.push('\n');
    }
    out
}

/// The determinism contract `--compare-jobs` enforces: identical
/// deterministic counters and identical per-task outcome, makespan and
/// fingerprint, in input order.
fn divergence(a: &BatchReport, b: &BatchReport) -> Option<String> {
    if a.metrics() != b.metrics() {
        return Some("deterministic batch metrics differ".to_string());
    }
    for (x, y) in a.tasks.iter().zip(&b.tasks) {
        if x.outcome != y.outcome || x.makespan != y.makespan || x.fingerprint != y.fingerprint {
            return Some(format!("task {} ({}) differs", x.index, x.label));
        }
    }
    None
}

fn main() -> ExitCode {
    let o = parse_args();
    let diag = StderrDiagnostics;
    let fail = |code: &str, message: &str| {
        diag.record(&Event::Diagnostic {
            severity: Severity::Error,
            code,
            message,
        });
        ExitCode::FAILURE
    };

    let tasks: Vec<TraceTask> = if let Some(path) = &o.corpus {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail("corpus_read_failed", &format!("cannot read {path}: {e}")),
        };
        match parse_manifest(&text) {
            Ok(t) => t,
            Err(e) => return fail("corpus_parse_failed", &format!("{path}: {e}")),
        }
    } else {
        synth_corpus(o.synth.unwrap_or(0), o.seed)
    };
    if tasks.is_empty() {
        return fail("empty_corpus", "the corpus has no tasks");
    }

    // Recorder stack for the main run: optional JSONL trace, optional
    // profile aggregation (for the snapshot), diagnostics to stderr.
    let tracer = match o.trace.as_deref() {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(JsonlRecorder::new(io::BufWriter::new(f))),
            Err(e) => {
                return fail(
                    "trace_create_failed",
                    &format!("cannot create trace file {path}: {e}"),
                )
            }
        },
        None => None,
    };
    let profiler = o.snapshot.is_some().then(ProfileRecorder::new);
    let trace_rec: &dyn Recorder = tracer.as_ref().map_or(&NULL as &dyn Recorder, |r| r);
    let profile_rec: &dyn Recorder = profiler.as_ref().map_or(&NULL as &dyn Recorder, |r| r);
    let sinks = TeeRecorder::new(trace_rec, profile_rec);
    let rec = TeeRecorder::new(&diag, &sinks);

    // With --cache-file and --compare-jobs, the comparison run must
    // warm-start from the file as it was *before* the main run appends
    // to it — snapshot the bytes now.
    let pre_run_cache: Option<Vec<u8>> = match (&o.cache_file, o.compare_jobs) {
        (Some(path), Some(_)) => Some(std::fs::read(path).unwrap_or_default()),
        _ => None,
    };
    let (engine, warm_loaded) = match build_engine(&o, o.jobs, o.cache_file.as_deref()) {
        Ok(e) => e,
        Err(e) => {
            let path = o.cache_file.as_deref().unwrap_or_default();
            return fail("cache_file_failed", &format!("cannot open {path}: {e}"));
        }
    };
    // Span ids are allocated only in the engine's sequential phases, so
    // the traced stream stays byte-identical across `--jobs` counts.
    let spans = SpanAlloc::new();
    let report = engine.run_batch_traced(None, &tasks, &rec, Some(SpanScope::root(&spans)));

    let stdout = io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "asched-batch: {} tasks on {} worker(s)",
        report.tasks.len(),
        report.jobs
    );
    let _ = writeln!(
        out,
        "  outcomes : {} scheduled, {} cached, {} degraded, {} failed",
        report.scheduled, report.cached, report.degraded, report.failed
    );
    if o.cache.is_some() || o.cache_file.is_some() {
        let _ = writeln!(
            out,
            "  cache    : {} hits, {} misses, {} evictions (hit rate {:.1}%)",
            report.cache_hits,
            report.cache_misses,
            report.cache_evictions,
            report.hit_rate() * 100.0
        );
    }
    if let Some(path) = &o.cache_file {
        let stats = engine.shared_cache().map(|c| c.stats()).unwrap_or_default();
        let _ = writeln!(
            out,
            "  warm     : loaded {warm_loaded} from {path}, {} warm hits, {} appended",
            stats.warm_hits, stats.persisted
        );
    }
    let elapsed_ms = report.elapsed_nanos as f64 / 1e6;
    let _ = writeln!(
        out,
        "  wall     : {elapsed_ms:.1} ms ({:.0} tasks/s)",
        report.throughput()
    );

    let mut ok = report.failed == 0;
    if !ok {
        diag.record(&Event::Diagnostic {
            severity: Severity::Error,
            code: "batch_tasks_failed",
            message: &format!("{} task(s) produced no schedule", report.failed),
        });
    }

    let mut metrics = report.metrics();
    metrics.push(("wall.elapsed_ms".to_string(), elapsed_ms));
    metrics.push(("wall.jobs".to_string(), report.jobs as f64));

    // The comparison run: same corpus, same config, M workers, fresh
    // engine (and fresh cache, warm-started from the pre-run snapshot
    // when --cache-file is in play) so both runs do the same work.
    if let Some(m) = o.compare_jobs {
        let cmp_file = pre_run_cache.as_ref().map(|bytes| {
            let path = std::env::temp_dir()
                .join(format!("asched-batch-compare-{}.bin", std::process::id()));
            let _ = std::fs::write(&path, bytes);
            path
        });
        let cmp_engine = match build_engine(&o, m, cmp_file.as_ref().and_then(|p| p.to_str())) {
            Ok((e, _)) => e,
            Err(e) => {
                if let Some(p) = &cmp_file {
                    let _ = std::fs::remove_file(p);
                }
                return fail("cache_file_failed", &format!("compare warm-start: {e}"));
            }
        };
        let cmp = cmp_engine.run_batch(&tasks, &NULL);
        if let Some(p) = &cmp_file {
            let _ = std::fs::remove_file(p);
        }
        let cmp_ms = cmp.elapsed_nanos as f64 / 1e6;
        let speedup = if report.elapsed_nanos > 0 {
            cmp.elapsed_nanos as f64 / report.elapsed_nanos as f64
        } else {
            0.0
        };
        match divergence(&report, &cmp) {
            None => {
                let _ = writeln!(
                    out,
                    "  compare  : jobs={m} identical results in {cmp_ms:.1} ms \
                     (speedup {speedup:.2}x at jobs={})",
                    report.jobs
                );
            }
            Some(why) => {
                ok = false;
                diag.record(&Event::Diagnostic {
                    severity: Severity::Error,
                    code: "determinism_violation",
                    message: &format!("jobs={} vs jobs={m}: {why}", report.jobs),
                });
            }
        }
        metrics.push(("wall.compare_jobs".to_string(), m as f64));
        metrics.push(("wall.compare_elapsed_ms".to_string(), cmp_ms));
        metrics.push(("wall.speedup".to_string(), speedup));
    }

    if let Some(path) = &o.results {
        if let Err(e) = std::fs::write(path, results_jsonl(&report)) {
            return fail("results_write_failed", &format!("cannot write {path}: {e}"));
        }
    }
    if let Some(label) = o.snapshot.as_deref() {
        let profile = profiler.as_ref().map(|p| p.snapshot());
        let doc = report::snapshot_json(label, &metrics, profile.as_ref());
        let path = format!("BENCH_{label}.json");
        match std::fs::write(&path, doc + "\n") {
            Ok(()) => diag.record(&Event::Diagnostic {
                severity: Severity::Info,
                code: "snapshot_written",
                message: &format!("wrote {path} ({} metrics)", metrics.len()),
            }),
            Err(e) => {
                return fail(
                    "snapshot_write_failed",
                    &format!("cannot write {path}: {e}"),
                )
            }
        }
    }
    if let Some(t) = tracer {
        let mut w = t.into_inner();
        if let Err(e) = w.flush() {
            return fail(
                "trace_write_failed",
                &format!("error writing trace file: {e}"),
            );
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
