//! The zero-cost contract: with the default `NullRecorder`, the
//! `record!` macro and `timed` span helper must not allocate — the
//! event is never even constructed. Verified with a counting global
//! allocator.

use asched_obs::{record, timed, Event, MergeRung, Pass, Recorder, Severity, StallKind, NULL};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let r = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, r)
}

#[test]
fn null_recorder_paths_do_not_allocate() {
    // Warm up whatever the test harness itself lazily allocates.
    let _ = allocations(|| {});

    let (n, _) = allocations(|| {
        for i in 0..1000u64 {
            record!(
                &NULL,
                Event::Issue {
                    cycle: i,
                    pos: i as u32,
                    node: i as u32,
                    unit: 0,
                }
            );
            record!(
                &NULL,
                Event::Stall {
                    cycle: i,
                    head: 3,
                    kind: StallKind::DataWait,
                    cycles: 1,
                }
            );
            record!(
                &NULL,
                Event::MergeDone {
                    rung: MergeRung::Paper,
                    makespan: i,
                    relaxed: 0,
                }
            );
            record!(
                &NULL,
                Event::Diagnostic {
                    severity: Severity::Info,
                    code: "noop",
                    // The format! below would allocate — the macro must
                    // short-circuit before evaluating it.
                    message: &format!("expensive {i}"),
                }
            );
            let v = timed(&NULL, Pass::Merge, || i * 2);
            assert_eq!(v, i * 2);
        }
    });
    assert_eq!(n, 0, "disabled recorder must not allocate");
}

#[test]
fn null_recorder_is_disabled_and_inert() {
    assert!(!NULL.enabled());
    // Direct record/flush calls are harmless no-ops too.
    let (n, _) = allocations(|| {
        NULL.record(&Event::Counter {
            name: "x",
            delta: 1,
        });
        let _ = NULL.flush();
    });
    assert_eq!(n, 0);
}
