//! Metrics aggregation: counters, histograms and per-pass wall-clock.
//!
//! [`ProfileRecorder`] is a [`Recorder`] that folds the event stream
//! into a [`RunProfile`] instead of (or in addition to) serializing it.
//! The profile is what `--profile` prints and what the bench report
//! embeds.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io;

use crate::event::{Event, MergeRung, Pass, StallKind, TaskOutcome};
use crate::json::JsonObject;
use crate::recorder::Recorder;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// # Bucket boundaries
///
/// There are 65 buckets. Bucket `0` holds exactly `v == 0`; bucket
/// `i >= 1` holds samples whose value `v` satisfies
/// `floor(log2(v)) == i - 1`, i.e. the inclusive range
/// `[2^(i-1), 2^i - 1]`:
///
/// ```text
/// bucket  0: [0, 0]
/// bucket  1: [1, 1]
/// bucket  2: [2, 3]
/// bucket  3: [4, 7]
/// ...
/// bucket 64: [2^63, u64::MAX]
/// ```
///
/// That is plenty of resolution for occupancy, stall-length and
/// latency distributions while staying allocation-free after
/// construction, and the fixed boundaries are what make
/// [`Histogram::merge`] exact: merging two histograms loses nothing
/// beyond what bucketing already lost at `record` time. The Prometheus
/// exposition in `crates/serve` publishes these same bounds as its
/// `le` labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one, exactly: bucket counts add
    /// (saturating), `count`/`sum` add (saturating), and `min`/`max`
    /// take the elementwise extremes. Because both sides share the same
    /// fixed bucket boundaries, the merged histogram is
    /// indistinguishable from one that recorded both sample streams
    /// directly.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate `p`-quantile (`0.0..=1.0`) of the recorded samples:
    /// the rank is located in the power-of-two bucket holding it and
    /// interpolated linearly inside the bucket, clamped to the observed
    /// `[min, max]` range. `None` when the histogram is empty. The
    /// serving layer's `/metrics` p50/p99 latencies come from here.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = (p * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank < seen + n {
                let (lo, hi) = if i == 0 {
                    (0, 0)
                } else {
                    // hi = 2*lo - 1, written overflow-free so the top
                    // bucket [2^63, u64::MAX] works.
                    let lo = 1u64 << (i - 1);
                    (lo, lo + (lo - 1))
                };
                let frac = if n <= 1 {
                    0.0
                } else {
                    (rank - seen) as f64 / (n - 1) as f64
                };
                let est = lo as f64 + frac * (hi - lo) as f64;
                return Some((est.round() as u64).clamp(self.min, self.max));
            }
            seen += n;
        }
        Some(self.max)
    }

    /// The 99.9th percentile; see [`Histogram::percentile`].
    pub fn p999(&self) -> Option<u64> {
        self.percentile(0.999)
    }

    /// Iterate non-empty buckets as `(lower_bound, upper_bound, count)`
    /// with inclusive bounds.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                if i == 0 {
                    (0, 0, n)
                } else {
                    (
                        1u64 << (i - 1),
                        (1u64 << (i - 1)) + ((1u64 << (i - 1)) - 1),
                        n,
                    )
                }
            })
    }

    /// Render as the JSON object embedded in profiles, snapshots and
    /// the service-time model emitted by `asched-trace --calibrate`:
    /// `{"count":..,"sum":..,"min":..,"max":..,"buckets":[{"lo","hi","n"},..]}`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("count", self.count).u64("sum", self.sum);
        o.opt_u64("min", self.min()).opt_u64("max", self.max());
        let mut buckets = String::from("[");
        for (i, (lo, hi, n)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let mut b = JsonObject::new();
            b.u64("lo", lo).u64("hi", hi).u64("n", n);
            buckets.push_str(&b.finish());
        }
        buckets.push(']');
        o.raw("buckets", &buckets);
        o.finish()
    }
}

/// Aggregated observability data for one run: named counters, value
/// histograms and per-pass wall-clock totals.
#[derive(Clone, Debug, Default)]
pub struct RunProfile {
    /// Monotonic named counters (merge probes, idle moves, issues, ...).
    pub counters: BTreeMap<String, u64>,
    /// Value distributions (window occupancy, stall lengths, ...).
    pub histograms: BTreeMap<String, Histogram>,
    /// Total wall-clock nanoseconds per pass.
    pub pass_nanos: BTreeMap<&'static str, u64>,
    /// Number of timed invocations per pass.
    pub pass_calls: BTreeMap<&'static str, u64>,
}

impl RunProfile {
    /// Empty profile.
    pub fn new() -> Self {
        RunProfile::default()
    }

    /// Add `delta` to counter `name`.
    pub fn bump(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Record one timed pass invocation.
    pub fn add_pass(&mut self, pass: Pass, nanos: u64) {
        *self.pass_nanos.entry(pass.name()).or_insert(0) += nanos;
        *self.pass_calls.entry(pass.name()).or_insert(0) += 1;
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fold another profile into this one.
    pub fn merge_from(&mut self, other: &RunProfile) {
        for (k, v) in &other.counters {
            self.bump(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, v) in &other.pass_nanos {
            *self.pass_nanos.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.pass_calls {
            *self.pass_calls.entry(k).or_insert(0) += v;
        }
    }

    /// Fold one event into the profile. This is the single place that
    /// defines how raw events aggregate, shared by [`ProfileRecorder`].
    pub fn absorb(&mut self, event: &Event<'_>) {
        match *event {
            Event::PassBegin { .. } => {}
            Event::PassEnd { pass, nanos, .. } => self.add_pass(pass, nanos),
            Event::RankRun {
                nodes, feasible, ..
            } => {
                self.bump("rank_runs", 1);
                if !feasible {
                    self.bump("rank_infeasible", 1);
                }
                self.observe("rank_nodes", nodes.into());
            }
            Event::IdleMove { moved, .. } => {
                self.bump("idle_moves_attempted", 1);
                if moved {
                    self.bump("idle_moves_applied", 1);
                }
            }
            Event::BlockBegin { carried, .. } => {
                self.bump("blocks", 1);
                self.observe("carried_in", carried.into());
            }
            Event::MergeProbe { feasible, .. } => {
                self.bump("merge_probes", 1);
                if feasible {
                    self.bump("merge_probes_feasible", 1);
                }
            }
            Event::MergeDone { rung, .. } => {
                self.bump("merges", 1);
                match rung {
                    MergeRung::Paper => self.bump("merge_rung_paper", 1),
                    MergeRung::PinnedOld => self.bump("merge_rung_pinned_old", 1),
                    MergeRung::Concatenation => self.bump("merge_rung_concatenation", 1),
                }
            }
            Event::Chop {
                emitted, carried, ..
            } => {
                self.bump("chops", 1);
                self.bump("chop_emitted", emitted.into());
                self.observe("chop_carried", carried.into());
            }
            Event::Issue { .. } => self.bump("issues", 1),
            Event::Stall { kind, cycles, .. } => {
                self.bump("stall_events", 1);
                self.bump("stall_cycles", cycles);
                match kind {
                    StallKind::DataWait => self.bump("stall_cycles_data_wait", cycles),
                    StallKind::HeadBlocked => self.bump("stall_cycles_head_blocked", cycles),
                }
                self.observe("stall_len", cycles);
            }
            Event::WindowOccupancy { occupancy, .. } => {
                self.observe("window_occupancy", occupancy.into());
            }
            Event::Counter { name, delta } => self.bump(name, delta),
            Event::Diagnostic { .. } => self.bump("diagnostics", 1),
            Event::CacheQuery { hit, .. } => {
                self.bump("cache_queries", 1);
                if hit {
                    self.bump("cache_hits", 1);
                } else {
                    self.bump("cache_misses", 1);
                }
            }
            Event::CacheEvict { .. } => self.bump("cache_evictions", 1),
            Event::TaskDone { outcome, .. } => {
                self.bump("engine_tasks", 1);
                match outcome {
                    TaskOutcome::Scheduled => self.bump("engine_tasks_scheduled", 1),
                    TaskOutcome::Cached => self.bump("engine_tasks_cached", 1),
                    TaskOutcome::Degraded => self.bump("engine_tasks_degraded", 1),
                    TaskOutcome::Failed => self.bump("engine_tasks_failed", 1),
                }
            }
            Event::ReqAccept { queue_depth } => {
                self.bump("req_accept", 1);
                self.observe("req_queue_depth", queue_depth.into());
            }
            Event::ReqShed { .. } => self.bump("req_shed", 1),
            Event::ReqDone { status, nanos, .. } => {
                self.bump("req_done", 1);
                match status {
                    200..=299 => self.bump("req_2xx", 1),
                    400..=499 => self.bump("req_4xx", 1),
                    500..=599 => self.bump("req_5xx", 1),
                    _ => {}
                }
                self.observe("req_nanos", nanos);
            }
            Event::SpanStart { .. } => self.bump("spans", 1),
            Event::SpanEnd { nanos, .. } => self.observe("span_nanos", nanos),
        }
    }

    /// Render the profile as the JSON object embedded in reports and
    /// `BENCH_*.json` snapshots.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (k, v) in &self.counters {
            counters.u64(k, *v);
        }
        let mut passes = String::from("[");
        for (i, (name, nanos)) in self.pass_nanos.iter().enumerate() {
            if i > 0 {
                passes.push(',');
            }
            let mut p = JsonObject::new();
            p.str("pass", name)
                .u64("nanos", *nanos)
                .u64("calls", self.pass_calls.get(name).copied().unwrap_or(0));
            passes.push_str(&p.finish());
        }
        passes.push(']');
        let mut hists = JsonObject::new();
        for (k, h) in &self.histograms {
            hists.raw(k, &h.to_json());
        }
        let mut o = JsonObject::new();
        o.raw("counters", &counters.finish());
        o.raw("passes", &passes);
        o.raw("histograms", &hists.finish());
        o.finish()
    }
}

impl fmt::Display for RunProfile {
    /// The human-readable table `--profile` prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run profile")?;
        writeln!(f, "  passes (wall clock)")?;
        if self.pass_nanos.is_empty() {
            writeln!(f, "    (none timed)")?;
        }
        for (name, nanos) in &self.pass_nanos {
            let calls = self.pass_calls.get(name).copied().unwrap_or(0);
            writeln!(
                f,
                "    {name:<16} {total:>12.3} ms  {calls:>8} calls  {per:>10.1} ns/call",
                total = *nanos as f64 / 1e6,
                per = *nanos as f64 / calls.max(1) as f64,
            )?;
        }
        writeln!(f, "  counters")?;
        if self.counters.is_empty() {
            writeln!(f, "    (none)")?;
        }
        for (name, value) in &self.counters {
            writeln!(f, "    {name:<28} {value:>12}")?;
        }
        if !self.histograms.is_empty() {
            writeln!(f, "  histograms")?;
            for (name, h) in &self.histograms {
                write!(
                    f,
                    "    {name:<20} n={n} min={min} max={max} mean={mean:.2}",
                    n = h.count(),
                    min = h.min().unwrap_or(0),
                    max = h.max().unwrap_or(0),
                    mean = h.mean().unwrap_or(0.0),
                )?;
                write!(f, "  |")?;
                for (lo, hi, n) in h.nonzero_buckets() {
                    if lo == hi {
                        write!(f, " {lo}:{n}")?;
                    } else {
                        write!(f, " {lo}-{hi}:{n}")?;
                    }
                }
                writeln!(f, " |")?;
            }
        }
        Ok(())
    }
}

/// A [`Recorder`] that aggregates events into a [`RunProfile`].
///
/// Uses a `RefCell` because the scheduling stack is single-threaded and
/// recorders are shared by `&` reference; `ProfileRecorder` is
/// accordingly `!Sync` and meant for per-run, per-thread use.
#[derive(Debug, Default)]
pub struct ProfileRecorder {
    profile: RefCell<RunProfile>,
}

impl ProfileRecorder {
    /// Fresh, empty profile.
    pub fn new() -> Self {
        ProfileRecorder::default()
    }

    /// Take the accumulated profile out.
    pub fn into_profile(self) -> RunProfile {
        self.profile.into_inner()
    }

    /// Clone the accumulated profile (leaves the recorder running).
    pub fn snapshot(&self) -> RunProfile {
        self.profile.borrow().clone()
    }
}

impl Recorder for ProfileRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event<'_>) {
        self.profile.borrow_mut().absorb(event);
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (1024, 2047, 1)
            ]
        );
    }

    #[test]
    fn percentiles_track_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(1.0), Some(100));
        let p50 = h.percentile(0.5).unwrap();
        assert!((30..=80).contains(&p50), "{p50}");
        assert!(h.percentile(0.99).unwrap() >= p50);
        assert_eq!(Histogram::new().percentile(0.5), None);
    }

    #[test]
    fn profile_absorbs_serve_events() {
        let rec = ProfileRecorder::new();
        rec.record(&Event::ReqAccept { queue_depth: 2 });
        rec.record(&Event::ReqShed { queue_depth: 64 });
        rec.record(&Event::ReqDone {
            status: 200,
            nanos: 1000,
            span: None,
        });
        rec.record(&Event::ReqDone {
            status: 503,
            nanos: 500,
            span: Some(1),
        });
        let p = rec.into_profile();
        assert_eq!(p.counter("req_accept"), 1);
        assert_eq!(p.counter("req_shed"), 1);
        assert_eq!(p.counter("req_done"), 2);
        assert_eq!(p.counter("req_2xx"), 1);
        assert_eq!(p.counter("req_5xx"), 1);
        assert_eq!(p.histograms["req_nanos"].count(), 2);
    }

    #[test]
    fn profile_absorbs_events() {
        let rec = ProfileRecorder::new();
        rec.record(&Event::MergeProbe {
            delta: 0,
            feasible: false,
        });
        rec.record(&Event::MergeProbe {
            delta: 1,
            feasible: true,
        });
        rec.record(&Event::MergeDone {
            rung: MergeRung::Paper,
            makespan: 5,
            relaxed: 1,
        });
        rec.record(&Event::PassEnd {
            pass: Pass::Merge,
            nanos: 1_000,
            span: None,
        });
        rec.record(&Event::Stall {
            cycle: 0,
            head: 0,
            kind: StallKind::HeadBlocked,
            cycles: 3,
        });
        let p = rec.into_profile();
        assert_eq!(p.counter("merge_probes"), 2);
        assert_eq!(p.counter("merge_probes_feasible"), 1);
        assert_eq!(p.counter("merge_rung_paper"), 1);
        assert_eq!(p.counter("stall_cycles_head_blocked"), 3);
        assert_eq!(p.pass_nanos.get("merge"), Some(&1_000));
        assert_eq!(p.histograms["stall_len"].count(), 1);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: every percentile (and p999) is None.
        let empty = Histogram::new();
        assert_eq!(empty.percentile(0.0), None);
        assert_eq!(empty.p999(), None);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);

        // Single sample: every percentile is that sample.
        let mut one = Histogram::new();
        one.record(37);
        for p in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(one.percentile(p), Some(37), "p={p}");
        }
        assert_eq!(one.p999(), Some(37));

        // Out-of-range p clamps rather than panicking.
        assert_eq!(one.percentile(-3.0), Some(37));
        assert_eq!(one.percentile(42.0), Some(37));

        // p999 sits between p99 and max on a heavy-tailed stream.
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.record(10);
        }
        h.record(100_000);
        let p99 = h.percentile(0.99).unwrap();
        let p999 = h.p999().unwrap();
        assert!(p99 <= p999, "p99 {p99} > p999 {p999}");
        assert!(p999 <= 100_000);
    }

    #[test]
    fn saturating_counts_do_not_overflow() {
        let mut a = Histogram::new();
        a.record(u64::MAX); // sum saturates at u64::MAX
        a.record(u64::MAX);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(u64::MAX));

        let mut b = Histogram::new();
        b.record(u64::MAX);
        a.merge(&b); // merged sum saturates too
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(1.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_is_exact() {
        // Merging must equal recording both streams directly.
        let xs = [0u64, 1, 5, 9, 1024, 77];
        let ys = [3u64, 3, 2_000_000, 0];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);

        // Merging an empty histogram is a no-op; merging into an empty
        // one copies.
        let mut empty = Histogram::new();
        empty.merge(&both);
        assert_eq!(empty, both);
        let snapshot = both.clone();
        both.merge(&Histogram::new());
        assert_eq!(both, snapshot);
    }

    #[test]
    fn profile_absorbs_span_events() {
        let rec = ProfileRecorder::new();
        rec.record(&Event::SpanStart {
            span: 1,
            parent: None,
            name: "request",
        });
        rec.record(&Event::SpanStart {
            span: 2,
            parent: Some(1),
            name: "engine",
        });
        rec.record(&Event::SpanEnd { span: 2, nanos: 40 });
        rec.record(&Event::SpanEnd { span: 1, nanos: 90 });
        let p = rec.into_profile();
        assert_eq!(p.counter("spans"), 2);
        assert_eq!(p.histograms["span_nanos"].count(), 2);
        assert_eq!(p.histograms["span_nanos"].sum(), 130);
    }

    #[test]
    fn merge_from_folds() {
        let mut a = RunProfile::new();
        a.bump("issues", 2);
        a.observe("window_occupancy", 4);
        a.add_pass(Pass::Simulate, 10);
        let mut b = RunProfile::new();
        b.bump("issues", 3);
        b.observe("window_occupancy", 8);
        b.add_pass(Pass::Simulate, 5);
        a.merge_from(&b);
        assert_eq!(a.counter("issues"), 5);
        assert_eq!(a.histograms["window_occupancy"].count(), 2);
        assert_eq!(a.pass_nanos["simulate"], 15);
        assert_eq!(a.pass_calls["simulate"], 2);
    }

    #[test]
    fn profile_json_has_sections() {
        let mut p = RunProfile::new();
        p.bump("issues", 1);
        p.add_pass(Pass::Rank, 42);
        p.observe("stall_len", 2);
        let j = p.to_json();
        assert!(j.contains(r#""counters":{"issues":1}"#), "{j}");
        assert!(j.contains(r#""pass":"rank","nanos":42,"calls":1"#), "{j}");
        assert!(j.contains(r#""histograms":{"stall_len""#), "{j}");
    }
}
