//! Recorder implementations: where events go.
//!
//! Hot loops gate on [`Recorder::enabled`] before even *constructing* an
//! event, so the default [`NullRecorder`] path compiles down to a
//! predictable branch on a constant `false` and performs no allocation
//! and no formatting. [`JsonlRecorder`] renders each event as one JSON
//! object per line; [`TeeRecorder`] fans events out to two recorders;
//! [`StderrDiagnostics`] prints only `Diagnostic` events, which is how
//! the CLI binaries route their human-facing warnings/errors through
//! the same event stream that traces capture.

use std::io;
use std::sync::Mutex;

use crate::event::{Event, OwnedEvent, Severity};
use crate::json::JsonObject;

/// Sink for structured events.
///
/// Implementations must be cheap to query via [`Recorder::enabled`]:
/// instrumented code calls it on hot paths (per probe, per cycle) and
/// only builds events when it returns `true`.
pub trait Recorder {
    /// Whether this recorder wants events at all. Call sites skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool;

    /// Consume one event.
    fn record(&self, event: &Event<'_>);

    /// Flush any buffered output. Default: nothing to do.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// The zero-cost default: drops everything, reports `enabled() == false`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&self, _event: &Event<'_>) {}
}

/// Shared reference to the null recorder, for APIs taking `&dyn Recorder`.
pub static NULL: NullRecorder = NullRecorder;

/// Serializes events as JSON Lines: one self-describing object per
/// event, tagged by `"ev"` and numbered by `"seq"`.
///
/// The writer sits behind a mutex so a single recorder can be shared by
/// reference across the whole pipeline; the scheduling stack itself is
/// single-threaded, so the lock is uncontended.
pub struct JsonlRecorder<W: io::Write> {
    inner: Mutex<JsonlInner<W>>,
}

struct JsonlInner<W> {
    writer: W,
    seq: u64,
}

impl<W: io::Write> JsonlRecorder<W> {
    /// Wrap `writer`. Lines are written unbuffered relative to `writer`;
    /// hand in a `BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        JsonlRecorder {
            inner: Mutex::new(JsonlInner { writer, seq: 0 }),
        }
    }

    /// Unwrap the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .writer
    }
}

/// Render one event as its wire-format JSON object (without the
/// trailing newline and without a `seq` field).
///
/// Optional `span` attribution is rendered as a trailing `"span":N`
/// field **only when present**, so untraced runs keep their historical
/// byte-exact line format.
pub fn event_to_json(event: &Event<'_>) -> String {
    let mut o = JsonObject::new();
    o.str("ev", event.name());
    let mut span_field: Option<u64> = None;
    match *event {
        Event::PassBegin { pass, span } => {
            o.str("pass", pass.name());
            span_field = span;
        }
        Event::PassEnd { pass, nanos, span } => {
            o.str("pass", pass.name()).u64("nanos", nanos);
            span_field = span;
        }
        Event::RankRun {
            nodes,
            makespan,
            feasible,
        } => {
            o.u64("nodes", nodes.into())
                .u64("makespan", makespan)
                .bool("feasible", feasible);
        }
        Event::IdleMove {
            unit,
            slot,
            new_start,
            moved,
        } => {
            o.u64("unit", unit.into())
                .u64("slot", slot)
                .opt_u64("new_start", new_start)
                .bool("moved", moved);
        }
        Event::BlockBegin {
            block,
            carried,
            new_nodes,
        } => {
            o.u64("block", block.into())
                .u64("carried", carried.into())
                .u64("new_nodes", new_nodes.into());
        }
        Event::MergeProbe { delta, feasible } => {
            o.i64("delta", delta).bool("feasible", feasible);
        }
        Event::MergeDone {
            rung,
            makespan,
            relaxed,
        } => {
            o.str("rung", rung.name())
                .u64("makespan", makespan)
                .i64("relaxed", relaxed);
        }
        Event::Chop {
            cut,
            emitted,
            carried,
            offset,
        } => {
            o.opt_u64("cut", cut)
                .u64("emitted", emitted.into())
                .u64("carried", carried.into())
                .u64("offset", offset);
        }
        Event::Issue {
            cycle,
            pos,
            node,
            unit,
        } => {
            o.u64("cycle", cycle)
                .u64("pos", pos.into())
                .u64("node", node.into())
                .u64("unit", unit.into());
        }
        Event::Stall {
            cycle,
            head,
            kind,
            cycles,
        } => {
            o.u64("cycle", cycle)
                .u64("head", head.into())
                .str("kind", kind.name())
                .u64("cycles", cycles);
        }
        Event::WindowOccupancy { cycle, occupancy } => {
            o.u64("cycle", cycle).u64("occupancy", occupancy.into());
        }
        Event::Counter { name, delta } => {
            o.str("name", name).u64("delta", delta);
        }
        Event::Diagnostic {
            severity,
            code,
            message,
        } => {
            o.str("severity", severity.name())
                .str("code", code)
                .str("message", message);
        }
        Event::CacheQuery {
            key,
            hit,
            shard,
            warm,
            span,
        } => {
            // `shard`/`warm` are omitted unless set, so private-cache
            // traces are byte-identical to the pre-sharding format.
            o.str("key", &format!("{key:032x}")).bool("hit", hit);
            if let Some(shard) = shard {
                o.u64("shard", shard.into());
            }
            if warm {
                o.bool("warm", true);
            }
            span_field = span;
        }
        Event::CacheEvict {
            key,
            resident,
            shard,
            span,
        } => {
            o.str("key", &format!("{key:032x}"))
                .u64("resident", resident);
            if let Some(shard) = shard {
                o.u64("shard", shard.into());
            }
            span_field = span;
        }
        Event::TaskDone {
            task,
            outcome,
            makespan,
            span,
        } => {
            o.u64("task", task.into())
                .str("outcome", outcome.name())
                .u64("makespan", makespan);
            span_field = span;
        }
        Event::ReqAccept { queue_depth } => {
            o.u64("queue_depth", queue_depth.into());
        }
        Event::ReqShed { queue_depth } => {
            o.u64("queue_depth", queue_depth.into());
        }
        Event::ReqDone {
            status,
            nanos,
            span,
        } => {
            o.u64("status", status.into()).u64("nanos", nanos);
            span_field = span;
        }
        Event::SpanStart { span, parent, name } => {
            o.u64("span", span)
                .opt_u64("parent", parent)
                .str("name", name);
        }
        Event::SpanEnd { span, nanos } => {
            o.u64("span", span).u64("nanos", nanos);
        }
    }
    if let Some(span) = span_field {
        o.u64("span", span);
    }
    o.finish()
}

impl<W: io::Write> Recorder for JsonlRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event<'_>) {
        let line = event_to_json(event);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.seq;
        inner.seq += 1;
        // Splice the seq in as the second field so every line carries a
        // stable ordinal even if writers interleave.
        let _ = writeln!(
            inner.writer,
            "{{\"seq\":{seq},{rest}",
            rest = &line[1..] // drop the '{' we re-open above
        );
    }

    fn flush(&self) -> io::Result<()> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .writer
            .flush()
    }
}

/// Fans every event out to both recorders; enabled if either is.
pub struct TeeRecorder<'a> {
    a: &'a dyn Recorder,
    b: &'a dyn Recorder,
}

impl<'a> TeeRecorder<'a> {
    /// Combine two recorders.
    pub fn new(a: &'a dyn Recorder, b: &'a dyn Recorder) -> Self {
        TeeRecorder { a, b }
    }
}

impl Recorder for TeeRecorder<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn record(&self, event: &Event<'_>) {
        if self.a.enabled() {
            self.a.record(event);
        }
        if self.b.enabled() {
            self.b.record(event);
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.a.flush()?;
        self.b.flush()
    }
}

/// Buffers owned clones of every event for later replay.
///
/// This is the engine's bridge between worker threads and the caller's
/// recorder: sinks like `ProfileRecorder` are single-threaded by
/// design, so each worker captures its task's events into its own
/// `BufferRecorder` and the engine replays the buffers into the real
/// sink sequentially, in deterministic input order. The buffer sits
/// behind a mutex so the type is `Sync`; within the engine each buffer
/// is only ever touched by one thread at a time, so the lock is
/// uncontended.
#[derive(Default)]
pub struct BufferRecorder {
    events: Mutex<Vec<OwnedEvent>>,
}

impl BufferRecorder {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the buffer, yielding the captured events in order.
    pub fn into_events(self) -> Vec<OwnedEvent> {
        self.events.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Replay a captured event sequence into another recorder.
    pub fn replay(events: &[OwnedEvent], rec: &dyn Recorder) {
        if !rec.enabled() {
            return;
        }
        for ev in events {
            rec.record(&ev.as_event());
        }
    }

    /// Replay a captured event sequence, attributing every attributable
    /// event that does not already carry a span to `span`.
    ///
    /// This is how the engine stamps worker-buffered pass/cache events
    /// with their task's span id at emit time, without the inner
    /// scheduling passes knowing about spans at all.
    pub fn replay_with_span(events: &[OwnedEvent], rec: &dyn Recorder, span: u64) {
        if !rec.enabled() {
            return;
        }
        for ev in events {
            rec.record(&ev.as_event().with_span(span));
        }
    }
}

impl Recorder for BufferRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event<'_>) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(OwnedEvent::from_event(event));
    }
}

/// Prints `Diagnostic` events to stderr (`warning:` / `error:` style)
/// and ignores everything else. The CLI binaries layer this under a
/// `TeeRecorder` so diagnostics reach both the terminal and any trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrDiagnostics;

impl Recorder for StderrDiagnostics {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event<'_>) {
        if let Event::Diagnostic {
            severity,
            code,
            message,
        } = *event
        {
            match severity {
                Severity::Info => eprintln!("info[{code}]: {message}"),
                Severity::Warning => eprintln!("warning[{code}]: {message}"),
                Severity::Error => eprintln!("error[{code}]: {message}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MergeRung, Pass, StallKind};

    #[test]
    fn null_is_disabled() {
        assert!(!NullRecorder.enabled());
        NullRecorder.record(&Event::PassBegin {
            pass: Pass::Merge,
            span: None,
        });
        NullRecorder.flush().unwrap();
    }

    #[test]
    fn jsonl_lines_carry_seq_and_tag() {
        let rec = JsonlRecorder::new(Vec::new());
        rec.record(&Event::MergeDone {
            rung: MergeRung::Paper,
            makespan: 7,
            relaxed: 2,
        });
        rec.record(&Event::Stall {
            cycle: 3,
            head: 1,
            kind: StallKind::DataWait,
            cycles: 4,
        });
        let out = String::from_utf8(rec.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"seq":0,"ev":"merge_done","rung":"paper","makespan":7,"relaxed":2}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":1,"ev":"stall","cycle":3,"head":1,"kind":"data_wait","cycles":4}"#
        );
    }

    #[test]
    fn tee_enabled_when_either_is() {
        let jsonl = JsonlRecorder::new(Vec::new());
        let tee = TeeRecorder::new(&NULL, &jsonl);
        assert!(tee.enabled());
        tee.record(&Event::Counter {
            name: "probes",
            delta: 1,
        });
        let out = String::from_utf8(jsonl.into_inner()).unwrap();
        assert!(out.contains(r#""ev":"counter""#));

        let tee = TeeRecorder::new(&NULL, &NULL);
        assert!(!tee.enabled());
    }

    #[test]
    fn buffer_captures_and_replays_in_order() {
        let buf = BufferRecorder::new();
        buf.record(&Event::PassBegin {
            pass: Pass::Engine,
            span: None,
        });
        buf.record(&Event::Diagnostic {
            severity: crate::event::Severity::Warning,
            code: "task_degraded",
            message: "merge failed",
        });
        buf.record(&Event::Counter {
            name: "steps",
            delta: 3,
        });
        let events = buf.into_events();
        assert_eq!(events.len(), 3);

        let jsonl = JsonlRecorder::new(Vec::new());
        BufferRecorder::replay(&events, &jsonl);
        let out = String::from_utf8(jsonl.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains(r#""ev":"pass_begin","pass":"engine""#));
        assert!(lines[1].contains(r#""code":"task_degraded""#));
        assert!(lines[2].contains(r#""name":"steps","delta":3"#));
    }

    #[test]
    fn engine_events_serialize() {
        assert_eq!(
            event_to_json(&Event::CacheQuery {
                key: 0xab,
                hit: true,
                shard: None,
                warm: false,
                span: None,
            }),
            r#"{"ev":"cache_query","key":"000000000000000000000000000000ab","hit":true}"#
        );
        assert_eq!(
            event_to_json(&Event::CacheEvict {
                key: 1,
                resident: 7,
                shard: None,
                span: None,
            }),
            r#"{"ev":"cache_evict","key":"00000000000000000000000000000001","resident":7}"#
        );
        assert_eq!(
            event_to_json(&Event::TaskDone {
                task: 4,
                outcome: crate::event::TaskOutcome::Degraded,
                makespan: 12,
                span: None,
            }),
            r#"{"ev":"task_done","task":4,"outcome":"degraded","makespan":12}"#
        );
    }

    #[test]
    fn sharded_cache_events_serialize() {
        assert_eq!(
            event_to_json(&Event::CacheQuery {
                key: 0xab,
                hit: true,
                shard: Some(3),
                warm: true,
                span: Some(2),
            }),
            r#"{"ev":"cache_query","key":"000000000000000000000000000000ab","hit":true,"shard":3,"warm":true,"span":2}"#
        );
        assert_eq!(
            event_to_json(&Event::CacheEvict {
                key: 1,
                resident: 7,
                shard: Some(0),
                span: None,
            }),
            r#"{"ev":"cache_evict","key":"00000000000000000000000000000001","resident":7,"shard":0}"#
        );
    }

    #[test]
    fn span_events_serialize() {
        assert_eq!(
            event_to_json(&Event::SpanStart {
                span: 3,
                parent: Some(1),
                name: "task",
            }),
            r#"{"ev":"span_start","span":3,"parent":1,"name":"task"}"#
        );
        assert_eq!(
            event_to_json(&Event::SpanStart {
                span: 1,
                parent: None,
                name: "request",
            }),
            r#"{"ev":"span_start","span":1,"parent":null,"name":"request"}"#
        );
        assert_eq!(
            event_to_json(&Event::SpanEnd { span: 3, nanos: 42 }),
            r#"{"ev":"span_end","span":3,"nanos":42}"#
        );
    }

    #[test]
    fn span_attribution_is_a_trailing_field() {
        assert_eq!(
            event_to_json(&Event::CacheQuery {
                key: 0xab,
                hit: false,
                shard: None,
                warm: false,
                span: Some(9),
            }),
            r#"{"ev":"cache_query","key":"000000000000000000000000000000ab","hit":false,"span":9}"#
        );
        assert_eq!(
            event_to_json(&Event::PassEnd {
                pass: Pass::Rank,
                nanos: 5,
                span: Some(2),
            }),
            r#"{"ev":"pass_end","pass":"rank","nanos":5,"span":2}"#
        );
    }

    #[test]
    fn replay_with_span_tags_untagged_events_only() {
        let buf = BufferRecorder::new();
        buf.record(&Event::PassBegin {
            pass: Pass::Rank,
            span: None,
        });
        buf.record(&Event::CacheQuery {
            key: 2,
            hit: true,
            shard: None,
            warm: false,
            span: Some(7),
        });
        buf.record(&Event::Counter {
            name: "probes",
            delta: 1,
        });
        let events = buf.into_events();

        let jsonl = JsonlRecorder::new(Vec::new());
        BufferRecorder::replay_with_span(&events, &jsonl, 11);
        let out = String::from_utf8(jsonl.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines[0].ends_with(r#""pass":"rank","span":11}"#),
            "untagged event gains the replay span: {}",
            lines[0]
        );
        assert!(
            lines[1].ends_with(r#""span":7}"#),
            "already-tagged event keeps its span: {}",
            lines[1]
        );
        assert!(
            !lines[2].contains("span"),
            "unattributable events stay span-free: {}",
            lines[2]
        );
    }
}
