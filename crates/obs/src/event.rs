//! The structured event vocabulary of the scheduling stack.
//!
//! Every observable decision the paper's algorithms make — where
//! `Delay_Idle_Slots` pushes an idle slot, what `merge` accepts or
//! rejects, how much suffix `chop` carries forward, when the W-entry
//! window stalls — is described by one [`Event`] variant. Events are
//! plain `Copy` data (numeric payloads plus borrowed strings), so
//! *constructing* one never allocates; recorders decide what to do with
//! them. The JSONL wire form of each variant is documented in
//! `docs/observability.md` and enforced by [`crate::schema`].

use std::fmt;

/// A named pass, for span timing and per-pass wall-clock aggregation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[non_exhaustive]
pub enum Pass {
    /// Whole-trace anticipatory scheduling (`Algorithm Lookahead`).
    ScheduleTrace,
    /// One rank computation + greedy list schedule.
    Rank,
    /// `Delay_Idle_Slots` over one block/suffix.
    DelayIdleSlots,
    /// Procedure `merge` for one block.
    Merge,
    /// Procedure `chop` for one block.
    Chop,
    /// The cycle-level window simulator.
    Simulate,
    /// Experiment or CLI driver work that is none of the above.
    Driver,
    /// A batch run of the parallel scheduling engine (`asched-engine`).
    Engine,
}

impl Pass {
    /// Stable lower-snake name used in JSONL and profile tables.
    pub fn name(self) -> &'static str {
        match self {
            Pass::ScheduleTrace => "schedule_trace",
            Pass::Rank => "rank",
            Pass::DelayIdleSlots => "delay_idle_slots",
            Pass::Merge => "merge",
            Pass::Chop => "chop",
            Pass::Simulate => "simulate",
            Pass::Driver => "driver",
            Pass::Engine => "engine",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which rung of `merge`'s fallback ladder produced the result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MergeRung {
    /// The paper's relaxation loop over `new` deadlines succeeded.
    Paper,
    /// Old nodes re-pinned to their stand-alone completions, then the
    /// relaxation loop succeeded.
    PinnedOld,
    /// The guaranteed-feasible concatenation (old, gap, new).
    Concatenation,
}

impl MergeRung {
    /// Stable lower-snake name used in JSONL.
    pub fn name(self) -> &'static str {
        match self {
            MergeRung::Paper => "paper",
            MergeRung::PinnedOld => "pinned_old",
            MergeRung::Concatenation => "concatenation",
        }
    }
}

/// Why the simulated window made no progress this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallKind {
    /// Every in-window instruction is waiting on operand latency.
    DataWait,
    /// The head (or an earlier in-window instruction) is ready but its
    /// functional unit is busy, and the issue policy refuses to let
    /// later instructions overtake it.
    HeadBlocked,
}

impl StallKind {
    /// Stable lower-snake name used in JSONL.
    pub fn name(self) -> &'static str {
        match self {
            StallKind::DataWait => "data_wait",
            StallKind::HeadBlocked => "head_blocked",
        }
    }
}

/// How one engine batch task was resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskOutcome {
    /// Algorithm `Lookahead` ran to completion.
    Scheduled,
    /// The result was served from the content-addressed schedule cache.
    Cached,
    /// `Lookahead` failed (error, panic or exhausted step budget) and
    /// the engine fell back to the per-block Rank schedule.
    Degraded,
    /// Even the fallback failed; the task produced no schedule.
    Failed,
}

impl TaskOutcome {
    /// Stable lower-snake name used in JSONL.
    pub fn name(self) -> &'static str {
        match self {
            TaskOutcome::Scheduled => "scheduled",
            TaskOutcome::Cached => "cached",
            TaskOutcome::Degraded => "degraded",
            TaskOutcome::Failed => "failed",
        }
    }
}

/// Diagnostic severity (CLI/driver messages routed through recorders).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational.
    Info,
    /// Something degraded but the run continues.
    Warning,
    /// The operation failed.
    Error,
}

impl Severity {
    /// Stable lower-snake name used in JSONL.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One structured observation. All payloads are `Copy`; string payloads
/// are borrowed, so building an event allocates nothing.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub enum Event<'a> {
    /// A timed pass begins.
    PassBegin {
        /// Which pass.
        pass: Pass,
        /// Enclosing span, when the pass is span-attributed.
        span: Option<u64>,
    },
    /// A timed pass ended after `nanos` wall-clock nanoseconds.
    PassEnd {
        /// Which pass.
        pass: Pass,
        /// Elapsed wall-clock nanoseconds.
        nanos: u64,
        /// Enclosing span, when the pass is span-attributed.
        span: Option<u64>,
    },
    /// One rank computation + greedy schedule finished.
    RankRun {
        /// Number of nodes in the scheduled mask.
        nodes: u32,
        /// Makespan of the greedy schedule (0 when infeasible).
        makespan: u64,
        /// Whether every deadline was met.
        feasible: bool,
    },
    /// `Move_Idle_Slot` attempted to delay one idle slot.
    IdleMove {
        /// Functional unit owning the slot.
        unit: u32,
        /// The slot's start cycle before the attempt.
        slot: u64,
        /// Where the slot landed (`None` = eliminated past the end);
        /// meaningless when `moved` is false.
        new_start: Option<u64>,
        /// Whether the slot moved (deadline edits kept) or the attempt
        /// was rolled back.
        moved: bool,
    },
    /// Algorithm `Lookahead` starts merging one block of the trace.
    BlockBegin {
        /// Block id in trace order.
        block: u32,
        /// Carried-over suffix size (`old`).
        carried: u32,
        /// Incoming block size (`new`).
        new_nodes: u32,
    },
    /// `merge` probed one relaxation amount of the `new` deadlines.
    MergeProbe {
        /// Relaxation added to every `new` deadline for this probe.
        delta: i64,
        /// Whether the rank schedule met the relaxed deadlines
        /// (accept) or missed them (reject).
        feasible: bool,
    },
    /// `merge` finished.
    MergeDone {
        /// Which fallback rung produced the schedule.
        rung: MergeRung,
        /// Makespan of the merged schedule.
        makespan: u64,
        /// Final relaxation of the `new` deadlines over the merged
        /// lower bound (rung `paper`/`pinned_old`; 0 otherwise).
        relaxed: i64,
    },
    /// `chop` cut (or declined to cut) the merged schedule.
    Chop {
        /// The cut cycle `t_j` (`None` = nothing emitted).
        cut: Option<u64>,
        /// Instructions emitted (`S⁻`).
        emitted: u32,
        /// Instructions carried forward (`S⁺`).
        carried: u32,
        /// How far the global clock advanced (`t_j + 1`, 0 if no cut).
        offset: u64,
    },
    /// The simulated window issued one instruction.
    Issue {
        /// Issue cycle.
        cycle: u64,
        /// Stream position.
        pos: u32,
        /// Node id.
        node: u32,
        /// Functional unit.
        unit: u32,
    },
    /// The simulated window made no progress for `cycles` cycles.
    Stall {
        /// First stalled cycle.
        cycle: u64,
        /// Stream position of the window head.
        head: u32,
        /// Why nothing issued.
        kind: StallKind,
        /// Consecutive stalled cycles covered by this event.
        cycles: u64,
    },
    /// Occupancy snapshot of the window at the start of a cycle.
    WindowOccupancy {
        /// Cycle.
        cycle: u64,
        /// Unissued instructions currently inside the W-entry window.
        occupancy: u32,
    },
    /// A named monotonic counter increment.
    Counter {
        /// Counter name (stable, lower-snake).
        name: &'a str,
        /// Increment.
        delta: u64,
    },
    /// A human-facing diagnostic routed through the recorder stack.
    Diagnostic {
        /// Severity.
        severity: Severity,
        /// Stable machine-readable code (e.g. `unknown_experiment`).
        code: &'a str,
        /// Human-readable message.
        message: &'a str,
    },
    /// The engine probed its schedule cache for one task.
    CacheQuery {
        /// Content-addressed task fingerprint (128-bit).
        key: u128,
        /// Whether a cached `TraceResult` was found.
        hit: bool,
        /// Shard the key maps to (`None` = private, unsharded cache).
        shard: Option<u32>,
        /// Whether the hit was served by an entry loaded from an
        /// on-disk cache file (warm-start) rather than computed by
        /// this process. Always `false` on a miss.
        warm: bool,
        /// The task span this query belongs to, when tracing spans.
        span: Option<u64>,
    },
    /// The engine's FIFO cache evicted an entry to make room.
    CacheEvict {
        /// Fingerprint of the evicted entry.
        key: u128,
        /// Entries resident after the eviction — within the evicting
        /// shard for a sharded cache, cache-wide otherwise.
        resident: u64,
        /// Shard the eviction happened in (`None` = private cache).
        /// Always the shard of the *inserted* key: an insert only ever
        /// evicts within its own shard.
        shard: Option<u32>,
        /// The task span whose admission caused the eviction.
        span: Option<u64>,
    },
    /// One engine batch task finished (in deterministic input order).
    TaskDone {
        /// Task index within the batch.
        task: u32,
        /// How the task was resolved.
        outcome: TaskOutcome,
        /// Makespan of the produced schedule (0 when `failed`).
        makespan: u64,
        /// The task's span, when tracing spans.
        span: Option<u64>,
    },
    /// The scheduling service accepted a connection into its queue.
    ReqAccept {
        /// Queue depth right after the connection was enqueued.
        queue_depth: u32,
    },
    /// The scheduling service shed a connection (queue full): the
    /// client was answered `503` with a `Retry-After` header.
    ReqShed {
        /// Queue depth at the moment of shedding (the full capacity).
        queue_depth: u32,
    },
    /// The scheduling service finished one request.
    ReqDone {
        /// HTTP status code of the response.
        status: u32,
        /// Wall-clock nanoseconds from accept to response written.
        nanos: u64,
        /// The request's root span, when tracing spans.
        span: Option<u64>,
    },
    /// A span opened: a named interval of work begins.
    SpanStart {
        /// The span's id (sequential per trace, never 0).
        span: u64,
        /// Parent span (`None`/null = a root span).
        parent: Option<u64>,
        /// What the span covers (`request`, `queue`, `read`, `handle`,
        /// `write`, `engine`, `task`, ...).
        name: &'a str,
    },
    /// A span closed after `nanos` wall-clock nanoseconds.
    SpanEnd {
        /// The span's id.
        span: u64,
        /// Elapsed wall-clock nanoseconds inside the span.
        nanos: u64,
    },
}

impl Event<'_> {
    /// The stable `"ev"` tag of this variant in the JSONL schema.
    pub fn name(&self) -> &'static str {
        match self {
            Event::PassBegin { .. } => "pass_begin",
            Event::PassEnd { .. } => "pass_end",
            Event::RankRun { .. } => "rank_run",
            Event::IdleMove { .. } => "idle_move",
            Event::BlockBegin { .. } => "block_begin",
            Event::MergeProbe { .. } => "merge_probe",
            Event::MergeDone { .. } => "merge_done",
            Event::Chop { .. } => "chop",
            Event::Issue { .. } => "issue",
            Event::Stall { .. } => "stall",
            Event::WindowOccupancy { .. } => "window_occupancy",
            Event::Counter { .. } => "counter",
            Event::Diagnostic { .. } => "diagnostic",
            Event::CacheQuery { .. } => "cache_query",
            Event::CacheEvict { .. } => "cache_evict",
            Event::TaskDone { .. } => "task_done",
            Event::ReqAccept { .. } => "req_accept",
            Event::ReqShed { .. } => "req_shed",
            Event::ReqDone { .. } => "req_done",
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
        }
    }

    /// This event attributed to `span`, when the variant carries a span
    /// field that is still unset. Variants without span attribution
    /// (and events already attributed) are returned unchanged — the
    /// engine uses this to tag a worker's buffered events with the task
    /// span that is only allocated later, in the deterministic emit
    /// phase.
    pub fn with_span(self, span: u64) -> Self {
        match self {
            Event::PassBegin { pass, span: None } => Event::PassBegin {
                pass,
                span: Some(span),
            },
            Event::PassEnd {
                pass,
                nanos,
                span: None,
            } => Event::PassEnd {
                pass,
                nanos,
                span: Some(span),
            },
            Event::CacheQuery {
                key,
                hit,
                shard,
                warm,
                span: None,
            } => Event::CacheQuery {
                key,
                hit,
                shard,
                warm,
                span: Some(span),
            },
            Event::CacheEvict {
                key,
                resident,
                shard,
                span: None,
            } => Event::CacheEvict {
                key,
                resident,
                shard,
                span: Some(span),
            },
            Event::TaskDone {
                task,
                outcome,
                makespan,
                span: None,
            } => Event::TaskDone {
                task,
                outcome,
                makespan,
                span: Some(span),
            },
            Event::ReqDone {
                status,
                nanos,
                span: None,
            } => Event::ReqDone {
                status,
                nanos,
                span: Some(span),
            },
            other => other,
        }
    }
}

/// An owned (`'static`) clone of an [`Event`], for buffering.
///
/// Worker threads cannot share a `&dyn Recorder` (sinks such as
/// [`crate::ProfileRecorder`] are deliberately single-threaded), so the
/// engine captures each task's events into a buffer of `OwnedEvent`s
/// and replays them into the real recorder afterwards, in input order.
/// Only the string-carrying variants differ from [`Event`]: their
/// payloads are owned `String`s.
#[derive(Clone, Debug)]
pub enum OwnedEvent {
    /// Owned form of [`Event::Counter`].
    Counter {
        /// Counter name.
        name: String,
        /// Increment.
        delta: u64,
    },
    /// Owned form of [`Event::Diagnostic`].
    Diagnostic {
        /// Severity.
        severity: Severity,
        /// Machine-readable code.
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// Owned form of [`Event::SpanStart`].
    SpanStart {
        /// Span id.
        span: u64,
        /// Parent span.
        parent: Option<u64>,
        /// Span name.
        name: String,
    },
    /// Any `Copy` variant, stored as-is with its borrowed-string
    /// variants unreachable (they are covered above).
    Plain(Event<'static>),
}

impl OwnedEvent {
    /// Clone a borrowed event into an owned one.
    pub fn from_event(ev: &Event<'_>) -> Self {
        match *ev {
            Event::Counter { name, delta } => OwnedEvent::Counter {
                name: name.to_owned(),
                delta,
            },
            Event::Diagnostic {
                severity,
                code,
                message,
            } => OwnedEvent::Diagnostic {
                severity,
                code: code.to_owned(),
                message: message.to_owned(),
            },
            Event::SpanStart { span, parent, name } => OwnedEvent::SpanStart {
                span,
                parent,
                name: name.to_owned(),
            },
            Event::PassBegin { pass, span } => OwnedEvent::Plain(Event::PassBegin { pass, span }),
            Event::PassEnd { pass, nanos, span } => {
                OwnedEvent::Plain(Event::PassEnd { pass, nanos, span })
            }
            Event::RankRun {
                nodes,
                makespan,
                feasible,
            } => OwnedEvent::Plain(Event::RankRun {
                nodes,
                makespan,
                feasible,
            }),
            Event::IdleMove {
                unit,
                slot,
                new_start,
                moved,
            } => OwnedEvent::Plain(Event::IdleMove {
                unit,
                slot,
                new_start,
                moved,
            }),
            Event::BlockBegin {
                block,
                carried,
                new_nodes,
            } => OwnedEvent::Plain(Event::BlockBegin {
                block,
                carried,
                new_nodes,
            }),
            Event::MergeProbe { delta, feasible } => {
                OwnedEvent::Plain(Event::MergeProbe { delta, feasible })
            }
            Event::MergeDone {
                rung,
                makespan,
                relaxed,
            } => OwnedEvent::Plain(Event::MergeDone {
                rung,
                makespan,
                relaxed,
            }),
            Event::Chop {
                cut,
                emitted,
                carried,
                offset,
            } => OwnedEvent::Plain(Event::Chop {
                cut,
                emitted,
                carried,
                offset,
            }),
            Event::Issue {
                cycle,
                pos,
                node,
                unit,
            } => OwnedEvent::Plain(Event::Issue {
                cycle,
                pos,
                node,
                unit,
            }),
            Event::Stall {
                cycle,
                head,
                kind,
                cycles,
            } => OwnedEvent::Plain(Event::Stall {
                cycle,
                head,
                kind,
                cycles,
            }),
            Event::WindowOccupancy { cycle, occupancy } => {
                OwnedEvent::Plain(Event::WindowOccupancy { cycle, occupancy })
            }
            Event::CacheQuery {
                key,
                hit,
                shard,
                warm,
                span,
            } => OwnedEvent::Plain(Event::CacheQuery {
                key,
                hit,
                shard,
                warm,
                span,
            }),
            Event::CacheEvict {
                key,
                resident,
                shard,
                span,
            } => OwnedEvent::Plain(Event::CacheEvict {
                key,
                resident,
                shard,
                span,
            }),
            Event::TaskDone {
                task,
                outcome,
                makespan,
                span,
            } => OwnedEvent::Plain(Event::TaskDone {
                task,
                outcome,
                makespan,
                span,
            }),
            Event::ReqAccept { queue_depth } => OwnedEvent::Plain(Event::ReqAccept { queue_depth }),
            Event::ReqShed { queue_depth } => OwnedEvent::Plain(Event::ReqShed { queue_depth }),
            Event::ReqDone {
                status,
                nanos,
                span,
            } => OwnedEvent::Plain(Event::ReqDone {
                status,
                nanos,
                span,
            }),
            Event::SpanEnd { span, nanos } => OwnedEvent::Plain(Event::SpanEnd { span, nanos }),
        }
    }

    /// Re-borrow this owned event as an [`Event`].
    pub fn as_event(&self) -> Event<'_> {
        match self {
            OwnedEvent::Counter { name, delta } => Event::Counter {
                name,
                delta: *delta,
            },
            OwnedEvent::Diagnostic {
                severity,
                code,
                message,
            } => Event::Diagnostic {
                severity: *severity,
                code,
                message,
            },
            OwnedEvent::SpanStart { span, parent, name } => Event::SpanStart {
                span: *span,
                parent: *parent,
                name,
            },
            OwnedEvent::Plain(ev) => *ev,
        }
    }
}
