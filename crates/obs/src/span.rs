//! Span identity: correlating events with the request/task that
//! caused them.
//!
//! A **span** is a named interval of work with an identity (`SpanId`),
//! an optional parent span, and a measured duration. Spans turn the
//! flat event stream into a forest: the serving tier opens one root
//! span per request (`"request"`), with children for each phase
//! (`"queue"`, `"read"`, `"handle"`, `"write"`); the batch engine opens
//! an `"engine"` span per batch with one `"task"` span per task; and
//! every attributable event (`pass_end`, `cache_query`, `task_done`,
//! `req_done`, ...) may carry a `span` field naming the span it
//! happened inside. Nothing here reads a wall clock into the *identity*
//! of a span — ids are sequential per allocator — so traces stay
//! byte-deterministic modulo `nanos` payloads.
//!
//! Allocation discipline: span ids must never be allocated on a
//! timing-dependent path when determinism matters. The engine allocates
//! all of its ids in the sequential emit phase; the server allocates
//! per worker as requests are picked up (server traces are inherently
//! interleaved and make no byte-determinism promise).

use std::sync::atomic::{AtomicU64, Ordering};

/// A span identifier. `0` is reserved as "no span" and is never
/// allocated, so `Option<SpanId>`-as-`u64` encodings stay unambiguous.
pub type SpanId = u64;

/// Allocator of sequential span ids, starting at 1.
///
/// Thread-safe (a bare atomic) so one allocator can be shared across a
/// server's worker pool; deterministic consumers must nonetheless call
/// [`SpanAlloc::next`] from a deterministic (sequential) phase.
#[derive(Debug)]
pub struct SpanAlloc {
    next: AtomicU64,
}

impl Default for SpanAlloc {
    fn default() -> Self {
        SpanAlloc::new()
    }
}

impl SpanAlloc {
    /// A fresh allocator; the first id handed out is 1.
    pub fn new() -> Self {
        SpanAlloc {
            next: AtomicU64::new(1),
        }
    }

    /// Allocate the next span id.
    pub fn next(&self) -> SpanId {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

/// Where a traced sub-computation should hang its spans: the allocator
/// to draw ids from and the parent span (if any) to attach them to.
///
/// This is how a span-aware caller (the server's request handler, the
/// repro driver) threads span context into the batch engine without the
/// engine knowing anything about requests.
#[derive(Clone, Copy, Debug)]
pub struct SpanScope<'a> {
    /// Allocator shared by every span of one trace.
    pub alloc: &'a SpanAlloc,
    /// Parent span for spans opened under this scope (`None` = roots).
    pub parent: Option<SpanId>,
}

impl<'a> SpanScope<'a> {
    /// A root scope over `alloc`.
    pub fn root(alloc: &'a SpanAlloc) -> Self {
        SpanScope {
            alloc,
            parent: None,
        }
    }

    /// The same allocator, re-parented under `span`.
    pub fn child_of(self, span: SpanId) -> Self {
        SpanScope {
            alloc: self.alloc,
            parent: Some(span),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_from_one() {
        let alloc = SpanAlloc::new();
        assert_eq!(alloc.next(), 1);
        assert_eq!(alloc.next(), 2);
        let scope = SpanScope::root(&alloc);
        assert_eq!(scope.parent, None);
        let child = scope.child_of(2);
        assert_eq!(child.parent, Some(2));
        assert_eq!(child.alloc.next(), 3);
    }
}
