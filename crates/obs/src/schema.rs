//! Validation of the JSONL trace schema.
//!
//! Each trace line is a flat JSON object with a `"seq"` ordinal and an
//! `"ev"` tag naming one of the [`crate::event::Event`] variants; the
//! remaining required fields depend on the tag. The validator here
//! contains a deliberately small flat-object JSON parser (the build
//! environment has no serde) — enough to check traces in tests and for
//! downstream tools to trust the documented schema.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed flat JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// true / false.
    Bool(bool),
    /// Any JSON number (kept as f64; trace numbers fit exactly or are
    /// only range-checked).
    Num(f64),
    /// A string.
    Str(String),
}

/// Why a line failed validation.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // field names are self-describing
pub enum SchemaError {
    /// The line is not a flat JSON object.
    Parse(String),
    /// No `"ev"` field or it is not a string.
    MissingTag,
    /// `"ev"` names no known event.
    UnknownTag(String),
    /// A required field is absent.
    MissingField { ev: String, field: &'static str },
    /// A field has the wrong JSON type.
    WrongType {
        ev: String,
        field: &'static str,
        want: &'static str,
    },
    /// A string field holds a value outside its enumeration.
    BadEnum {
        ev: String,
        field: &'static str,
        got: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Parse(m) => write!(f, "not a flat JSON object: {m}"),
            SchemaError::MissingTag => write!(f, "missing string field \"ev\""),
            SchemaError::UnknownTag(t) => write!(f, "unknown event tag {t:?}"),
            SchemaError::MissingField { ev, field } => {
                write!(f, "{ev}: missing field {field:?}")
            }
            SchemaError::WrongType { ev, field, want } => {
                write!(f, "{ev}: field {field:?} must be {want}")
            }
            SchemaError::BadEnum { ev, field, got } => {
                write!(f, "{ev}: field {field:?} has unknown value {got:?}")
            }
        }
    }
}

/// Parse one flat JSON object (no nesting, no arrays — the trace schema
/// is flat by design).
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Value>, SchemaError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(SchemaError::Parse("expected ',' or '}'".into())),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(SchemaError::Parse("trailing bytes after object".into()));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }
    fn expect(&mut self, b: u8) -> Result<(), SchemaError> {
        if self.next() == Some(b) {
            Ok(())
        } else {
            Err(SchemaError::Parse(format!("expected {:?}", b as char)))
        }
    }
    fn string(&mut self) -> Result<String, SchemaError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                None => return Err(SchemaError::Parse("unterminated string".into())),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .ok_or_else(|| SchemaError::Parse("truncated \\u escape".into()))?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| SchemaError::Parse("bad \\u escape".into()))?;
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(SchemaError::Parse("bad escape".into())),
                },
                Some(b) if b < 0x20 => {
                    return Err(SchemaError::Parse("raw control char in string".into()))
                }
                Some(b) => {
                    // Re-assemble UTF-8 sequences byte-wise.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return Err(SchemaError::Parse("truncated UTF-8".into()));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| SchemaError::Parse("invalid UTF-8".into()))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }
    fn value(&mut self) -> Result<Value, SchemaError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                text.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| SchemaError::Parse(format!("bad number {text:?}")))
            }
            _ => Err(SchemaError::Parse("expected a value".into())),
        }
    }
    fn literal(&mut self, word: &str, v: Value) -> Result<Value, SchemaError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(SchemaError::Parse(format!("expected literal {word:?}")))
        }
    }
}

/// Field requirement kinds for the per-tag tables below.
enum Need {
    U,
    I,
    B,
    S,
    OptU,
    Enum(&'static [&'static str]),
}

const PASSES: &[&str] = &[
    "schedule_trace",
    "rank",
    "delay_idle_slots",
    "merge",
    "chop",
    "simulate",
    "driver",
    "engine",
];
const RUNGS: &[&str] = &["paper", "pinned_old", "concatenation"];
const STALLS: &[&str] = &["data_wait", "head_blocked"];
const SEVERITIES: &[&str] = &["info", "warning", "error"];
const OUTCOMES: &[&str] = &["scheduled", "cached", "degraded", "failed"];

fn requirements(ev: &str) -> Option<&'static [(&'static str, Need)]> {
    Some(match ev {
        "pass_begin" => &[("pass", Need::Enum(PASSES))],
        "pass_end" => &[("pass", Need::Enum(PASSES)), ("nanos", Need::U)],
        "rank_run" => &[
            ("nodes", Need::U),
            ("makespan", Need::U),
            ("feasible", Need::B),
        ],
        "idle_move" => &[
            ("unit", Need::U),
            ("slot", Need::U),
            ("new_start", Need::OptU),
            ("moved", Need::B),
        ],
        "block_begin" => &[
            ("block", Need::U),
            ("carried", Need::U),
            ("new_nodes", Need::U),
        ],
        "merge_probe" => &[("delta", Need::I), ("feasible", Need::B)],
        "merge_done" => &[
            ("rung", Need::Enum(RUNGS)),
            ("makespan", Need::U),
            ("relaxed", Need::I),
        ],
        "chop" => &[
            ("cut", Need::OptU),
            ("emitted", Need::U),
            ("carried", Need::U),
            ("offset", Need::U),
        ],
        "issue" => &[
            ("cycle", Need::U),
            ("pos", Need::U),
            ("node", Need::U),
            ("unit", Need::U),
        ],
        "stall" => &[
            ("cycle", Need::U),
            ("head", Need::U),
            ("kind", Need::Enum(STALLS)),
            ("cycles", Need::U),
        ],
        "window_occupancy" => &[("cycle", Need::U), ("occupancy", Need::U)],
        "counter" => &[("name", Need::S), ("delta", Need::U)],
        "diagnostic" => &[
            ("severity", Need::Enum(SEVERITIES)),
            ("code", Need::S),
            ("message", Need::S),
        ],
        "cache_query" => &[("key", Need::S), ("hit", Need::B)],
        "cache_evict" => &[("key", Need::S), ("resident", Need::U)],
        "task_done" => &[
            ("task", Need::U),
            ("outcome", Need::Enum(OUTCOMES)),
            ("makespan", Need::U),
        ],
        "req_accept" => &[("queue_depth", Need::U)],
        "req_shed" => &[("queue_depth", Need::U)],
        "req_done" => &[("status", Need::U), ("nanos", Need::U)],
        "span_start" => &[("span", Need::U), ("parent", Need::OptU), ("name", Need::S)],
        "span_end" => &[("span", Need::U), ("nanos", Need::U)],
        _ => return None,
    })
}

/// Validate one trace line against the schema. Returns the parsed
/// object (with its `"ev"` tag) on success so callers can assert on
/// payloads without re-parsing.
pub fn validate_line(line: &str) -> Result<BTreeMap<String, Value>, SchemaError> {
    let map = parse_flat_object(line)?;
    let ev = match map.get("ev") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err(SchemaError::MissingTag),
    };
    let reqs = requirements(&ev).ok_or_else(|| SchemaError::UnknownTag(ev.clone()))?;
    for &(field, ref need) in reqs {
        let value = map.get(field).ok_or(SchemaError::MissingField {
            ev: ev.clone(),
            field,
        })?;
        let ok = match need {
            Need::U => matches!(value, Value::Num(n) if *n >= 0.0 && n.fract() == 0.0),
            Need::I => matches!(value, Value::Num(n) if n.fract() == 0.0),
            Need::B => matches!(value, Value::Bool(_)),
            Need::S => matches!(value, Value::Str(_)),
            Need::OptU => {
                matches!(value, Value::Null)
                    || matches!(value, Value::Num(n) if *n >= 0.0 && n.fract() == 0.0)
            }
            Need::Enum(allowed) => match value {
                Value::Str(s) => {
                    if !allowed.contains(&s.as_str()) {
                        return Err(SchemaError::BadEnum {
                            ev,
                            field,
                            got: s.clone(),
                        });
                    }
                    true
                }
                _ => false,
            },
        };
        if !ok {
            let want = match need {
                Need::U => "a non-negative integer",
                Need::I => "an integer",
                Need::B => "a boolean",
                Need::S => "a string",
                Need::OptU => "a non-negative integer or null",
                Need::Enum(_) => "a string",
            };
            return Err(SchemaError::WrongType { ev, field, want });
        }
    }
    // Span ids are allocated from 1 (0 is the reserved "no span"
    // sentinel), so wherever a `"span"` field appears — as the identity
    // of a span_start/span_end or as optional attribution on another
    // event — it must be a positive integer.
    if let Some(value) = map.get("span") {
        if !matches!(value, Value::Num(n) if *n >= 1.0 && n.fract() == 0.0) {
            return Err(SchemaError::WrongType {
                ev,
                field: "span",
                want: "a positive integer",
            });
        }
    }
    // Shared-cache attribution is optional (private-cache traces omit
    // it) but typed when present: `"shard"` is a non-negative integer
    // and `"warm"` a boolean, and both belong to cache events only.
    if let Some(value) = map.get("shard") {
        if !(ev == "cache_query" || ev == "cache_evict")
            || !matches!(value, Value::Num(n) if *n >= 0.0 && n.fract() == 0.0)
        {
            return Err(SchemaError::WrongType {
                ev,
                field: "shard",
                want: "a non-negative integer on a cache event",
            });
        }
    }
    if let Some(value) = map.get("warm") {
        if ev != "cache_query" || !matches!(value, Value::Bool(_)) {
            return Err(SchemaError::WrongType {
                ev,
                field: "warm",
                want: "a boolean on cache_query",
            });
        }
    }
    Ok(map)
}

/// Validate every non-empty line of a JSONL document; returns the tag
/// sequence on success and `(line_number, error)` on the first failure.
pub fn validate_document(text: &str) -> Result<Vec<String>, (usize, SchemaError)> {
    let mut tags = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let map = validate_line(line).map_err(|e| (i + 1, e))?;
        if let Some(Value::Str(tag)) = map.get("ev") {
            tags.push(tag.clone());
        }
    }
    Ok(tags)
}

/// A span-consistency violation found by [`check_spans`].
#[derive(Clone, Debug, PartialEq)]
pub enum SpanError {
    /// The same span id was started twice.
    DuplicateStart(u64),
    /// A span names itself as its parent.
    SelfParent(u64),
    /// A `span_start` references a parent that was never started
    /// earlier in the document (the "mismatched span/parent pair").
    UnknownParent {
        /// Span being started.
        span: u64,
        /// The parent id it claims, which is unknown at this point.
        parent: u64,
    },
    /// A `span_end` for a span id that was never started.
    EndWithoutStart(u64),
    /// A span was ended twice.
    DoubleEnd(u64),
}

impl fmt::Display for SpanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanError::DuplicateStart(s) => write!(f, "span {s} started twice"),
            SpanError::SelfParent(s) => write!(f, "span {s} is its own parent"),
            SpanError::UnknownParent { span, parent } => {
                write!(f, "span {span} references unknown parent {parent}")
            }
            SpanError::EndWithoutStart(s) => write!(f, "span {s} ended but never started"),
            SpanError::DoubleEnd(s) => write!(f, "span {s} ended twice"),
        }
    }
}

/// Summary returned by a clean [`check_spans`] pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanReport {
    /// How many spans were started.
    pub started: usize,
    /// How many spans were ended.
    pub ended: usize,
    /// Span ids started but never ended, in start order. A complete
    /// trace has none; a trace truncated mid-run legitimately may.
    pub unclosed: Vec<u64>,
}

/// Check the span discipline of a JSONL document: every `span_start`
/// has a unique id, parents refer to previously started spans, and
/// every `span_end` closes an open span exactly once.
///
/// Lines that fail to parse as flat objects are skipped — run
/// [`validate_document`] first for schema errors; this pass only
/// checks cross-line span consistency. Returns `(line_number, error)`
/// on the first violation.
pub fn check_spans(text: &str) -> Result<SpanReport, (usize, SpanError)> {
    // Span state: started (known id) and whether it has ended.
    let mut ended: BTreeMap<u64, bool> = BTreeMap::new();
    let mut report = SpanReport::default();
    let mut start_order = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let map = match parse_flat_object(line.trim()) {
            Ok(m) => m,
            Err(_) => continue,
        };
        let tag = match map.get("ev") {
            Some(Value::Str(s)) => s.as_str(),
            _ => continue,
        };
        let num = |field: &str| -> Option<u64> {
            match map.get(field) {
                Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        };
        match tag {
            "span_start" => {
                let Some(span) = num("span") else { continue };
                if ended.contains_key(&span) {
                    return Err((lineno, SpanError::DuplicateStart(span)));
                }
                if let Some(parent) = num("parent") {
                    if parent == span {
                        return Err((lineno, SpanError::SelfParent(span)));
                    }
                    if !ended.contains_key(&parent) {
                        return Err((lineno, SpanError::UnknownParent { span, parent }));
                    }
                }
                ended.insert(span, false);
                start_order.push(span);
                report.started += 1;
            }
            "span_end" => {
                let Some(span) = num("span") else { continue };
                match ended.get_mut(&span) {
                    None => return Err((lineno, SpanError::EndWithoutStart(span))),
                    Some(true) => return Err((lineno, SpanError::DoubleEnd(span))),
                    Some(done) => {
                        *done = true;
                        report.ended += 1;
                    }
                }
            }
            _ => {}
        }
    }
    report.unclosed = start_order
        .into_iter()
        .filter(|s| ended.get(s) == Some(&false))
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, MergeRung, Pass, Severity, StallKind, TaskOutcome};
    use crate::recorder::event_to_json;

    #[test]
    fn every_event_variant_round_trips() {
        let events = [
            Event::PassBegin {
                pass: Pass::Merge,
                span: None,
            },
            Event::PassEnd {
                pass: Pass::Simulate,
                nanos: 123,
                span: None,
            },
            Event::PassEnd {
                pass: Pass::Rank,
                nanos: 55,
                span: Some(3),
            },
            Event::RankRun {
                nodes: 4,
                makespan: 9,
                feasible: true,
            },
            Event::IdleMove {
                unit: 0,
                slot: 3,
                new_start: Some(5),
                moved: true,
            },
            Event::IdleMove {
                unit: 1,
                slot: 0,
                new_start: None,
                moved: false,
            },
            Event::BlockBegin {
                block: 2,
                carried: 1,
                new_nodes: 8,
            },
            Event::MergeProbe {
                delta: -1,
                feasible: false,
            },
            Event::MergeDone {
                rung: MergeRung::Concatenation,
                makespan: 11,
                relaxed: 0,
            },
            Event::Chop {
                cut: Some(6),
                emitted: 5,
                carried: 2,
                offset: 7,
            },
            Event::Chop {
                cut: None,
                emitted: 0,
                carried: 7,
                offset: 0,
            },
            Event::Issue {
                cycle: 1,
                pos: 0,
                node: 3,
                unit: 1,
            },
            Event::Stall {
                cycle: 2,
                head: 1,
                kind: StallKind::HeadBlocked,
                cycles: 3,
            },
            Event::WindowOccupancy {
                cycle: 0,
                occupancy: 4,
            },
            Event::Counter {
                name: "probes",
                delta: 2,
            },
            Event::Diagnostic {
                severity: Severity::Error,
                code: "unknown_experiment",
                message: "no such \"id\"",
            },
            Event::CacheQuery {
                key: u128::MAX,
                hit: false,
                shard: None,
                warm: false,
                span: None,
            },
            Event::CacheQuery {
                key: 7,
                hit: true,
                shard: Some(5),
                warm: true,
                span: Some(2),
            },
            Event::CacheEvict {
                key: 0xdead_beef,
                resident: 255,
                shard: None,
                span: None,
            },
            Event::CacheEvict {
                key: 0xdead_beef,
                resident: 3,
                shard: Some(0),
                span: None,
            },
            Event::TaskDone {
                task: 17,
                outcome: TaskOutcome::Cached,
                makespan: 42,
                span: Some(4),
            },
            Event::ReqAccept { queue_depth: 3 },
            Event::ReqShed { queue_depth: 64 },
            Event::ReqDone {
                status: 200,
                nanos: 1_234_567,
                span: Some(1),
            },
            Event::SpanStart {
                span: 1,
                parent: None,
                name: "request",
            },
            Event::SpanStart {
                span: 2,
                parent: Some(1),
                name: "engine",
            },
            Event::SpanEnd { span: 2, nanos: 99 },
        ];
        for ev in &events {
            let line = event_to_json(ev);
            let map = validate_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(map.get("ev"), Some(&Value::Str(ev.name().to_string())));
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            validate_line("not json"),
            Err(SchemaError::Parse(_))
        ));
        assert!(matches!(
            validate_line(r#"{"x":1}"#),
            Err(SchemaError::MissingTag)
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"nope"}"#),
            Err(SchemaError::UnknownTag(_))
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"issue","cycle":1}"#),
            Err(SchemaError::MissingField { .. })
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"stall","cycle":1,"head":0,"kind":"nap","cycles":2}"#),
            Err(SchemaError::BadEnum { .. })
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"issue","cycle":-1,"pos":0,"node":0,"unit":0}"#),
            Err(SchemaError::WrongType { .. })
        ));
    }

    #[test]
    fn document_collects_tags() {
        let doc = "\
{\"seq\":0,\"ev\":\"pass_begin\",\"pass\":\"merge\"}\n\
\n\
{\"seq\":1,\"ev\":\"pass_end\",\"pass\":\"merge\",\"nanos\":5}\n";
        assert_eq!(
            validate_document(doc).unwrap(),
            vec!["pass_begin", "pass_end"]
        );
        let bad = "{\"ev\":\"chop\"}\n";
        assert_eq!(validate_document(bad).unwrap_err().0, 1);
    }

    #[test]
    fn rejects_bad_span_fields() {
        // Span id 0 is the reserved "no span" sentinel.
        assert!(matches!(
            validate_line(r#"{"ev":"span_start","span":0,"parent":null,"name":"x"}"#),
            Err(SchemaError::WrongType { field: "span", .. })
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"span_end","span":1.5,"nanos":2}"#),
            Err(SchemaError::WrongType { field: "span", .. })
        ));
        // Optional attribution must still be a positive integer.
        assert!(matches!(
            validate_line(r#"{"ev":"cache_query","key":"00","hit":true,"span":0}"#),
            Err(SchemaError::WrongType { field: "span", .. })
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"span_start","span":3,"name":"x"}"#),
            Err(SchemaError::MissingField { .. })
        ));
        // Shared-cache attribution is optional but typed and scoped.
        assert!(matches!(
            validate_line(r#"{"ev":"cache_query","key":"00","hit":true,"shard":-1}"#),
            Err(SchemaError::WrongType { field: "shard", .. })
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"cache_query","key":"00","hit":true,"warm":1}"#),
            Err(SchemaError::WrongType { field: "warm", .. })
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"counter","name":"x","delta":1,"shard":0}"#),
            Err(SchemaError::WrongType { field: "shard", .. })
        ));
        assert!(matches!(
            validate_line(r#"{"ev":"cache_evict","key":"00","resident":1,"warm":true}"#),
            Err(SchemaError::WrongType { field: "warm", .. })
        ));
        assert!(validate_line(r#"{"ev":"cache_evict","key":"00","resident":1,"shard":2}"#).is_ok());
    }

    #[test]
    fn span_checker_accepts_well_formed_forests() {
        let doc = "\
{\"seq\":0,\"ev\":\"span_start\",\"span\":1,\"parent\":null,\"name\":\"request\"}\n\
{\"seq\":1,\"ev\":\"span_start\",\"span\":2,\"parent\":1,\"name\":\"engine\"}\n\
{\"seq\":2,\"ev\":\"span_end\",\"span\":2,\"nanos\":10}\n\
{\"seq\":3,\"ev\":\"span_end\",\"span\":1,\"nanos\":20}\n\
{\"seq\":4,\"ev\":\"span_start\",\"span\":3,\"parent\":null,\"name\":\"request\"}\n";
        let report = check_spans(doc).unwrap();
        assert_eq!(report.started, 3);
        assert_eq!(report.ended, 2);
        assert_eq!(report.unclosed, vec![3]);
    }

    #[test]
    fn span_checker_rejects_mismatched_pairs() {
        let unknown_parent =
            "{\"ev\":\"span_start\",\"span\":2,\"parent\":9,\"name\":\"engine\"}\n";
        assert_eq!(
            check_spans(unknown_parent).unwrap_err(),
            (1, SpanError::UnknownParent { span: 2, parent: 9 })
        );

        let self_parent = "{\"ev\":\"span_start\",\"span\":2,\"parent\":2,\"name\":\"x\"}\n";
        assert_eq!(
            check_spans(self_parent).unwrap_err(),
            (1, SpanError::SelfParent(2))
        );

        let dup = "\
{\"ev\":\"span_start\",\"span\":1,\"parent\":null,\"name\":\"a\"}\n\
{\"ev\":\"span_start\",\"span\":1,\"parent\":null,\"name\":\"b\"}\n";
        assert_eq!(
            check_spans(dup).unwrap_err(),
            (2, SpanError::DuplicateStart(1))
        );

        let orphan_end = "{\"ev\":\"span_end\",\"span\":5,\"nanos\":1}\n";
        assert_eq!(
            check_spans(orphan_end).unwrap_err(),
            (1, SpanError::EndWithoutStart(5))
        );

        let double_end = "\
{\"ev\":\"span_start\",\"span\":1,\"parent\":null,\"name\":\"a\"}\n\
{\"ev\":\"span_end\",\"span\":1,\"nanos\":1}\n\
{\"ev\":\"span_end\",\"span\":1,\"nanos\":2}\n";
        assert_eq!(
            check_spans(double_end).unwrap_err(),
            (3, SpanError::DoubleEnd(1))
        );
    }
}
