//! A minimal JSON writer (no serde in the hermetic build environment).
//!
//! Emits one flat object per call site; values are numbers, booleans,
//! strings and nulls — all the JSONL schema needs.

use std::fmt::Write;

/// Builder for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start a new object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
        self
    }

    /// Add a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a signed integer field.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field (finite values only; NaN/inf become null).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add an optional unsigned field (`None` → JSON null).
    pub fn opt_u64(&mut self, key: &str, value: Option<u64>) -> &mut Self {
        match value {
            Some(v) => self.u64(key, v),
            None => {
                self.key(key);
                self.buf.push_str("null");
                self
            }
        }
    }

    /// Add a pre-rendered JSON value verbatim (caller guarantees
    /// validity — used to nest objects built by other builders).
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Close and return the rendered object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escape `s` into `out` per JSON string rules.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_renders() {
        let mut o = JsonObject::new();
        o.str("ev", "chop")
            .u64("emitted", 5)
            .i64("delta", -2)
            .bool("ok", true);
        o.opt_u64("cut", None).f64("mean", 1.5);
        assert_eq!(
            o.finish(),
            r#"{"ev":"chop","emitted":5,"delta":-2,"ok":true,"cut":null,"mean":1.5}"#
        );
    }

    #[test]
    fn strings_escape() {
        let mut o = JsonObject::new();
        o.str("m", "a\"b\\c\nd\u{1}");
        let want = String::from(r#"{"m":"a\"b\\c\nd"#) + "\\u0001\"}";
        assert_eq!(o.finish(), want);
    }
}
