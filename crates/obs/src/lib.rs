//! # asched-obs — observability for the anticipatory scheduling stack
//!
//! Structured tracing, pass profiling and cycle-level event logs for
//! the Sarkar–Simons scheduling pipeline. Three layers:
//!
//! * **Events** ([`event::Event`]): `Copy` descriptions of every
//!   observable decision — rank runs, idle-slot moves, `merge`
//!   probes/acceptances, `chop` cuts, window issues and stalls.
//! * **Recorders** ([`recorder::Recorder`]): sinks. [`NullRecorder`]
//!   (the default) reports `enabled() == false`, so instrumented code
//!   never even constructs events; [`JsonlRecorder`] writes the
//!   documented JSONL schema; [`ProfileRecorder`] aggregates into a
//!   [`RunProfile`]; [`TeeRecorder`] composes them.
//! * **Profiles** ([`profile::RunProfile`]): counters + histograms +
//!   per-pass wall-clock, renderable as text (`--profile`) or JSON
//!   (bench reports, `BENCH_*.json`).
//!
//! Instrumented call sites look like:
//!
//! ```
//! use asched_obs::{record, Event, Recorder, NullRecorder};
//! fn hot_loop(rec: &dyn Recorder) {
//!     for cycle in 0..4u64 {
//!         record!(rec, Event::WindowOccupancy { cycle, occupancy: 2 });
//!     }
//! }
//! hot_loop(&NullRecorder); // no event is ever constructed
//! ```
//!
//! The JSONL wire format is documented in `docs/observability.md` and
//! machine-checked by [`schema::validate_line`].

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod profile;
pub mod recorder;
pub mod schema;
pub mod span;

pub use event::{Event, MergeRung, OwnedEvent, Pass, Severity, StallKind, TaskOutcome};
pub use profile::{Histogram, ProfileRecorder, RunProfile};
pub use recorder::{
    event_to_json, BufferRecorder, JsonlRecorder, NullRecorder, Recorder, StderrDiagnostics,
    TeeRecorder, NULL,
};
pub use span::{SpanAlloc, SpanId, SpanScope};

/// Record an event only when the recorder is enabled.
///
/// The event expression is **not evaluated** when the recorder is
/// disabled, which is what makes the default [`NullRecorder`] path
/// free: no construction, no formatting, no allocation.
#[macro_export]
macro_rules! record {
    ($rec:expr, $event:expr) => {
        if $crate::Recorder::enabled($rec) {
            $crate::Recorder::record($rec, &$event);
        }
    };
}

/// Time `f` as one invocation of `pass`, emitting `PassBegin`/`PassEnd`
/// events around it. When the recorder is disabled the closure runs
/// bare — no clock reads, no events.
pub fn timed<T>(rec: &dyn Recorder, pass: Pass, f: impl FnOnce() -> T) -> T {
    timed_span(rec, pass, None, f)
}

/// [`timed`], attributing the emitted `PassBegin`/`PassEnd` events to
/// `span` (if any). Pass instrumentation sites thread
/// `SchedOpts::span` through here so span-aware callers get
/// request-correlated pass timings; with `span: None` the wire format
/// is byte-identical to the historical un-attributed form.
pub fn timed_span<T>(
    rec: &dyn Recorder,
    pass: Pass,
    span: Option<SpanId>,
    f: impl FnOnce() -> T,
) -> T {
    if !rec.enabled() {
        return f();
    }
    rec.record(&Event::PassBegin { pass, span });
    let start = std::time::Instant::now();
    let out = f();
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    rec.record(&Event::PassEnd { pass, nanos, span });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_macro_skips_construction_when_disabled() {
        let mut constructed = false;
        let rec: &dyn Recorder = &NullRecorder;
        record!(rec, {
            constructed = true;
            Event::Counter {
                name: "x",
                delta: 1,
            }
        });
        assert!(!constructed, "event expression ran for a disabled recorder");

        let profile = ProfileRecorder::new();
        let rec: &dyn Recorder = &profile;
        record!(rec, {
            constructed = true;
            Event::Counter {
                name: "x",
                delta: 1,
            }
        });
        assert!(constructed);
        assert_eq!(profile.into_profile().counter("x"), 1);
    }

    #[test]
    fn timed_skips_clock_when_disabled() {
        let out = timed(&NullRecorder, Pass::Rank, || 41 + 1);
        assert_eq!(out, 42);

        let profile = ProfileRecorder::new();
        let out = timed(&profile, Pass::Rank, || 7);
        assert_eq!(out, 7);
        let p = profile.into_profile();
        assert_eq!(p.pass_calls.get("rank"), Some(&1));
    }
}
