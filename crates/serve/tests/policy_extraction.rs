//! Proof that extracting [`AdmissionPolicy`] and [`DeadlinePolicy`]
//! out of the server's request path changed *nothing*.
//!
//! Each test carries a reference implementation transcribed verbatim
//! from the pre-extraction inline code in `server.rs` (the shed branch
//! of `Shared::accept_loop` and the deadline block of
//! `handle_schedule`). Both implementations are run over a decision
//! corpus — hand-picked edge cases plus a seeded random sweep — and
//! every decision is rendered to a canonical string and compared byte
//! for byte. If a future "cleanup" of the policy module shifts a
//! boundary (`>=` vs `>`, `min` vs `max`, a changed error message),
//! these tests name the exact corpus entry that diverged.

use asched_serve::{Admission, AdmissionPolicy, DeadlinePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Reference implementations: the pre-extraction inline logic, verbatim.
// ---------------------------------------------------------------------

/// `server.rs` accept loop, before extraction:
/// ```text
/// if q.len() >= self.cfg.queue_capacity.max(1) { shed(stream, q.len()) }
/// else { q.push_back(stream) }
/// ```
/// with the shed response hard-coding `Retry-After: 1`.
fn reference_admit(queue_capacity: usize, queue_len: usize) -> String {
    if queue_len >= queue_capacity.max(1) {
        format!("shed depth={queue_len} retry_after=1")
    } else {
        format!("accept depth={}", queue_len + 1)
    }
}

/// `handle_schedule`, before extraction: header tightening, elapsed
/// charge, and the per-task budget floor of 1.
fn reference_deadline(
    default_deadline_ms: u64,
    steps_per_ms: u64,
    header: Option<&str>,
    elapsed_ms: u64,
    tasks: usize,
) -> String {
    let deadline_ms = match header {
        None => default_deadline_ms,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => ms.min(default_deadline_ms),
            Err(_) => {
                return format!(
                    "error 400 bad_deadline X-Asched-Deadline-Ms must be an integer, got {v:?}"
                )
            }
        },
    };
    let remaining_ms = deadline_ms.saturating_sub(elapsed_ms);
    let per_task_budget = (remaining_ms * steps_per_ms / tasks.max(1) as u64).max(1);
    format!("deadline={deadline_ms} remaining={remaining_ms} budget={per_task_budget}")
}

// ---------------------------------------------------------------------
// The extracted policies, rendered through the same canonical strings.
// ---------------------------------------------------------------------

fn policy_admit(queue_capacity: usize, queue_len: usize) -> String {
    match (AdmissionPolicy { queue_capacity }).admit(queue_len) {
        Admission::Accept { depth } => format!("accept depth={depth}"),
        Admission::Shed {
            queue_depth,
            retry_after_secs,
        } => format!("shed depth={queue_depth} retry_after={retry_after_secs}"),
    }
}

fn policy_deadline(
    default_deadline_ms: u64,
    steps_per_ms: u64,
    header: Option<&str>,
    elapsed_ms: u64,
    tasks: usize,
) -> String {
    let p = DeadlinePolicy {
        default_deadline_ms,
        steps_per_ms,
    };
    match p.effective_deadline_ms(header) {
        Err(e) => format!("error 400 bad_deadline {e}"),
        Ok(deadline_ms) => {
            let remaining_ms = p.remaining_ms(deadline_ms, elapsed_ms);
            let budget = p.per_task_step_budget(remaining_ms, tasks);
            format!("deadline={deadline_ms} remaining={remaining_ms} budget={budget}")
        }
    }
}

// ---------------------------------------------------------------------
// Corpora.
// ---------------------------------------------------------------------

#[test]
fn admission_matches_pre_extraction_on_edge_corpus() {
    let capacities = [0usize, 1, 2, 3, 15, 16, 17, 63, 64, 65, 1024, usize::MAX];
    let lens = [0usize, 1, 2, 3, 15, 16, 17, 63, 64, 65, 1023, 1024, 1025];
    for &cap in &capacities {
        for &len in &lens {
            assert_eq!(
                policy_admit(cap, len),
                reference_admit(cap, len),
                "cap={cap} len={len}"
            );
        }
    }
    // The exact boundary around every capacity: len = cap-1, cap, cap+1.
    for cap in 0usize..=130 {
        for len in cap.saturating_sub(1)..=cap + 1 {
            assert_eq!(
                policy_admit(cap, len),
                reference_admit(cap, len),
                "cap={cap} len={len}"
            );
        }
    }
}

#[test]
fn admission_matches_pre_extraction_on_random_corpus() {
    let mut rng = StdRng::seed_from_u64(0x5eed_ad31);
    for i in 0..20_000 {
        let cap = rng.gen_range(0..256usize);
        let len = rng.gen_range(0..512usize);
        assert_eq!(
            policy_admit(cap, len),
            reference_admit(cap, len),
            "corpus entry {i}: cap={cap} len={len}"
        );
    }
}

#[test]
fn deadline_matches_pre_extraction_on_edge_corpus() {
    let headers: [Option<&str>; 18] = [
        None,
        Some("0"),
        Some("1"),
        Some("500"),
        Some("1999"),
        Some("2000"),
        Some("2001"),
        Some("9999"),
        Some("18446744073709551615"), // u64::MAX parses
        Some("18446744073709551616"), // overflow → parse error
        Some("007"),                  // leading zeros parse
        Some("+5"),                   // u64::from_str accepts a leading '+'
        Some(""),
        Some("soon"),
        Some("-1"),
        Some("1.5"),
        Some(" 500"),
        Some("500 "),
    ];
    let defaults = [0u64, 1, 5, 2_000, 60_000];
    let rates = [0u64, 1, 10, 100];
    let elapsed = [0u64, 1, 150, 1_999, 2_000, 2_001, 10_000];
    let tasks = [0usize, 1, 2, 5, 511, 512];
    for &d in &defaults {
        for &r in &rates {
            for h in &headers {
                for &e in &elapsed {
                    for &t in &tasks {
                        assert_eq!(
                            policy_deadline(d, r, *h, e, t),
                            reference_deadline(d, r, *h, e, t),
                            "default={d} rate={r} header={h:?} elapsed={e} tasks={t}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn deadline_matches_pre_extraction_on_random_corpus() {
    let mut rng = StdRng::seed_from_u64(0xdead_11e5);
    for i in 0..20_000 {
        let default_ms = rng.gen_range(0..10_000u64);
        let steps_per_ms = rng.gen_range(0..1_000u64);
        let elapsed = rng.gen_range(0..20_000u64);
        let tasks = rng.gen_range(0..600usize);
        // A third each: absent header, numeric header, garbage header.
        let header_buf;
        let header: Option<&str> = match rng.gen_range(0..3u32) {
            0 => None,
            1 => {
                header_buf = format!("{}", rng.gen_range(0..20_000u64));
                Some(&header_buf)
            }
            _ => {
                header_buf = format!("x{}", rng.gen_range(0..100u32));
                Some(&header_buf)
            }
        };
        assert_eq!(
            policy_deadline(default_ms, steps_per_ms, header, elapsed, tasks),
            reference_deadline(default_ms, steps_per_ms, header, elapsed, tasks),
            "corpus entry {i}"
        );
    }
}
