//! End-to-end tests against a real server on an ephemeral port.
//!
//! Each test starts its own [`Server`] on `127.0.0.1:0` and talks to
//! it over real sockets with the crate's blocking client. The overload
//! and drain tests use the documented `debug_delay_ms` hook to park
//! the (single) worker deterministically while the accept queue fills.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use asched_obs::NullRecorder;
use asched_serve::{http_request, ClientResponse, Server, ServerConfig, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(10);

fn start(cfg: ServerConfig) -> ServerHandle {
    Server::start(cfg, Arc::new(NullRecorder)).expect("bind ephemeral port")
}

fn post_schedule(addr: SocketAddr, body: &str, headers: &[(&str, &str)]) -> ClientResponse {
    http_request(
        addr,
        "POST",
        "/v1/schedule",
        headers,
        body.as_bytes(),
        TIMEOUT,
    )
    .expect("request must complete")
}

#[test]
fn schedules_healthz_and_metrics() {
    let h = start(ServerConfig::default());
    let addr = h.addr();

    let ok = post_schedule(addr, "dag nodes=16 blocks=2 seed=7 w=4\n", &[]);
    assert_eq!(ok.status, 200, "{}", ok.text());
    let body = ok.text();
    assert!(body.contains(r#""schema":"asched-serve-v1""#), "{body}");
    assert!(body.contains(r#""outcome":"scheduled""#), "{body}");

    // IR form of the same endpoint.
    let ir = "trace {\n block A {\n  li gr1 = 5\n  add gr2 = gr1, gr1\n }\n}\n";
    let ok = post_schedule(addr, ir, &[("X-Asched-Format", "ir")]);
    assert_eq!(ok.status, 200, "{}", ok.text());
    assert!(ok.text().contains(r#""label":"ir:w4""#), "{}", ok.text());

    let health = http_request(addr, "GET", "/healthz", &[], b"", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains(r#""draining":false"#));

    let metrics = http_request(addr, "GET", "/metrics", &[], b"", TIMEOUT).unwrap();
    assert_eq!(metrics.status, 200);
    let m = metrics.text();
    assert!(m.contains(r#""schema":"asched-serve-metrics-v1""#), "{m}");
    // The requests above are visible. (Exact counts race with the
    // accept thread's event emission, so parse and bound instead.)
    let accepted: u64 = m
        .split(r#""accepted":"#)
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.parse().ok())
        .expect("accepted counter present");
    assert!(accepted >= 3, "{m}");

    let missing = http_request(addr, "GET", "/nope", &[], b"", TIMEOUT).unwrap();
    assert_eq!(missing.status, 404);
    let wrong = http_request(addr, "GET", "/v1/schedule", &[], b"", TIMEOUT).unwrap();
    assert_eq!(wrong.status, 405);
}

#[test]
fn malformed_bodies_get_400() {
    let h = start(ServerConfig::default());
    let addr = h.addr();
    for (body, headers) in [
        ("dag nodes=banana w=2\n", &[][..]),
        ("", &[]),
        (
            "loop {\n block A {\n li gr1 = 1\n }\n}",
            &[("X-Asched-Format", "ir")],
        ),
        ("this is not anything\n", &[]),
        ("dag nodes=8 w=2\n", &[("X-Asched-Format", "csv")]),
    ] {
        let resp = post_schedule(addr, body, headers);
        assert_eq!(resp.status, 400, "{body:?} → {}", resp.text());
        assert!(resp.text().contains(r#""error":"#), "{}", resp.text());
    }
    // A raw non-HTTP byte stream is answered 400, not dropped.
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 400 "), "{out}");
}

#[test]
fn queue_full_sheds_503_with_retry_after() {
    // One worker parked 400ms per request, queue of 1: the first
    // request occupies the worker, the second waits in the queue, and
    // everything beyond that must shed immediately.
    let h = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        debug_delay_ms: 400,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    let body = "dag nodes=8 seed=1 w=2\n";

    let results: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| scope.spawn(move || post_schedule(addr, body, &[])))
            .collect();
        handles.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let ok = results.iter().filter(|r| r.status == 200).count();
    let shed = results.iter().filter(|r| r.status == 503).count();
    assert_eq!(ok + shed, 6, "only 200s and 503s expected");
    // Worker + queue can absorb at most 2-3 before the first finishes.
    assert!(shed >= 2, "expected shedding, got {ok} ok / {shed} shed");
    for r in results.iter().filter(|r| r.status == 503) {
        assert_eq!(r.header("retry-after"), Some("1"), "{}", r.text());
        assert!(r.text().contains(r#""error":"overloaded""#), "{}", r.text());
    }
    assert_eq!(h.metrics().shed(), shed as u64);
}

#[test]
fn closed_loop_honors_retry_after_against_shed_heavy_server() {
    // Queue of 1 with a single worker parked 150ms per request: a
    // 4-client closed loop must shed on most first attempts. The load
    // generator's contract is to honor the server's Retry-After (1s,
    // from AdmissionPolicy::retry_after_secs) — so every 503-triggered
    // retry contributes at least a second of recorded backoff, and no
    // request is ever abandoned.
    let h = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        debug_delay_ms: 150,
        ..ServerConfig::default()
    });
    let bodies = asched_serve::synth_request_bodies(8, 11);
    let report = asched_serve::run_closed_loop(h.addr(), &bodies, 4, None, TIMEOUT);

    assert_eq!(report.sent, 8);
    assert_eq!(
        report.ok, 8,
        "closed loop must retry every shed to completion"
    );
    assert_eq!(report.dropped, 0);
    assert_eq!(report.hard_5xx(), 0);
    assert!(report.retries > 0, "queue=1 with 4 clients must shed");
    // Retry-After: 1 honored on every retry — the recorded backoff can
    // not be smaller than one second per retry. (The pre-fix behavior
    // slept 5-40ms, two orders of magnitude off.)
    assert!(
        report.retry_backoff_ms >= report.retries * 1_000,
        "backoff {}ms for {} retries ignores Retry-After",
        report.retry_backoff_ms,
        report.retries
    );
    // And the waits are real, not just accounted: a retried request's
    // end-to-end latency includes the 1s backoff.
    assert!(
        report.latency_us.max().unwrap_or(0) >= 1_000_000,
        "no request shows the 1s retry wait"
    );
}

#[test]
fn exceeded_deadline_degrades_but_stays_valid() {
    let h = start(ServerConfig::default());
    let addr = h.addr();
    // Deadline 0: the step budget collapses to its floor of one step,
    // which no non-trivial trace fits — the scheduler must fall back,
    // flag it, and still return a complete valid schedule.
    let resp = post_schedule(
        addr,
        "dag nodes=32 blocks=4 seed=3 w=4\n",
        &[("X-Asched-Deadline-Ms", "0")],
    );
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body = resp.text();
    assert_eq!(resp.header("x-asched-degraded"), Some("1"), "{body}");
    assert!(body.contains(r#""degraded":1"#), "{body}");
    assert!(body.contains(r#""outcome":"degraded""#), "{body}");
    // Degraded is not failed: the fallback schedule is present.
    assert!(body.contains(r#""makespan":"#), "{body}");
    assert!(!body.contains(r#""blocks":null"#), "{body}");

    // A bogus deadline header is a client error, not a default.
    let resp = post_schedule(
        addr,
        "dag nodes=8 w=2\n",
        &[("X-Asched-Deadline-Ms", "soon")],
    );
    assert_eq!(resp.status, 400);
}

#[test]
fn graceful_drain_finishes_in_flight_then_refuses() {
    let h = start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        debug_delay_ms: 300,
        ..ServerConfig::default()
    });
    let addr = h.addr();

    // Park one request in the worker, then drain while it is in flight.
    let in_flight =
        std::thread::spawn(move || post_schedule(addr, "dag nodes=8 seed=1 w=2\n", &[]));
    std::thread::sleep(Duration::from_millis(100));
    let drained = http_request(addr, "POST", "/admin/drain", &[], b"", TIMEOUT);
    // The drain request itself is accepted-then-served or refused
    // depending on where the accept loop is; both are fine — drain()
    // below is idempotent and covers the refused case.
    h.drain();
    assert!(h.is_draining());

    let resp = in_flight.join().unwrap();
    assert_eq!(
        resp.status,
        200,
        "in-flight request must finish: {}",
        resp.text()
    );
    if let Ok(d) = drained {
        assert!(d.status == 200 || d.status == 503, "drain → {}", d.status);
    }

    let metrics = h.metrics();
    h.shutdown();
    // After shutdown the port refuses (or resets) new connections.
    let refused = http_request(
        addr,
        "GET",
        "/healthz",
        &[],
        b"",
        Duration::from_millis(500),
    );
    assert!(refused.is_err() || refused.unwrap().status == 503);
    assert!(metrics.done() >= 1);
}

#[test]
fn metrics_render_as_prometheus_exposition() {
    let h = start(ServerConfig::default());
    let addr = h.addr();
    for i in 0..3 {
        let ok = post_schedule(addr, &format!("dag nodes=16 blocks=2 seed={i} w=4\n"), &[]);
        assert_eq!(ok.status, 200, "{}", ok.text());
    }

    let resp = http_request(addr, "GET", "/metrics?format=prometheus", &[], b"", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "{}",
        resp.text()
    );
    let body = resp.text();
    let samples = asched_serve::validate_exposition(&body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
    assert!(samples > 10, "suspiciously small exposition:\n{body}");
    assert!(
        body.contains("# TYPE asched_requests_done_total counter"),
        "{body}"
    );
    assert!(
        body.contains("# TYPE asched_request_duration_seconds histogram"),
        "{body}"
    );
    assert!(
        body.contains("asched_request_duration_seconds_bucket{le=\"+Inf\"}"),
        "{body}"
    );
    // Three schedules went through one engine's cache → per-worker rows.
    assert!(
        body.contains("asched_worker_cache_hits_total{worker="),
        "{body}"
    );
    assert!(
        body.contains("asched_worker_cache_hit_rate{worker="),
        "{body}"
    );

    // JSON stays the default; unknown formats are a client error.
    let json = http_request(addr, "GET", "/metrics", &[], b"", TIMEOUT).unwrap();
    assert!(json.text().starts_with('{'), "{}", json.text());
    assert!(json.text().contains(r#""workers":["#), "{}", json.text());
    let bad = http_request(addr, "GET", "/metrics?format=xml", &[], b"", TIMEOUT).unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("bad_format"), "{}", bad.text());
}

#[test]
fn flight_recorder_replays_recent_requests() {
    // One worker: each summary is pushed before the worker picks up
    // the next connection, so the ring's contents are deterministic.
    let h = start(ServerConfig {
        workers: 1,
        flight_capacity: 2,
        ..ServerConfig::default()
    });
    let addr = h.addr();
    for i in 0..3 {
        let ok = post_schedule(addr, &format!("dag nodes=8 seed={i} w=2\n"), &[]);
        assert_eq!(ok.status, 200, "{}", ok.text());
    }

    let resp = http_request(addr, "GET", "/admin/flight", &[], b"", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.text();
    assert!(body.contains(r#""schema":"asched-flight-v1""#), "{body}");
    assert!(body.contains(r#""capacity":2"#), "{body}");
    // Ring of 2 after 3 requests: total 3, resident 2, newest first.
    assert!(body.contains(r#""total":3"#), "{body}");
    assert!(body.contains(r#""resident":2"#), "{body}");
    assert!(body.contains(r#""seq":3"#), "{body}");
    assert!(
        !body.contains(r#""seq":1"#),
        "oldest must be evicted: {body}"
    );
    assert!(body.contains(r#""path":"/v1/schedule""#), "{body}");
    assert!(body.contains(r#""tasks":1"#), "{body}");
    // Every summary joins to a trace via a nonzero root span id.
    assert!(!body.contains(r#""span":0"#), "{body}");

    let wrong = http_request(addr, "POST", "/admin/flight", &[], b"", TIMEOUT).unwrap();
    assert_eq!(wrong.status, 405);
}

#[test]
fn cache_file_warm_starts_across_restart() {
    let path = std::env::temp_dir().join(format!("asched-e2e-warm-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = ServerConfig {
        workers: 2,
        cache_file: Some(path.clone()),
        ..ServerConfig::default()
    };

    // Cold server: schedule a few bodies, each lands in the shared
    // cache and is appended to the cache file.
    let h = start(cfg.clone());
    let addr = h.addr();
    for i in 0..4 {
        let ok = post_schedule(addr, &format!("dag nodes=16 blocks=2 seed={i} w=4\n"), &[]);
        assert_eq!(ok.status, 200, "{}", ok.text());
        assert!(
            ok.text().contains(r#""outcome":"scheduled""#),
            "cold run must compute"
        );
    }
    let m = http_request(addr, "GET", "/metrics", &[], b"", TIMEOUT)
        .unwrap()
        .text();
    assert!(m.contains(r#""shared_cache":"#), "{m}");
    assert!(m.contains(r#""persisted":4"#), "{m}");
    assert!(m.contains(r#""loaded":0"#), "{m}");
    h.shutdown();

    // Restarted server: the same bodies are warm hits on the *first*
    // request — no worker has computed anything yet in this process.
    let h = start(cfg);
    let addr = h.addr();
    for i in 0..4 {
        let ok = post_schedule(addr, &format!("dag nodes=16 blocks=2 seed={i} w=4\n"), &[]);
        assert_eq!(ok.status, 200, "{}", ok.text());
        assert!(
            ok.text().contains(r#""outcome":"cached""#),
            "restart must serve from the warm-started cache: {}",
            ok.text()
        );
    }
    let m = http_request(addr, "GET", "/metrics", &[], b"", TIMEOUT)
        .unwrap()
        .text();
    assert!(m.contains(r#""loaded":4"#), "{m}");
    assert!(m.contains(r#""warm_hits":4"#), "{m}");
    h.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn oversized_body_gets_413() {
    let h = start(ServerConfig {
        max_body_bytes: 64,
        ..ServerConfig::default()
    });
    let big = "dag nodes=8 w=2\n".repeat(16);
    let resp = post_schedule(h.addr(), &big, &[]);
    assert_eq!(resp.status, 413, "{}", resp.text());
}

#[test]
fn batch_cap_applies() {
    let h = start(ServerConfig {
        max_tasks_per_request: 2,
        ..ServerConfig::default()
    });
    let resp = post_schedule(
        h.addr(),
        "dag nodes=8 seed=1 w=2\ndag nodes=8 seed=2 w=2\ndag nodes=8 seed=3 w=2\n",
        &[],
    );
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("too_many_tasks"), "{}", resp.text());
}
