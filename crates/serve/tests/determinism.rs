//! Concurrency determinism: the service must be a pure function of the
//! request body, no matter how requests interleave across workers.
//!
//! The same 200-trace corpus is pushed through a 2-worker server by 8
//! closed-loop clients, and each response's `tasks` payload is compared
//! **byte for byte** against a local single-threaded
//! `Engine::run_batch` reference rendered through the same
//! [`task_json`] serializer. The server runs with its schedule cache
//! off so outcome labels (`scheduled` vs `cached`) cannot depend on
//! which worker saw a duplicate first — makespans and orders are
//! cache-invariant, but the label is not, and byte equality is the
//! whole point here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use asched_engine::{parse_manifest, Engine, EngineConfig};
use asched_obs::{NullRecorder, NULL};
use asched_serve::{
    http_request, synth_request_bodies, task_json, CacheMode, Server, ServerConfig,
};

const TIMEOUT: Duration = Duration::from_secs(30);

/// The `"tasks":[...]` payload of a `/v1/schedule` response body. The
/// surrounding envelope carries the (time-dependent) step budget, so
/// equality is asserted on the payload only.
fn tasks_payload(body: &str) -> &str {
    let start = body.find(r#""tasks":"#).expect("tasks field");
    &body[start..body.len() - 1]
}

#[test]
fn eight_clients_match_single_threaded_reference() {
    let bodies = synth_request_bodies(200, 1234);

    // Local ground truth: one engine, one thread, no cache.
    let engine = Engine::new(EngineConfig {
        jobs: 1,
        cache: false,
        ..EngineConfig::default()
    });
    let expected: Vec<String> = bodies
        .iter()
        .map(|body| {
            let tasks = parse_manifest(body).expect(body);
            let report = engine.run_batch(&tasks, &NULL);
            let rendered: Vec<String> = report.tasks.iter().map(task_json).collect();
            format!("\"tasks\":[{}]", rendered.join(","))
        })
        .collect();

    let server = Server::start(
        ServerConfig {
            workers: 2,
            cache_capacity: 0, // outcome labels must not depend on interleaving
            deadline_ms: 60_000,
            ..ServerConfig::default()
        },
        Arc::new(NullRecorder),
    )
    .expect("bind");
    let addr = server.addr();

    let next = AtomicUsize::new(0);
    let got: Mutex<BTreeMap<usize, String>> = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let next = &next;
            let got = &got;
            let bodies = &bodies;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(body) = bodies.get(i) else { break };
                // Closed loop with shed retry: correctness may not
                // depend on load either.
                let resp = loop {
                    let resp =
                        http_request(addr, "POST", "/v1/schedule", &[], body.as_bytes(), TIMEOUT)
                            .expect("no dropped connections");
                    if resp.status != 503 {
                        break resp;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                };
                assert_eq!(resp.status, 200, "{body:?} → {}", resp.text());
                let text = resp.text();
                got.lock()
                    .unwrap()
                    .insert(i, tasks_payload(&text).to_string());
            });
        }
    });

    let got = got.into_inner().unwrap();
    assert_eq!(got.len(), bodies.len());
    for (i, expect) in expected.iter().enumerate() {
        assert_eq!(
            &got[&i], expect,
            "response {i} for {:?} diverged from the single-threaded reference",
            bodies[i],
        );
    }
    server.shutdown();
}

/// Fire a corpus at the server from 8 closed-loop clients and collect
/// the `tasks` payload of every response, indexed by corpus position.
fn blast(addr: std::net::SocketAddr, bodies: &[String]) -> BTreeMap<usize, String> {
    let next = AtomicUsize::new(0);
    let got: Mutex<BTreeMap<usize, String>> = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let next = &next;
            let got = &got;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(body) = bodies.get(i) else { break };
                let resp = loop {
                    let resp =
                        http_request(addr, "POST", "/v1/schedule", &[], body.as_bytes(), TIMEOUT)
                            .expect("no dropped connections");
                    if resp.status != 503 {
                        break resp;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                };
                assert_eq!(resp.status, 200, "{body:?} → {}", resp.text());
                let text = resp.text();
                got.lock()
                    .unwrap()
                    .insert(i, tasks_payload(&text).to_string());
            });
        }
    });
    got.into_inner().unwrap()
}

/// Workers sharing one process-wide cache stay byte-deterministic once
/// the corpus is duplicate-free: phase 1 (cold cache) must match the
/// no-cache reference exactly — every response `"scheduled"` — and
/// phase 2 (same corpus again) must match a `"cached"`-label reference,
/// because by then every fingerprint is resident in the shared cache no
/// matter which worker computed it. With per-worker private caches
/// phase 2 would be interleaving-dependent (a worker that never saw a
/// body in phase 1 would recompute); the shared cache removes exactly
/// that nondeterminism.
#[test]
fn shared_cache_is_deterministic_across_interleavings() {
    // Duplicate-free corpus, small enough to fit the pooled cache
    // (2 workers × 256 = 512 slots ≥ 120 entries → no evictions).
    let bodies: Vec<String> = (0..120)
        .map(|i| format!("prog blocks=3 insts=9 seed={i} w=4\n"))
        .collect();

    // Reference A: cold results (no cache → "scheduled" labels).
    let cold_engine = Engine::new(EngineConfig {
        jobs: 1,
        cache: false,
        ..EngineConfig::default()
    });
    // Reference B: warm results — run each body twice through a
    // private-cache engine and keep the second report ("cached" labels,
    // same makespans and orders).
    let warm_engine = Engine::new(EngineConfig {
        jobs: 1,
        cache: true,
        cache_capacity: 512,
        ..EngineConfig::default()
    });
    let mut expect_cold = Vec::new();
    let mut expect_warm = Vec::new();
    for body in &bodies {
        let tasks = parse_manifest(body).expect(body);
        let render = |report: asched_engine::BatchReport| {
            let rendered: Vec<String> = report.tasks.iter().map(task_json).collect();
            format!("\"tasks\":[{}]", rendered.join(","))
        };
        expect_cold.push(render(cold_engine.run_batch(&tasks, &NULL)));
        warm_engine.run_batch(&tasks, &NULL);
        expect_warm.push(render(warm_engine.run_batch(&tasks, &NULL)));
    }

    let server = Server::start(
        ServerConfig {
            workers: 2,
            cache_mode: CacheMode::Shared,
            cache_capacity: 256,
            deadline_ms: 60_000,
            ..ServerConfig::default()
        },
        Arc::new(NullRecorder),
    )
    .expect("bind");
    let addr = server.addr();

    // Phase 1: every response is a cold miss regardless of which worker
    // serves it — the corpus has no duplicates.
    let phase1 = blast(addr, &bodies);
    assert_eq!(phase1.len(), bodies.len());
    for (i, expect) in expect_cold.iter().enumerate() {
        assert_eq!(&phase1[&i], expect, "phase 1 response {i} diverged");
    }

    // Phase 2: every fingerprint is now resident in the shared cache,
    // so every response is a warm hit regardless of interleaving.
    let phase2 = blast(addr, &bodies);
    assert_eq!(phase2.len(), bodies.len());
    for (i, expect) in expect_warm.iter().enumerate() {
        assert_eq!(&phase2[&i], expect, "phase 2 response {i} diverged");
    }

    server.shutdown();
}
