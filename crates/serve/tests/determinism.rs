//! Concurrency determinism: the service must be a pure function of the
//! request body, no matter how requests interleave across workers.
//!
//! The same 200-trace corpus is pushed through a 2-worker server by 8
//! closed-loop clients, and each response's `tasks` payload is compared
//! **byte for byte** against a local single-threaded
//! `Engine::run_batch` reference rendered through the same
//! [`task_json`] serializer. The server runs with its schedule cache
//! off so outcome labels (`scheduled` vs `cached`) cannot depend on
//! which worker saw a duplicate first — makespans and orders are
//! cache-invariant, but the label is not, and byte equality is the
//! whole point here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use asched_engine::{parse_manifest, Engine, EngineConfig};
use asched_obs::{NullRecorder, NULL};
use asched_serve::{http_request, synth_request_bodies, task_json, Server, ServerConfig};

const TIMEOUT: Duration = Duration::from_secs(30);

/// The `"tasks":[...]` payload of a `/v1/schedule` response body. The
/// surrounding envelope carries the (time-dependent) step budget, so
/// equality is asserted on the payload only.
fn tasks_payload(body: &str) -> &str {
    let start = body.find(r#""tasks":"#).expect("tasks field");
    &body[start..body.len() - 1]
}

#[test]
fn eight_clients_match_single_threaded_reference() {
    let bodies = synth_request_bodies(200, 1234);

    // Local ground truth: one engine, one thread, no cache.
    let engine = Engine::new(EngineConfig {
        jobs: 1,
        cache: false,
        ..EngineConfig::default()
    });
    let expected: Vec<String> = bodies
        .iter()
        .map(|body| {
            let tasks = parse_manifest(body).expect(body);
            let report = engine.run_batch(&tasks, &NULL);
            let rendered: Vec<String> = report.tasks.iter().map(task_json).collect();
            format!("\"tasks\":[{}]", rendered.join(","))
        })
        .collect();

    let server = Server::start(
        ServerConfig {
            workers: 2,
            cache_capacity: 0, // outcome labels must not depend on interleaving
            deadline_ms: 60_000,
            ..ServerConfig::default()
        },
        Arc::new(NullRecorder),
    )
    .expect("bind");
    let addr = server.addr();

    let next = AtomicUsize::new(0);
    let got: Mutex<BTreeMap<usize, String>> = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let next = &next;
            let got = &got;
            let bodies = &bodies;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(body) = bodies.get(i) else { break };
                // Closed loop with shed retry: correctness may not
                // depend on load either.
                let resp = loop {
                    let resp =
                        http_request(addr, "POST", "/v1/schedule", &[], body.as_bytes(), TIMEOUT)
                            .expect("no dropped connections");
                    if resp.status != 503 {
                        break resp;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                };
                assert_eq!(resp.status, 200, "{body:?} → {}", resp.text());
                let text = resp.text();
                got.lock()
                    .unwrap()
                    .insert(i, tasks_payload(&text).to_string());
            });
        }
    });

    let got = got.into_inner().unwrap();
    assert_eq!(got.len(), bodies.len());
    for (i, expect) in expected.iter().enumerate() {
        assert_eq!(
            &got[&i], expect,
            "response {i} for {:?} diverged from the single-threaded reference",
            bodies[i],
        );
    }
    server.shutdown();
}
