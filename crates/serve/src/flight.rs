//! The flight recorder: a bounded ring buffer of recent request
//! summaries.
//!
//! Aggregate metrics answer "how is the service doing"; the flight
//! recorder answers "what just happened". Every completed request
//! pushes a [`RequestSummary`] — method, path, status, latency, root
//! span id, worker, task counts — into a fixed-capacity ring; the
//! oldest entry falls off when full. The ring is dumped two ways:
//!
//! * `GET /admin/flight` returns it as JSON, newest first;
//! * a worker panic dumps it to stderr before the request is answered
//!   with a 500, so the requests *leading up to* the crash are
//!   preserved even if nobody is scraping.
//!
//! The `span` field joins each summary to the JSONL trace: feed the
//! trace to `asched-trace` and the span id from the flight entry
//! selects the exact span tree of the interesting request.

use std::collections::VecDeque;
use std::sync::Mutex;

use asched_obs::json::JsonObject;

/// One completed request, as remembered by the flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestSummary {
    /// Completion ordinal (1-based, monotonically increasing).
    pub seq: u64,
    /// Request method (empty when the request never parsed).
    pub method: String,
    /// Request path (empty when the request never parsed).
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Accept-to-response latency in nanoseconds.
    pub nanos: u64,
    /// Root `"request"` span id in the trace, 0 when untraced.
    pub span: u64,
    /// Worker thread index that served the request.
    pub worker: usize,
    /// Tasks scheduled for this request.
    pub tasks: u64,
    /// Of those, tasks degraded to the rank fallback.
    pub degraded: u64,
}

impl RequestSummary {
    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("seq", self.seq)
            .str("method", &self.method)
            .str("path", &self.path)
            .u64("status", self.status.into())
            .u64("nanos", self.nanos)
            .u64("span", self.span)
            .u64("worker", self.worker as u64)
            .u64("tasks", self.tasks)
            .u64("degraded", self.degraded);
        o.finish()
    }
}

/// Bounded ring buffer of the last `capacity` request summaries.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

#[derive(Debug, Default)]
struct FlightInner {
    seq: u64,
    ring: VecDeque<RequestSummary>,
}

impl FlightRecorder {
    /// A recorder remembering the last `capacity` requests (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(FlightInner::default()),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one completed request; assigns and returns its `seq`.
    /// The oldest entry is evicted when the ring is full.
    pub fn push(&self, mut summary: RequestSummary) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.seq += 1;
        summary.seq = inner.seq;
        let seq = summary.seq;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(summary);
        seq
    }

    /// Snapshot of the ring, oldest first.
    pub fn snapshot(&self) -> Vec<RequestSummary> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Render the `GET /admin/flight` document: capacity, total
    /// requests seen, and the ring newest-first (the interesting end).
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries = String::from("[");
        for (i, s) in inner.ring.iter().rev().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            entries.push_str(&s.to_json());
        }
        entries.push(']');
        let mut o = JsonObject::new();
        o.str("schema", "asched-flight-v1")
            .u64("capacity", self.capacity as u64)
            .u64("total", inner.seq)
            .u64("resident", inner.ring.len() as u64);
        o.raw("entries", &entries);
        o.finish()
    }

    /// Dump the ring to stderr, newest first — the automatic crash
    /// path, invoked when a request handler panics.
    pub fn dump_to_stderr(&self, reason: &str) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        eprintln!(
            "flight recorder dump ({reason}): {} of last {} requests",
            inner.ring.len(),
            self.capacity
        );
        for s in inner.ring.iter().rev() {
            eprintln!("  {}", s.to_json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(path: &str, status: u16) -> RequestSummary {
        RequestSummary {
            seq: 0,
            method: "POST".into(),
            path: path.into(),
            status,
            nanos: 1000,
            span: 7,
            worker: 1,
            tasks: 3,
            degraded: 0,
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let f = FlightRecorder::new(2);
        assert_eq!(f.push(summary("/a", 200)), 1);
        assert_eq!(f.push(summary("/b", 200)), 2);
        assert_eq!(f.push(summary("/c", 500)), 3);
        let snap = f.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].path, "/b");
        assert_eq!(snap[1].path, "/c");
        assert_eq!(snap[1].seq, 3);
    }

    #[test]
    fn json_is_newest_first() {
        let f = FlightRecorder::new(8);
        f.push(summary("/old", 200));
        f.push(summary("/new", 503));
        let json = f.to_json();
        assert!(json.contains(r#""schema":"asched-flight-v1""#), "{json}");
        assert!(json.contains(r#""capacity":8"#), "{json}");
        assert!(json.contains(r#""total":2"#), "{json}");
        let new_pos = json.find("/new").unwrap();
        let old_pos = json.find("/old").unwrap();
        assert!(new_pos < old_pos, "newest entry must come first: {json}");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let f = FlightRecorder::new(0);
        assert_eq!(f.capacity(), 1);
        f.push(summary("/a", 200));
        f.push(summary("/b", 200));
        assert_eq!(f.snapshot().len(), 1);
    }
}
