//! The serving tier's *decision* logic, factored out of the request
//! path so it has exactly two consumers: the live server
//! ([`crate::server`]) and the fleet simulator (`asched-fleet`).
//!
//! Everything here is a pure function of its inputs — no clocks, no
//! sockets, no locks — which is what lets the discrete-event simulator
//! in `crates/fleet` promise that its replicas can never drift from
//! production behavior: both call the same code with the same numbers.
//!
//! Three decisions live here:
//!
//! - **admission** ([`AdmissionPolicy::admit`]): may a newly accepted
//!   connection join the queue, or is it shed with `503` and a
//!   `Retry-After` hint ([`AdmissionPolicy::retry_after_secs`])?
//! - **deadline tightening** ([`DeadlinePolicy::effective_deadline_ms`]):
//!   how the `X-Asched-Deadline-Ms` request header combines with the
//!   server default (it may only tighten, never relax);
//! - **deadline → step budget** ([`DeadlinePolicy::per_task_step_budget`]):
//!   how the wall-clock remaining on a request's deadline becomes the
//!   per-task `LookaheadConfig::step_budget` that makes an overdue
//!   request *degrade* to the Rank fallback instead of erroring.

/// Admission control for the bounded accept queue.
///
/// Mirrors the server's shed rule byte for byte: a connection is shed
/// exactly when the queue already holds `queue_capacity.max(1)` jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Accept-queue bound. Values below 1 behave as 1, exactly like
    /// [`crate::ServerConfig::queue_capacity`].
    pub queue_capacity: usize,
}

/// The admission verdict for one arriving connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Join the queue; `depth` is the queue length *after* joining.
    Accept {
        /// Queue depth including this request.
        depth: usize,
    },
    /// Shed with `503` + `Retry-After: {retry_after_secs}`.
    Shed {
        /// Queue depth observed at the shed decision.
        queue_depth: usize,
        /// The `Retry-After` value, in whole seconds.
        retry_after_secs: u64,
    },
}

impl AdmissionPolicy {
    /// Decide admission for a connection arriving while the queue holds
    /// `queue_len` jobs.
    pub fn admit(&self, queue_len: usize) -> Admission {
        if queue_len >= self.queue_capacity.max(1) {
            Admission::Shed {
                queue_depth: queue_len,
                retry_after_secs: self.retry_after_secs(queue_len),
            }
        } else {
            Admission::Accept {
                depth: queue_len + 1,
            }
        }
    }

    /// The `Retry-After` hint sent with a shed, in seconds. One knob,
    /// one place: a well-behaved client (and the simulator's client
    /// model) waits this long before retrying a 503.
    pub fn retry_after_secs(&self, _queue_len: usize) -> u64 {
        1
    }
}

/// Deadline handling: header tightening and step-budget conversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlinePolicy {
    /// Server default per-request deadline, measured from accept
    /// ([`crate::ServerConfig::deadline_ms`]).
    pub default_deadline_ms: u64,
    /// Deadline→step-budget conversion rate
    /// ([`crate::ServerConfig::steps_per_ms`]).
    pub steps_per_ms: u64,
}

impl DeadlinePolicy {
    /// Combine the server default with an optional
    /// `X-Asched-Deadline-Ms` header value. The header may only
    /// *tighten* the deadline; a malformed header is an error the
    /// server answers with `400 bad_deadline`.
    pub fn effective_deadline_ms(&self, header: Option<&str>) -> Result<u64, String> {
        match header {
            None => Ok(self.default_deadline_ms),
            Some(v) => match v.parse::<u64>() {
                Ok(ms) => Ok(ms.min(self.default_deadline_ms)),
                Err(_) => Err(format!(
                    "X-Asched-Deadline-Ms must be an integer, got {v:?}"
                )),
            },
        }
    }

    /// Wall-clock budget left on a deadline after `elapsed_ms` already
    /// passed (queue wait + reading the request), saturating at zero.
    pub fn remaining_ms(&self, deadline_ms: u64, elapsed_ms: u64) -> u64 {
        deadline_ms.saturating_sub(elapsed_ms)
    }

    /// Convert remaining wall-clock into the per-task step budget for a
    /// batch of `tasks` tasks. Never zero: an overdue request still
    /// gets a budget of 1, which degrades it to the Rank fallback — a
    /// valid schedule, not an error.
    pub fn per_task_step_budget(&self, remaining_ms: u64, tasks: usize) -> u64 {
        (remaining_ms * self.steps_per_ms / tasks.max(1) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_sheds_exactly_at_capacity() {
        let p = AdmissionPolicy { queue_capacity: 2 };
        assert_eq!(p.admit(0), Admission::Accept { depth: 1 });
        assert_eq!(p.admit(1), Admission::Accept { depth: 2 });
        assert_eq!(
            p.admit(2),
            Admission::Shed {
                queue_depth: 2,
                retry_after_secs: 1
            }
        );
        // Capacity 0 behaves as capacity 1, like ServerConfig.
        let p = AdmissionPolicy { queue_capacity: 0 };
        assert_eq!(p.admit(0), Admission::Accept { depth: 1 });
        assert!(matches!(p.admit(1), Admission::Shed { .. }));
    }

    #[test]
    fn deadlines_only_tighten() {
        let p = DeadlinePolicy {
            default_deadline_ms: 2_000,
            steps_per_ms: 100,
        };
        assert_eq!(p.effective_deadline_ms(None), Ok(2_000));
        assert_eq!(p.effective_deadline_ms(Some("500")), Ok(500));
        assert_eq!(p.effective_deadline_ms(Some("9999")), Ok(2_000));
        assert!(p.effective_deadline_ms(Some("soon")).is_err());
    }

    #[test]
    fn budget_conversion_floors_at_one() {
        let p = DeadlinePolicy {
            default_deadline_ms: 2_000,
            steps_per_ms: 100,
        };
        assert_eq!(p.remaining_ms(2_000, 150), 1_850);
        assert_eq!(p.remaining_ms(100, 2_000), 0);
        assert_eq!(p.per_task_step_budget(1_850, 5), 37_000);
        assert_eq!(p.per_task_step_budget(0, 5), 1);
        assert_eq!(p.per_task_step_budget(10, 0), 1_000);
    }
}
