//! Load generation for the scheduling service (`asched-load`).
//!
//! Two drive modes over the same worker pool:
//!
//! - **closed loop** ([`run_closed_loop`]): `clients` threads each keep
//!   exactly one request in flight, pulling the next body off a shared
//!   counter. A 503 (shed) is retried after the backoff the server
//!   itself asked for — the response's `Retry-After` header, the same
//!   value [`crate::policy::AdmissionPolicy`] computes — falling back
//!   to a short fixed backoff only when the header is absent. Retries
//!   are counted, requests are never abandoned, so under overload the
//!   offered rate self-regulates to what the server admits;
//! - **open loop** ([`run_open_loop`]): a pacing thread emits tickets
//!   on an [`Arrival`] schedule (uniform pacing, or the seeded Poisson
//!   process from [`crate::arrival`] that `asched-fleet` simulates)
//!   onto an `mpsc` channel regardless of completions, and the clients
//!   fire as tickets arrive. Under overload the ticket backlog grows
//!   and sheds surface as 503s, which open loop does *not* retry — the
//!   point is to measure shedding, not hide it.
//!
//! Every outcome is tallied in a [`LoadReport`]: per-status counts,
//! retry and dropped-connection totals, and a client-side latency
//! histogram in microseconds.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use asched_obs::Histogram;

use crate::arrival::{poisson_offsets, uniform_offsets};
use crate::client::http_request;

/// How many times a closed-loop client retries one shed request before
/// counting it as failed. High enough that a drained-but-alive server
/// is the only way to exhaust it.
const MAX_RETRIES_PER_REQUEST: u32 = 200;

/// Cap on an honored `Retry-After`, so a buggy or hostile server
/// cannot park a closed-loop client for minutes.
const MAX_RETRY_AFTER_SECS: u64 = 30;

/// The open-loop arrival schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// Fixed-interval pacing: request `i` is due at `i / rate` seconds.
    Uniform,
    /// Seeded Poisson process ([`poisson_offsets`]) — the same arrival
    /// sequence `asched-fleet` drives its simulated replicas with, so a
    /// real run can replay a simulated scenario exactly.
    Poisson {
        /// RNG seed for the inter-arrival gaps.
        seed: u64,
    },
}

impl Arrival {
    /// The offsets (from run start) at which the `n` planned requests
    /// become due.
    pub fn offsets(&self, rate: f64, n: usize) -> Vec<Duration> {
        match self {
            Arrival::Uniform => uniform_offsets(rate, n),
            Arrival::Poisson { seed } => poisson_offsets(rate, n, *seed),
        }
    }
}

/// Deterministic single-line manifest bodies mirroring
/// [`asched_engine::synth_corpus`] exactly: same families, same
/// windows-cycling, and the same bounded variant pool — so, like the
/// batch corpus, a load run revisits fingerprints and the cache hit
/// rate is a property of the workload, not of `count`.
pub fn synth_request_bodies(count: usize, seed: u64) -> Vec<String> {
    const WINDOWS: [usize; 3] = [2, 4, 8];
    let pool = (count / 16).max(1) as u64;
    let mut bodies = Vec::with_capacity(count);
    for i in 0..count {
        let variant = (i / 3) as u64 % (3 * pool);
        let w = WINDOWS[(variant / pool) as usize];
        let sd = seed.wrapping_add(variant % pool);
        let body = match i % 3 {
            0 => format!("dag nodes=32 blocks=4 edge_prob=0.3 cross_prob=0.15 seed={sd} w={w}"),
            1 => format!("seam blocks=5 fillers=3 seed={sd} w={w}"),
            _ => format!("prog blocks=3 insts=9 seed={sd} w={w}"),
        };
        bodies.push(body);
    }
    bodies
}

/// Aggregate outcome of one load run.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Requests attempted (unique bodies, not counting retries).
    pub sent: u64,
    /// Requests that ended 200.
    pub ok: u64,
    /// Responses per status code, ascending.
    pub status_counts: Vec<(u16, u64)>,
    /// 503-triggered retries performed (closed loop only).
    pub retries: u64,
    /// Total backoff slept before those retries, milliseconds. When the
    /// server's `Retry-After` is honored this is ≥ `retries * 1000` at
    /// the default 1-second hint.
    pub retry_backoff_ms: u64,
    /// Connections that errored at the socket level (connect/read/write
    /// failure or timeout). Must be 0 against a healthy server.
    pub dropped: u64,
    /// 200 responses carrying `X-Asched-Degraded` (deadline pressure).
    pub degraded_responses: u64,
    /// Client-observed request latency, microseconds. Closed loop
    /// measures per attempt chain (including retry backoff); open loop
    /// per attempt.
    pub latency_us: Histogram,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Responses with a given status.
    pub fn status(&self, code: u16) -> u64 {
        self.status_counts
            .iter()
            .find(|(c, _)| *c == code)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Server errors other than shed (anything 5xx except 503).
    pub fn hard_5xx(&self) -> u64 {
        self.status_counts
            .iter()
            .filter(|(c, _)| *c >= 500 && *c != 503)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Flat name→value metric rows for `BENCH_serve.json`.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        let mut m = vec![
            ("load.sent".to_string(), self.sent as f64),
            ("load.ok".to_string(), self.ok as f64),
            ("load.retries".to_string(), self.retries as f64),
            (
                "load.retry_backoff_ms".to_string(),
                self.retry_backoff_ms as f64,
            ),
            ("load.dropped".to_string(), self.dropped as f64),
            ("load.degraded".to_string(), self.degraded_responses as f64),
            ("load.elapsed_secs".to_string(), secs),
            ("load.throughput_rps".to_string(), self.ok as f64 / secs),
        ];
        for (code, n) in &self.status_counts {
            m.push((format!("load.status.{code}"), *n as f64));
        }
        for (name, p) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
            if let Some(v) = self.latency_us.percentile(p) {
                m.push((format!("load.latency_{name}_us"), v as f64));
            }
        }
        if let Some(v) = self.latency_us.max() {
            m.push(("load.latency_max_us".to_string(), v as f64));
        }
        m
    }

    fn note_status(&mut self, code: u16) {
        match self.status_counts.binary_search_by_key(&code, |(c, _)| *c) {
            Ok(i) => self.status_counts[i].1 += 1,
            Err(i) => self.status_counts.insert(i, (code, 1)),
        }
    }

    fn merge(&mut self, other: &LoadReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.retries += other.retries;
        self.retry_backoff_ms += other.retry_backoff_ms;
        self.dropped += other.dropped;
        self.degraded_responses += other.degraded_responses;
        for (code, n) in &other.status_counts {
            match self.status_counts.binary_search_by_key(code, |(c, _)| *c) {
                Ok(i) => self.status_counts[i].1 += n,
                Err(i) => self.status_counts.insert(i, (*code, *n)),
            }
        }
        // Exact bucketwise merge — counts, sum, min and max all carry
        // over, so percentiles of the merged report equal percentiles
        // of the union of samples (at bucket granularity).
        self.latency_us.merge(&other.latency_us);
    }
}

/// Outcome of one attempt that got an HTTP response back.
struct AttemptOutcome {
    status: u16,
    /// Parsed `Retry-After` seconds, when the response carried one.
    retry_after_secs: Option<u64>,
}

/// One request attempt; returns the outcome, or `None` on a dropped
/// connection.
fn attempt(
    addr: SocketAddr,
    body: &str,
    deadline_ms: Option<u64>,
    timeout: Duration,
    local: &mut LoadReport,
) -> Option<AttemptOutcome> {
    let deadline_hdr = deadline_ms.map(|ms| ms.to_string());
    let mut headers: Vec<(&str, &str)> = vec![("X-Asched-Format", "manifest")];
    if let Some(ms) = &deadline_hdr {
        headers.push(("X-Asched-Deadline-Ms", ms));
    }
    match http_request(
        addr,
        "POST",
        "/v1/schedule",
        &headers,
        body.as_bytes(),
        timeout,
    ) {
        Ok(resp) => {
            local.note_status(resp.status);
            if resp.status == 200 {
                local.ok += 1;
                if resp.header("x-asched-degraded").is_some() {
                    local.degraded_responses += 1;
                }
            }
            Some(AttemptOutcome {
                status: resp.status,
                retry_after_secs: resp
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok()),
            })
        }
        Err(_) => {
            local.dropped += 1;
            None
        }
    }
}

/// Drive `bodies` through the server with `clients` closed-loop
/// threads. Every body is sent exactly once (to success or non-503
/// completion); 503s back off for the server's `Retry-After` and
/// retry.
pub fn run_closed_loop(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
    deadline_ms: Option<u64>,
    timeout: Duration,
) -> LoadReport {
    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let total = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..clients.max(1) {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = LoadReport::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(body) = bodies.get(i) else { break };
                    local.sent += 1;
                    let req_start = Instant::now();
                    let mut tries = 0u32;
                    loop {
                        match attempt(addr, body, deadline_ms, timeout, &mut local) {
                            Some(out) if out.status == 503 && tries < MAX_RETRIES_PER_REQUEST => {
                                tries += 1;
                                local.retries += 1;
                                // Honor the server's own hint; a 503
                                // without (or with an unparsable)
                                // Retry-After gets the legacy short
                                // fixed backoff.
                                let backoff = match out.retry_after_secs {
                                    Some(secs) => {
                                        Duration::from_secs(secs.min(MAX_RETRY_AFTER_SECS))
                                    }
                                    None => Duration::from_millis(5 + 5 * u64::from(tries % 8)),
                                };
                                local.retry_backoff_ms += backoff.as_millis() as u64;
                                thread::sleep(backoff);
                            }
                            _ => break,
                        }
                    }
                    local
                        .latency_us
                        .record(req_start.elapsed().as_micros() as u64);
                }
                local
            }));
        }
        let mut total = LoadReport::default();
        for h in handles {
            if let Ok(local) = h.join() {
                total.merge(&local);
            }
        }
        total
    });
    let mut total = total;
    total.elapsed = started.elapsed();
    total
}

/// Drive the server open loop: `rate` requests per second for
/// `duration`, from `clients` worker threads fed by a pacing thread
/// following the `arrival` schedule. Bodies cycle; 503s are recorded,
/// not retried.
#[allow(clippy::too_many_arguments)] // a load run really has this many knobs
pub fn run_open_loop(
    addr: SocketAddr,
    bodies: &[String],
    clients: usize,
    rate: f64,
    duration: Duration,
    arrival: Arrival,
    deadline_ms: Option<u64>,
    timeout: Duration,
) -> LoadReport {
    assert!(!bodies.is_empty(), "open loop needs at least one body");
    let rate = rate.max(0.1);
    let planned = (rate * duration.as_secs_f64()).ceil() as usize;
    let offsets = arrival.offsets(rate, planned);
    let (tx, rx) = mpsc::channel::<usize>();
    let rx = Arc::new(Mutex::new(rx));
    let started = Instant::now();

    let total = std::thread::scope(|scope| {
        let offsets = &offsets;
        scope.spawn(move || {
            for (i, off) in offsets.iter().enumerate() {
                let due = started + *off;
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    thread::sleep(wait);
                }
                if tx.send(i).is_err() {
                    break;
                }
            }
            // tx drops here; clients drain the backlog and stop.
        });

        let mut handles = Vec::new();
        for _ in 0..clients.max(1) {
            let rx = Arc::clone(&rx);
            handles.push(scope.spawn(move || {
                let mut local = LoadReport::default();
                loop {
                    let ticket = {
                        let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                        guard.recv()
                    };
                    let Ok(i) = ticket else { break };
                    local.sent += 1;
                    let req_start = Instant::now();
                    attempt(
                        addr,
                        &bodies[i % bodies.len()],
                        deadline_ms,
                        timeout,
                        &mut local,
                    );
                    local
                        .latency_us
                        .record(req_start.elapsed().as_micros() as u64);
                }
                local
            }));
        }
        let mut total = LoadReport::default();
        for h in handles {
            if let Ok(local) = h.join() {
                total.merge(&local);
            }
        }
        total
    });
    let mut total = total;
    total.elapsed = started.elapsed();
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_engine::parse_manifest;

    #[test]
    fn bodies_are_deterministic_and_parseable() {
        let a = synth_request_bodies(24, 7);
        let b = synth_request_bodies(24, 7);
        assert_eq!(a, b);
        assert_ne!(a, synth_request_bodies(24, 8));
        for body in &a {
            let tasks = parse_manifest(body).expect(body);
            assert_eq!(tasks.len(), 1, "{body}");
        }
        // Windows cycle over the corpus.
        let windows: std::collections::BTreeSet<usize> = a
            .iter()
            .map(|b| parse_manifest(b).unwrap()[0].machine.window)
            .collect();
        assert_eq!(windows.into_iter().collect::<Vec<_>>(), vec![2, 4, 8]);
    }

    #[test]
    fn bodies_revisit_fingerprints_like_the_batch_corpus() {
        // The bounded variant pool wraps, so a 500-request run repeats
        // 221 bodies (44%): a shared cache can serve those from memory,
        // where the old all-distinct generator made every request a
        // guaranteed miss.
        let bodies = synth_request_bodies(500, 1);
        let unique: std::collections::BTreeSet<&String> = bodies.iter().collect();
        assert_eq!(unique.len(), 279);
    }

    #[test]
    fn report_tallies() {
        let mut r = LoadReport::default();
        r.note_status(200);
        r.note_status(503);
        r.note_status(200);
        assert_eq!(r.status(200), 2);
        assert_eq!(r.status(503), 1);
        assert_eq!(r.hard_5xx(), 0);
        r.note_status(500);
        assert_eq!(r.hard_5xx(), 1);
        let mut other = LoadReport::default();
        other.note_status(200);
        other.latency_us.record(100);
        r.merge(&other);
        assert_eq!(r.status(200), 3);
        assert_eq!(r.latency_us.count(), 1);
    }
}
