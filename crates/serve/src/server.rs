//! The scheduling service: accept queue, worker pool, routes, drain.
//!
//! Architecture (one instance = one [`Server::start`] call):
//!
//! - an **accept thread** pulls connections off a `TcpListener` and
//!   pushes them onto a bounded `Mutex<VecDeque>` + `Condvar` queue.
//!   When the queue is full the connection is *shed* immediately with
//!   `503 Service Unavailable` + `Retry-After` — the service degrades
//!   by refusing work it cannot start in time, never by hanging;
//! - **worker threads** (each owning one long-lived
//!   [`SchedCtx`](asched_graph::SchedCtx) and one
//!   [`Engine`](asched_engine::Engine) with its own schedule cache)
//!   pop connections, parse the request, and schedule. Handlers run
//!   under `catch_unwind`, so a panic costs one 500, not a worker;
//! - each request carries a **deadline** measured from the moment it
//!   was accepted. The remaining budget is converted into a
//!   [`LookaheadConfig::step_budget`](asched_core::LookaheadConfig),
//!   so a request that cannot finish Algorithm `Lookahead` in time
//!   degrades to the per-block Rank fallback — a *valid* schedule,
//!   flagged `degraded`, instead of an error;
//! - **drain** ([`ServerHandle::drain`] or `POST /admin/drain`) stops
//!   accepting, lets the queue empty, and joins the workers; in-flight
//!   requests complete normally.

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use asched_engine::{Engine, EngineConfig, SharedScheduleCache};
use asched_graph::SchedCtx;
use asched_obs::json::JsonObject;
use asched_obs::{Event, Recorder, Severity, SpanAlloc, SpanScope, TeeRecorder};

use crate::flight::{FlightRecorder, RequestSummary};
use crate::http::{read_request, ReadError, Request, Response};
use crate::metrics::ServeMetrics;
use crate::policy::{Admission, AdmissionPolicy, DeadlinePolicy};
use crate::wire;

/// Shard count for the process-wide cache. Fixed rather than
/// configurable: 16 comfortably exceeds the worker-count range the
/// admission tier is sized for, so shard-lock contention stays
/// negligible without another knob to validate.
const SHARED_CACHE_SHARDS: usize = 16;

/// How the workers' schedule caches relate to each other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// One process-wide [`SharedScheduleCache`] across every worker:
    /// a fingerprint computed by any worker is a hit for all of them,
    /// and `--cache-file` warm-start/persistence applies. The default.
    #[default]
    Shared,
    /// One private FIFO cache per worker engine (the pre-sharing
    /// behaviour): N workers pay N cold misses per hot fingerprint.
    Private,
}

impl std::str::FromStr for CacheMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "shared" => Ok(CacheMode::Shared),
            "private" => Ok(CacheMode::Private),
            other => Err(format!(
                "cache mode must be shared or private, got {other:?}"
            )),
        }
    }
}

/// Tuning knobs for one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns a `SchedCtx` + `Engine`). Min 1.
    pub workers: usize,
    /// Accepted-connection queue bound; beyond it requests are shed
    /// with 503. Min 1.
    pub queue_capacity: usize,
    /// Default per-request deadline, measured from accept. The
    /// `X-Asched-Deadline-Ms` request header may only tighten it.
    pub deadline_ms: u64,
    /// Deadline→step-budget conversion rate. The engine charges one
    /// step per node entering a block merge, so this bounds scheduling
    /// work per remaining millisecond of deadline.
    pub steps_per_ms: u64,
    /// Socket read/write timeout per connection.
    pub io_timeout_ms: u64,
    /// Cap on a request body (`Content-Length`).
    pub max_body_bytes: usize,
    /// Cap on tasks per request.
    pub max_tasks_per_request: usize,
    /// Schedule-cache capacity per worker; 0 disables caching (useful
    /// when outcome labels must not depend on request interleaving).
    /// In [`CacheMode::Shared`] the workers pool the same memory
    /// budget: one cache of `cache_capacity × workers` entries.
    pub cache_capacity: usize,
    /// Whether workers share one schedule cache or own private ones.
    pub cache_mode: CacheMode,
    /// Warm-start/persistence file for the shared cache: loaded (and
    /// tail-repaired) at startup, appended to as new schedules are
    /// computed. Requires [`CacheMode::Shared`] and a nonzero
    /// `cache_capacity`; ignored otherwise.
    pub cache_file: Option<PathBuf>,
    /// Flight-recorder capacity: how many recent request summaries
    /// `GET /admin/flight` (and the automatic panic dump) can replay.
    pub flight_capacity: usize,
    /// Test hook: sleep this long in the worker before reading each
    /// request. Lets tests fill the queue deterministically. Keep 0.
    pub debug_delay_ms: u64,
}

impl ServerConfig {
    /// The admission policy this configuration induces — the single
    /// source of the queue-full shed rule and its `Retry-After` value,
    /// shared with the fleet simulator.
    pub fn admission(&self) -> AdmissionPolicy {
        AdmissionPolicy {
            queue_capacity: self.queue_capacity,
        }
    }

    /// The deadline policy this configuration induces — header
    /// tightening and the deadline→step-budget conversion, shared with
    /// the fleet simulator.
    pub fn deadline(&self) -> DeadlinePolicy {
        DeadlinePolicy {
            default_deadline_ms: self.deadline_ms,
            steps_per_ms: self.steps_per_ms,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            deadline_ms: 2_000,
            steps_per_ms: 100,
            io_timeout_ms: 5_000,
            max_body_bytes: 1 << 20,
            max_tasks_per_request: 512,
            cache_capacity: 256,
            cache_mode: CacheMode::default(),
            cache_file: None,
            flight_capacity: 64,
            debug_delay_ms: 0,
        }
    }
}

struct Job {
    stream: TcpStream,
    accepted: Instant,
}

struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    metrics: Arc<ServeMetrics>,
    rec: Arc<dyn Recorder + Send + Sync>,
    queue: Mutex<VecDeque<Job>>,
    cond: Condvar,
    draining: AtomicBool,
    /// One span-id allocator for the whole server: request spans from
    /// every worker and task spans from every engine share it, so ids
    /// are unique across the trace (server traces make no cross-request
    /// byte-determinism promise — ids depend on arrival interleaving).
    spans: SpanAlloc,
    flight: FlightRecorder,
    /// The process-wide schedule cache, when `cache_mode` is shared
    /// and caching is enabled. `None` means each worker engine owns a
    /// private cache (or caching is off entirely).
    cache: Option<Arc<SharedScheduleCache>>,
}

impl Shared {
    /// Record into both the external recorder and the metrics.
    fn emit(&self, event: &Event<'_>) {
        if self.rec.enabled() {
            self.rec.record(event);
        }
        self.metrics.record(event);
    }

    fn enqueue(&self, stream: TcpStream) {
        let admission = self.cfg.admission();
        let depth;
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            match admission.admit(q.len()) {
                Admission::Shed {
                    queue_depth,
                    retry_after_secs,
                } => {
                    drop(q);
                    self.emit(&Event::ReqShed {
                        queue_depth: queue_depth as u32,
                    });
                    shed(stream, queue_depth, retry_after_secs);
                    return;
                }
                Admission::Accept { depth: d } => {
                    q.push_back(Job {
                        stream,
                        accepted: Instant::now(),
                    });
                    depth = d;
                    self.metrics.set_queue_depth(depth);
                }
            }
        }
        self.emit(&Event::ReqAccept {
            queue_depth: depth as u32,
        });
        self.cond.notify_one();
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.cond.notify_all();
        // The accept thread sits in a blocking accept(); poke it awake
        // with a throwaway connection so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// Best-effort 503 on a connection we will not serve. Short timeouts:
/// a slow peer must not stall the accept thread.
fn shed(mut stream: TcpStream, queue_depth: usize, retry_after_secs: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut o = JsonObject::new();
    o.str("error", "overloaded")
        .str("detail", "accept queue is full; retry shortly")
        .u64("queue_depth", queue_depth as u64);
    let resp =
        Response::json(503, o.finish()).with_header("Retry-After", &retry_after_secs.to_string());
    let _ = resp.write_to(&mut stream);
    linger_close(stream, Duration::from_millis(100));
}

/// Close without destroying the response in flight. A shed (and some
/// error paths) answers *without reading the request*; closing a TCP
/// socket with unread bytes in its receive buffer sends RST, which
/// drops our freshly written response on the floor at the peer. So:
/// send FIN, then drain whatever the peer had in flight until it
/// closes, bounded by `timeout` and a byte budget.
fn linger_close(mut stream: TcpStream, timeout: Duration) {
    use std::io::Read;
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(timeout));
    let mut sink = [0u8; 1024];
    let mut budget: usize = 64 * 1024;
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    break;
                }
            }
        }
    }
}

/// A running server. Dropping the handle drains and joins it.
pub struct Server;

impl Server {
    /// Bind, spawn the accept thread and worker pool, and return a
    /// handle. `rec` additionally receives every obs event the service
    /// and its engines emit (pass [`asched_obs::NULL`]-style recorder
    /// via `Arc` to opt out).
    pub fn start(
        cfg: ServerConfig,
        rec: Arc<dyn Recorder + Send + Sync>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let flight = FlightRecorder::new(cfg.flight_capacity);
        let cache = if cfg.cache_mode == CacheMode::Shared && cfg.cache_capacity > 0 {
            // Same aggregate memory budget as N private caches, pooled.
            let capacity = cfg.cache_capacity.saturating_mul(cfg.workers.max(1));
            let cache = Arc::new(SharedScheduleCache::new(capacity, SHARED_CACHE_SHARDS));
            if let Some(path) = &cfg.cache_file {
                cache.warm_start(path)?;
            }
            Some(cache)
        } else {
            None
        };
        let metrics = Arc::new(ServeMetrics::new());
        if let Some(cache) = &cache {
            metrics.attach_shared_cache(Arc::clone(cache));
        }
        let shared = Arc::new(Shared {
            cfg,
            addr,
            metrics,
            rec,
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            draining: AtomicBool::new(false),
            spans: SpanAlloc::new(),
            flight,
            cache,
        });

        let accept = {
            let sh = Arc::clone(&shared);
            thread::Builder::new()
                .name("asched-accept".into())
                .spawn(move || accept_loop(listener, &sh))?
        };
        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("asched-worker-{i}"))
                    .spawn(move || worker_loop(&sh, i))?,
            );
        }
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// Control handle for a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` used port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live service metrics.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Begin a graceful drain: stop accepting, finish everything
    /// queued and in flight. Idempotent; returns immediately.
    pub fn drain(&self) {
        self.shared.begin_drain();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drain and wait for every thread to finish.
    pub fn shutdown(mut self) {
        self.shared.begin_drain();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_drain();
        self.join_threads();
    }
}

fn accept_loop(listener: TcpListener, sh: &Shared) {
    for stream in listener.incoming() {
        if sh.draining.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => sh.enqueue(s),
            // Transient accept errors (peer reset mid-handshake etc.)
            // are not fatal to the service.
            Err(_) => continue,
        }
    }
    // No new work can arrive; make sure idle workers re-check the flag.
    sh.cond.notify_all();
}

fn worker_loop(sh: &Shared, worker: usize) {
    let mut ctx = SchedCtx::new();
    let ecfg = EngineConfig {
        jobs: 1,
        cache: sh.cfg.cache_capacity > 0,
        cache_capacity: sh.cfg.cache_capacity.max(1),
        step_budget: None,
        capture: false,
    };
    let engine = match &sh.cache {
        Some(cache) => Engine::with_shared_cache(ecfg, Arc::clone(cache)),
        None => Engine::new(ecfg),
    };
    loop {
        let job = {
            let mut q = sh.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(j) = q.pop_front() {
                    sh.metrics.set_queue_depth(q.len());
                    break j;
                }
                if sh.draining.load(Ordering::SeqCst) {
                    return;
                }
                q = sh.cond.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        handle_connection(sh, &engine, &mut ctx, worker, job);
    }
}

/// Per-request tallies the router reports back for the flight record.
#[derive(Default)]
struct ReqStats {
    tasks: u64,
    degraded: u64,
}

fn handle_connection(sh: &Shared, engine: &Engine, ctx: &mut SchedCtx, worker: usize, job: Job) {
    let Job {
        mut stream,
        accepted,
    } = job;
    let io_timeout = Duration::from_millis(sh.cfg.io_timeout_ms.max(1));
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    if sh.cfg.debug_delay_ms > 0 {
        thread::sleep(Duration::from_millis(sh.cfg.debug_delay_ms));
    }

    // One root span per request, with a child per phase. The queue span
    // is retroactive: it covers accept → (this worker ready to read),
    // measured now that the wait is over. Together queue + read +
    // handle + write account for essentially all of the root's latency
    // — what `asched-trace` calls span coverage.
    let root = sh.spans.next();
    sh.emit(&Event::SpanStart {
        span: root,
        parent: None,
        name: "request",
    });
    let queue_span = sh.spans.next();
    sh.emit(&Event::SpanStart {
        span: queue_span,
        parent: Some(root),
        name: "queue",
    });
    sh.emit(&Event::SpanEnd {
        span: queue_span,
        nanos: accepted.elapsed().as_nanos() as u64,
    });

    let read_span = sh.spans.next();
    sh.emit(&Event::SpanStart {
        span: read_span,
        parent: Some(root),
        name: "read",
    });
    let read_start = Instant::now();
    let read_result = read_request(&mut stream, sh.cfg.max_body_bytes);
    sh.emit(&Event::SpanEnd {
        span: read_span,
        nanos: read_start.elapsed().as_nanos() as u64,
    });

    let mut stats = ReqStats::default();
    let (response, method, path) = match read_result {
        Ok(req) => {
            let handle_span = sh.spans.next();
            sh.emit(&Event::SpanStart {
                span: handle_span,
                parent: Some(root),
                name: "handle",
            });
            let handle_start = Instant::now();
            let resp = catch_unwind(AssertUnwindSafe(|| {
                route(
                    sh,
                    engine,
                    ctx,
                    worker,
                    &req,
                    accepted,
                    handle_span,
                    &mut stats,
                )
            }))
            .unwrap_or_else(|_| {
                // A handler panic is exactly what the flight recorder
                // exists for: dump the recent-request ring before
                // answering, so the path to the crash is preserved.
                sh.flight
                    .dump_to_stderr(&format!("handler panic on worker {worker}"));
                sh.emit(&Event::Diagnostic {
                    severity: Severity::Error,
                    code: "handler_panic",
                    message: &format!(
                        "worker {worker}: handler panicked on {} {}; flight ring dumped to stderr",
                        req.method, req.path
                    ),
                });
                Response::error(500, "panic", "request handler panicked")
            });
            sh.emit(&Event::SpanEnd {
                span: handle_span,
                nanos: handle_start.elapsed().as_nanos() as u64,
            });
            (resp, req.method, req.path)
        }
        Err(ReadError::Malformed(m)) => (
            Response::error(400, "malformed_request", &m),
            String::new(),
            String::new(),
        ),
        Err(ReadError::TooLarge) => (
            Response::error(413, "too_large", "request exceeds size limits"),
            String::new(),
            String::new(),
        ),
        Err(ReadError::Io(e)) => (
            Response::error(408, "request_timeout", &e.to_string()),
            String::new(),
            String::new(),
        ),
    };

    let status = response.status;
    let write_span = sh.spans.next();
    sh.emit(&Event::SpanStart {
        span: write_span,
        parent: Some(root),
        name: "write",
    });
    let write_start = Instant::now();
    let _ = response.write_to(&mut stream);
    // Error responses may leave request bytes unread; see linger_close.
    linger_close(stream, Duration::from_millis(250));
    sh.emit(&Event::SpanEnd {
        span: write_span,
        nanos: write_start.elapsed().as_nanos() as u64,
    });

    let total_nanos = accepted.elapsed().as_nanos() as u64;
    sh.emit(&Event::ReqDone {
        status: u32::from(status),
        nanos: total_nanos,
        span: Some(root),
    });
    sh.emit(&Event::SpanEnd {
        span: root,
        nanos: total_nanos,
    });
    sh.flight.push(RequestSummary {
        seq: 0, // assigned by the recorder
        method,
        path,
        status,
        nanos: total_nanos,
        span: root,
        worker,
        tasks: stats.tasks,
        degraded: stats.degraded,
    });
}

#[allow(clippy::too_many_arguments)] // the request pipeline really has this much context
fn route(
    sh: &Shared,
    engine: &Engine,
    ctx: &mut SchedCtx,
    worker: usize,
    req: &Request,
    accepted: Instant,
    handle_span: u64,
    stats: &mut ReqStats,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut o = JsonObject::new();
            o.str("status", "ok")
                .bool("draining", sh.draining.load(Ordering::SeqCst));
            Response::json(200, o.finish())
        }
        ("GET", "/metrics") => match req.query("format") {
            None | Some("json") => Response::json(200, sh.metrics.to_json()),
            Some("prometheus") => Response::text(200, sh.metrics.to_prometheus()),
            Some(other) => Response::error(
                400,
                "bad_format",
                &format!("unknown metrics format {other:?}; use json or prometheus"),
            ),
        },
        ("GET", "/admin/flight") => Response::json(200, sh.flight.to_json()),
        ("POST", "/admin/drain") => {
            sh.begin_drain();
            let mut o = JsonObject::new();
            o.str("status", "draining");
            Response::json(200, o.finish())
        }
        ("POST", "/v1/schedule") => {
            schedule(sh, engine, ctx, worker, req, accepted, handle_span, stats)
        }
        ("GET" | "HEAD" | "PUT" | "DELETE", "/v1/schedule")
        | ("GET" | "POST", "/healthz" | "/metrics" | "/admin/drain" | "/admin/flight") => {
            Response::error(
                405,
                "method_not_allowed",
                &format!("{} is not supported on {}", req.method, req.path),
            )
        }
        _ => Response::error(404, "not_found", &format!("no route for {}", req.path)),
    }
}

#[allow(clippy::too_many_arguments)] // see route()
fn schedule(
    sh: &Shared,
    engine: &Engine,
    ctx: &mut SchedCtx,
    worker: usize,
    req: &Request,
    accepted: Instant,
    handle_span: u64,
    stats: &mut ReqStats,
) -> Response {
    let mut tasks = match wire::parse_schedule_request(req, sh.cfg.max_tasks_per_request) {
        Ok(t) => t,
        Err(e) => return Response::error(e.status, e.code, &e.detail),
    };

    // Deadline: the header may tighten the server default, never relax
    // it. Whatever wall-clock already elapsed in the queue is charged
    // against the request before its step budget is computed. All three
    // decisions go through the shared DeadlinePolicy so the fleet
    // simulator computes the identical budgets.
    let deadline = sh.cfg.deadline();
    let deadline_ms = match deadline.effective_deadline_ms(req.header("x-asched-deadline-ms")) {
        Ok(ms) => ms,
        Err(detail) => return Response::error(400, "bad_deadline", &detail),
    };
    let elapsed_ms = accepted.elapsed().as_millis() as u64;
    let remaining_ms = deadline.remaining_ms(deadline_ms, elapsed_ms);
    let per_task_budget = deadline.per_task_step_budget(remaining_ms, tasks.len());
    for t in &mut tasks {
        if t.config.step_budget.is_none() {
            t.config.step_budget = Some(per_task_budget);
        }
    }

    let report = {
        let tee = TeeRecorder::new(&*sh.rec, &*sh.metrics);
        // The engine span nests under this request's "handle" span, so
        // the trace joins HTTP latency to per-task scheduling work.
        let scope = SpanScope {
            alloc: &sh.spans,
            parent: Some(handle_span),
        };
        engine.run_batch_traced(Some(ctx), &tasks, &tee, Some(scope))
    };
    sh.metrics
        .note_tasks(report.tasks.len() as u64, report.degraded, report.failed);
    sh.metrics.note_worker_cache(
        worker,
        report.cache_hits,
        report.cache_misses,
        report.cache_evictions,
    );
    stats.tasks = report.tasks.len() as u64;
    stats.degraded = report.degraded;

    let body = wire::schedule_response_json(&report, deadline_ms, per_task_budget);
    let mut resp = Response::json(200, body);
    if report.degraded > 0 {
        resp = resp.with_header("X-Asched-Degraded", &report.degraded.to_string());
    }
    resp
}
