//! A deliberately small HTTP/1.1 subset over blocking `std::net`.
//!
//! The service speaks exactly what its clients need and nothing more:
//! one request per connection (`Connection: close` on every response),
//! `Content-Length` bodies, flat header lines. No chunked encoding, no
//! keep-alive, no TLS. The point is to stay inside `std` — the build
//! is hermetic — while still being robust against hostile input: every
//! malformed, oversized or timed-out request maps onto a structured
//! [`ReadError`] the server turns into a 4xx, never a panic or a hang
//! (the caller sets socket read/write timeouts before parsing).

use std::io::{self, Read, Write};

/// Hard cap on the request line + headers, before any body.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as sent).
    pub method: String,
    /// Path without the query string, e.g. `/v1/schedule`.
    pub path: String,
    /// Decoded `key=value` query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The bytes are not a well-formed request (→ 400).
    Malformed(String),
    /// Head or body exceeds the configured limits (→ 413).
    TooLarge,
    /// The socket failed or timed out before a full request arrived
    /// (→ best-effort 408, then close).
    Io(io::Error),
}

/// Read and parse one request from `stream`.
///
/// `max_body` caps the `Content-Length`; the head is capped at
/// [`MAX_HEAD_BYTES`]. The caller is responsible for having set socket
/// timeouts — a stalled peer surfaces as [`ReadError::Io`].
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, ReadError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge);
        }
        let n = stream.read(&mut chunk).map_err(ReadError::Io)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::Malformed("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(ReadError::Malformed(format!(
            "unsupported request line {request_line:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > max_body {
        return Err(ReadError::TooLarge);
    }

    // Body: whatever arrived past the head, then read the rest exactly.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(ReadError::Malformed("bytes past content-length".into()));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(ReadError::Io)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    let (path, query) = parse_target(target);
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Split `/path?k=v&k2=v2` into path + decoded query pairs. Percent
/// escapes are left as-is (the API uses none); `+` stays `+`.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (p.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// A response about to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers beyond the standard set.
    pub extra_headers: Vec<(String, String)>,
    /// The body (JSON, or Prometheus text exposition).
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A Prometheus text-exposition response (version 0.0.4).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": code, "detail": detail}`.
    pub fn error(status: u16, code: &str, detail: &str) -> Self {
        let mut o = asched_obs::json::JsonObject::new();
        o.str("error", code).str("detail", detail);
        Response::json(status, o.finish())
    }

    /// Attach one extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Serialize onto the wire. Every response closes the connection.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut io::Cursor::new(bytes.to_vec()), 1 << 20)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /v1/schedule?w=4&units=rs6000 HTTP/1.1\r\n\
              Host: x\r\nContent-Length: 5\r\nX-Asched-Format: manifest\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/schedule");
        assert_eq!(req.query("w"), Some("4"));
        assert_eq!(req.query("units"), Some("rs6000"));
        assert_eq!(req.header("x-asched-format"), Some("manifest"));
        assert_eq!(req.header("X-ASCHED-FORMAT"), Some("manifest"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        let big = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert!(matches!(parse(big.as_bytes()), Err(ReadError::TooLarge)));
        // Truncated body: the cursor hits EOF before content-length.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn text_responses_carry_exposition_content_type() {
        let mut out = Vec::new();
        Response::text(200, "a_metric 1\n")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"),
            "{text}"
        );
        assert!(text.ends_with("\r\n\r\na_metric 1\n"));
    }
}
