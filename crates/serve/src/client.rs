//! A minimal blocking HTTP client for the service's own wire format.
//!
//! Used by `asched-load`, the e2e tests and the determinism test. Like
//! the server side it speaks one-request-per-connection HTTP/1.1 with
//! `Content-Length` bodies; the response is read to EOF (the server
//! always closes).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn proto_err(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

/// Issue one request and read the full response.
///
/// `headers` are extra request headers beyond `Host` and
/// `Content-Length`. `timeout` bounds connect and each socket
/// read/write individually (not the whole exchange).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;

    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;

    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| proto_err("response has no header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| proto_err("response head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| proto_err(format!("bad status line {status_line:?}")))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}
