//! `asched-load` — load generator for `asched-serve`.
//!
//! ```text
//! asched-load (--addr HOST:PORT | --spawn WORKERS)
//!             [--requests N] [--clients N] [--seed S]
//!             [--rate RPS --duration SECS] [--arrival uniform|poisson]
//!             [--queue N] [--deadline-ms MS] [--timeout-ms MS]
//!             [--cache-mode shared|private] [--cache-file FILE]
//!             [--cache-compare LABEL]
//!             [--snapshot LABEL] [--trace FILE]
//! ```
//!
//! Default drive is closed loop: `--clients` threads push `--requests`
//! distinct bodies, retrying 503s after the server's `Retry-After`.
//! With `--rate`/`--duration` the run is open loop instead (503s
//! counted, not retried); `--arrival poisson` paces it with the seeded
//! Poisson process the fleet simulator uses (seeded by `--seed`), so a
//! real run replays a simulated scenario's arrivals. `--spawn N`
//! starts an in-process server with `N` workers on an ephemeral port —
//! handy for CI, which then needs no background process management;
//! `--queue`/`--deadline-ms` tune that spawned server. `--trace FILE`
//! (spawn mode only) streams the spawned server's full event trace —
//! request spans, engine spans, cache attribution — to FILE as JSONL,
//! ready for `asched-trace`.
//!
//! Exit status is nonzero when any connection dropped or any non-503
//! 5xx came back — shed requests must be answered with 503, never
//! hung, and nothing else may fail. `--snapshot LABEL` writes
//! `BENCH_<LABEL>.json` with throughput and latency percentiles.
//!
//! `--cache-mode`/`--cache-file` configure the spawned server's
//! schedule cache (spawn mode only). `--cache-compare LABEL` runs the
//! same closed-loop workload three times against fresh spawned servers
//! — private per-worker caches, one shared cache, and a shared cache
//! warm-started from the previous run's cache file — and writes the
//! hit-rate and latency deltas to `BENCH_<LABEL>.json`; it fails if
//! the warm run serves no warm hits.

use std::io::{BufWriter, Write};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use asched_bench::report::snapshot_json;
use asched_obs::{JsonlRecorder, NullRecorder, Recorder};
use asched_serve::{
    run_closed_loop, run_open_loop, synth_request_bodies, Arrival, CacheMode, LoadReport, Server,
    ServerConfig,
};

struct Args {
    addr: Option<String>,
    spawn: Option<usize>,
    requests: usize,
    clients: usize,
    seed: u64,
    rate: Option<f64>,
    duration_secs: u64,
    arrival: Option<String>,
    queue: usize,
    deadline_ms: Option<u64>,
    timeout_ms: u64,
    cache_mode: Option<CacheMode>,
    cache_file: Option<String>,
    cache_compare: Option<String>,
    snapshot: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        spawn: None,
        requests: 500,
        clients: 8,
        seed: 42,
        rate: None,
        duration_secs: 5,
        arrival: None,
        queue: 64,
        deadline_ms: None,
        timeout_ms: 10_000,
        cache_mode: None,
        cache_file: None,
        cache_compare: None,
        snapshot: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        macro_rules! num {
            ($name:literal) => {
                val($name)?.parse().map_err(|e| format!("{}: {e}", $name))?
            };
        }
        match flag.as_str() {
            "--addr" => args.addr = Some(val("--addr")?),
            "--spawn" => args.spawn = Some(num!("--spawn")),
            "--requests" => args.requests = num!("--requests"),
            "--clients" => args.clients = num!("--clients"),
            "--seed" => args.seed = num!("--seed"),
            "--rate" => args.rate = Some(num!("--rate")),
            "--duration" => args.duration_secs = num!("--duration"),
            "--arrival" => args.arrival = Some(val("--arrival")?),
            "--queue" => args.queue = num!("--queue"),
            "--deadline-ms" => args.deadline_ms = Some(num!("--deadline-ms")),
            "--timeout-ms" => args.timeout_ms = num!("--timeout-ms"),
            "--cache-mode" => {
                args.cache_mode = Some(
                    val("--cache-mode")?
                        .parse()
                        .map_err(|e| format!("--cache-mode: {e}"))?,
                )
            }
            "--cache-file" => args.cache_file = Some(val("--cache-file")?),
            "--cache-compare" => args.cache_compare = Some(val("--cache-compare")?),
            "--snapshot" => args.snapshot = Some(val("--snapshot")?),
            "--trace" => args.trace = Some(val("--trace")?),
            "--help" | "-h" => {
                println!(
                    "usage: asched-load (--addr HOST:PORT | --spawn WORKERS)\n\
                     \x20                  [--requests N] [--clients N] [--seed S]\n\
                     \x20                  [--rate RPS --duration SECS]\n\
                     \x20                  [--arrival uniform|poisson]\n\
                     \x20                  [--queue N] [--deadline-ms MS] [--timeout-ms MS]\n\
                     \x20                  [--cache-mode shared|private] [--cache-file FILE]\n\
                     \x20                  [--cache-compare LABEL]\n\
                     \x20                  [--snapshot LABEL] [--trace FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.addr.is_some() == args.spawn.is_some() {
        return Err("pass exactly one of --addr or --spawn".into());
    }
    if args.arrival.is_some() && args.rate.is_none() {
        return Err("--arrival shapes the open loop; it requires --rate".into());
    }
    if args.trace.is_some() && args.spawn.is_none() {
        return Err("--trace records the spawned server's events; it requires --spawn".into());
    }
    if (args.cache_mode.is_some() || args.cache_file.is_some()) && args.spawn.is_none() {
        return Err(
            "--cache-mode/--cache-file configure the spawned server; they require --spawn".into(),
        );
    }
    if args.cache_compare.is_some()
        && (args.spawn.is_none()
            || args.rate.is_some()
            || args.cache_mode.is_some()
            || args.cache_file.is_some())
    {
        return Err(
            "--cache-compare runs its own closed-loop spawns; it requires --spawn and \
             excludes --rate/--cache-mode/--cache-file"
                .into(),
        );
    }
    Ok(args)
}

fn print_report(r: &LoadReport) {
    println!(
        "sent {} ok {} retries {} (backoff {}ms) dropped {} degraded {} in {:.2}s ({:.1} rps)",
        r.sent,
        r.ok,
        r.retries,
        r.retry_backoff_ms,
        r.dropped,
        r.degraded_responses,
        r.elapsed.as_secs_f64(),
        r.ok as f64 / r.elapsed.as_secs_f64().max(1e-9),
    );
    for (code, n) in &r.status_counts {
        println!("  status {code}: {n}");
    }
    if let (Some(p50), Some(p99)) = (r.latency_us.percentile(0.5), r.latency_us.percentile(0.99)) {
        println!(
            "  latency p50 {p50}us p99 {p99}us max {}us",
            r.latency_us.max().unwrap_or(0)
        );
    }
}

/// One leg of `--cache-compare`: spawn a fresh server in the given
/// cache configuration, push the whole closed-loop workload through
/// it, and report the load report plus the engine-side hit counters.
fn compare_leg(
    args: &Args,
    bodies: &[String],
    mode: CacheMode,
    cache_file: Option<&std::path::Path>,
) -> Result<(LoadReport, Vec<(String, f64)>), String> {
    let cfg = ServerConfig {
        workers: args.spawn.unwrap_or(2).max(1),
        queue_capacity: args.queue,
        deadline_ms: args
            .deadline_ms
            .unwrap_or(ServerConfig::default().deadline_ms),
        cache_mode: mode,
        cache_file: cache_file.map(Into::into),
        ..ServerConfig::default()
    };
    let handle = Server::start(cfg, Arc::new(NullRecorder)).map_err(|e| format!("spawn: {e}"))?;
    let timeout = Duration::from_millis(args.timeout_ms.max(1));
    let report = run_closed_loop(
        handle.addr(),
        bodies,
        args.clients,
        args.deadline_ms,
        timeout,
    );
    let metrics = handle.metrics();
    let profile = metrics.profile();
    let (hits, misses) = (
        profile.counter("cache_hits"),
        profile.counter("cache_misses"),
    );
    let mut rows = vec![(
        "hit_rate".to_string(),
        hits as f64 / ((hits + misses) as f64).max(1.0),
    )];
    for (name, p) in [("latency_p50_us", 0.5), ("latency_p99_us", 0.99)] {
        if let Some(v) = report.latency_us.percentile(p) {
            rows.push((name.to_string(), v as f64));
        }
    }
    if let Some(s) = metrics.shared_cache_stats() {
        rows.push(("warm_hits".to_string(), s.warm_hits as f64));
        rows.push(("loaded".to_string(), s.loaded as f64));
        rows.push(("persisted".to_string(), s.persisted as f64));
    }
    handle.shutdown();
    Ok((report, rows))
}

/// `--cache-compare LABEL`: measure private vs shared vs warm-started
/// shared caching on the same workload, write `BENCH_<LABEL>.json`.
fn cache_compare(args: &Args, label: &str) -> ExitCode {
    let bodies = synth_request_bodies(args.requests, args.seed);
    let cache_path =
        std::env::temp_dir().join(format!("asched-cache-compare-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&cache_path);
    let legs = [
        ("private", CacheMode::Private, None),
        ("shared", CacheMode::Shared, Some(cache_path.as_path())),
        ("warm", CacheMode::Shared, Some(cache_path.as_path())),
    ];
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut warm_hits = 0.0;
    let mut failed = false;
    for (leg, mode, file) in legs {
        match compare_leg(args, &bodies, mode, file) {
            Ok((report, rows)) => {
                println!("--- {leg} ---");
                print_report(&report);
                failed |= report.dropped > 0 || report.hard_5xx() > 0;
                for (name, v) in rows {
                    if leg == "warm" && name == "warm_hits" {
                        warm_hits = v;
                    }
                    metrics.push((format!("serve.{leg}.{name}"), v));
                }
            }
            Err(e) => {
                eprintln!("asched-load: {leg} leg failed: {e}");
                let _ = std::fs::remove_file(&cache_path);
                return ExitCode::from(1);
            }
        }
    }
    let _ = std::fs::remove_file(&cache_path);
    let json = snapshot_json(label, &metrics, None);
    let path = format!("BENCH_{label}.json");
    if let Err(e) = std::fs::write(&path, json + "\n") {
        eprintln!("asched-load: cannot write {path}: {e}");
        return ExitCode::from(1);
    }
    println!("wrote {path}");
    if warm_hits == 0.0 {
        eprintln!("asched-load: FAILED — warm-started leg served no warm hits");
        return ExitCode::from(1);
    }
    if failed {
        eprintln!("asched-load: FAILED — dropped connections or non-503 5xx in a leg");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("asched-load: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(label) = &args.cache_compare {
        return cache_compare(&args, label);
    }

    // Either connect out, or spawn an in-process server to hammer.
    // With --trace the spawned server streams its event trace to a
    // JSONL file; keep a typed Arc so the BufWriter can be flushed
    // once the server (the only other holder) has shut down.
    let mut tracer: Option<Arc<JsonlRecorder<BufWriter<std::fs::File>>>> = None;
    let spawned = match args.spawn {
        None => None,
        Some(workers) => {
            let cfg = ServerConfig {
                workers: workers.max(1),
                queue_capacity: args.queue,
                deadline_ms: args
                    .deadline_ms
                    .unwrap_or(ServerConfig::default().deadline_ms),
                cache_mode: args.cache_mode.unwrap_or_default(),
                cache_file: args.cache_file.as_ref().map(Into::into),
                ..ServerConfig::default()
            };
            let rec: Arc<dyn Recorder + Send + Sync> = match &args.trace {
                None => Arc::new(NullRecorder),
                Some(path) => match std::fs::File::create(path) {
                    Ok(f) => {
                        let r = Arc::new(JsonlRecorder::new(BufWriter::new(f)));
                        tracer = Some(Arc::clone(&r));
                        r
                    }
                    Err(e) => {
                        eprintln!("asched-load: cannot create trace file {path}: {e}");
                        return ExitCode::from(1);
                    }
                },
            };
            match Server::start(cfg, rec) {
                Ok(h) => {
                    println!("spawned server on {}", h.addr());
                    Some(h)
                }
                Err(e) => {
                    eprintln!("asched-load: spawn failed: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    };
    let addr: SocketAddr = match &spawned {
        Some(h) => h.addr(),
        None => match args.addr.as_deref().unwrap().parse() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("asched-load: bad --addr: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let bodies = synth_request_bodies(args.requests, args.seed);
    let timeout = Duration::from_millis(args.timeout_ms.max(1));
    let arrival = match args.arrival.as_deref() {
        None | Some("uniform") => Arrival::Uniform,
        Some("poisson") => Arrival::Poisson { seed: args.seed },
        Some(other) => {
            eprintln!("asched-load: --arrival must be uniform or poisson, got {other:?}");
            return ExitCode::from(2);
        }
    };
    let report = match args.rate {
        None => run_closed_loop(addr, &bodies, args.clients, args.deadline_ms, timeout),
        Some(rate) => run_open_loop(
            addr,
            &bodies,
            args.clients,
            rate,
            Duration::from_secs(args.duration_secs),
            arrival,
            args.deadline_ms,
            timeout,
        ),
    };
    print_report(&report);

    if let Some(label) = &args.snapshot {
        let profile = spawned.as_ref().map(|h| h.metrics().profile());
        let json = snapshot_json(label, &report.metrics(), profile.as_ref());
        let path = format!("BENCH_{label}.json");
        if let Err(e) = std::fs::write(&path, json + "\n") {
            eprintln!("asched-load: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {path}");
    }

    if let Some(h) = spawned {
        h.shutdown();
    }
    if let Some(rec) = tracer {
        // The server's Arc is gone after shutdown; unwrap and flush.
        match Arc::try_unwrap(rec) {
            Ok(rec) => {
                let mut w = rec.into_inner();
                if let Err(e) = w.flush() {
                    eprintln!("asched-load: flushing trace failed: {e}");
                    return ExitCode::from(1);
                }
            }
            Err(_) => {
                eprintln!("asched-load: trace recorder still shared after shutdown");
                return ExitCode::from(1);
            }
        }
        println!("wrote {}", args.trace.as_deref().unwrap_or_default());
    }

    if report.dropped > 0 || report.hard_5xx() > 0 {
        eprintln!(
            "asched-load: FAILED — {} dropped connections, {} non-503 5xx",
            report.dropped,
            report.hard_5xx()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
