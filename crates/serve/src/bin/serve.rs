//! `asched-serve` — run the scheduling service.
//!
//! ```text
//! asched-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--deadline-ms MS] [--cache N]
//!              [--cache-mode shared|private] [--cache-file FILE]
//!              [--flight N] [--run-for SECS] [--trace FILE]
//! ```
//!
//! Prints `listening on ADDR` once bound. Drains gracefully when stdin
//! reaches EOF (pipe-close / Ctrl-D — the portable stand-in for
//! SIGTERM) or when `--run-for` expires, whichever comes first; a
//! final metrics document goes to stderr on the way out.

use std::io::{BufWriter, Read};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use asched_obs::{JsonlRecorder, NullRecorder, Recorder};
use asched_serve::{Server, ServerConfig};

struct Args {
    cfg: ServerConfig,
    run_for: Option<Duration>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: ServerConfig::default(),
        run_for: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.cfg.addr = val("--addr")?,
            "--workers" => {
                args.cfg.workers = val("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.cfg.queue_capacity = val("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--deadline-ms" => {
                args.cfg.deadline_ms = val("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--cache" => {
                args.cfg.cache_capacity = val("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--cache-mode" => {
                args.cfg.cache_mode = val("--cache-mode")?
                    .parse()
                    .map_err(|e| format!("--cache-mode: {e}"))?
            }
            "--cache-file" => args.cfg.cache_file = Some(val("--cache-file")?.into()),
            "--flight" => {
                args.cfg.flight_capacity = val("--flight")?
                    .parse()
                    .map_err(|e| format!("--flight: {e}"))?
            }
            "--run-for" => {
                let secs: u64 = val("--run-for")?
                    .parse()
                    .map_err(|e| format!("--run-for: {e}"))?;
                args.run_for = Some(Duration::from_secs(secs));
            }
            "--trace" => args.trace = Some(val("--trace")?),
            "--help" | "-h" => {
                println!(
                    "usage: asched-serve [--addr HOST:PORT] [--workers N] [--queue N]\n\
                     \x20                   [--deadline-ms MS] [--cache N]\n\
                     \x20                   [--cache-mode shared|private] [--cache-file FILE]\n\
                     \x20                   [--flight N] [--run-for SECS] [--trace FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("asched-serve: {e}");
            return ExitCode::from(2);
        }
    };

    let rec: Arc<dyn Recorder + Send + Sync> = match &args.trace {
        None => Arc::new(NullRecorder),
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Arc::new(JsonlRecorder::new(BufWriter::new(f))),
            Err(e) => {
                eprintln!("asched-serve: cannot open {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let handle = match Server::start(args.cfg, Arc::clone(&rec)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("asched-serve: bind failed: {e}");
            return ExitCode::from(1);
        }
    };
    println!("listening on {}", handle.addr());

    // Two drain triggers: stdin EOF (portable SIGTERM stand-in) or the
    // --run-for timer. Either way shutdown() waits for in-flight work.
    let waiter = std::thread::spawn({
        let run_for = args.run_for;
        move || {
            match run_for {
                Some(d) => std::thread::sleep(d),
                None => {
                    // Block until stdin closes.
                    let mut sink = [0u8; 256];
                    let mut stdin = std::io::stdin();
                    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                }
            }
        }
    });
    let _ = waiter.join();

    eprintln!("draining");
    let metrics = handle.metrics();
    handle.shutdown();
    let _ = rec.flush();
    eprintln!("{}", metrics.to_json());
    ExitCode::SUCCESS
}
