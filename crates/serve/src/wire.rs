//! Wire format for `POST /v1/schedule`: body → tasks, report → JSON.
//!
//! The endpoint accepts either of the two textual trace formats the
//! workspace already speaks — the corpus *manifest* grammar
//! (`asched-engine`) and the mini-RISC *IR* assembly (`asched-ir`) —
//! and auto-detects which one it was given. Responses render through
//! [`task_json`], which is deliberately free of batch-positional or
//! timing fields so that byte-for-byte comparison against a local
//! [`Engine::run_batch`](asched_engine::Engine::run_batch) reference is
//! meaningful regardless of how requests interleaved across workers.

use asched_core::LookaheadConfig;
use asched_engine::{parse_manifest, BatchReport, TaskReport, TraceTask};
use asched_graph::{MachineModel, NodeId};
use asched_ir::{build_trace_graph, parse_program, LatencyModel, ProgramKind};
use asched_obs::json::JsonObject;

use crate::http::Request;

/// The two request body formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BodyFormat {
    /// Corpus manifest lines (`dag ...` / `seam ...` / `prog ...`).
    Manifest,
    /// Mini-RISC assembly (`trace { ... }`).
    Ir,
}

/// A structured request-rejection: status + machine-readable code.
#[derive(Debug)]
pub struct WireError {
    /// HTTP status (always 4xx here).
    pub status: u16,
    /// Stable error code for the JSON body.
    pub code: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

fn bad(code: &'static str, detail: impl Into<String>) -> WireError {
    WireError {
        status: 400,
        code,
        detail: detail.into(),
    }
}

/// Guess the body format from its first meaningful token: `trace` or
/// `loop` means IR assembly, anything else is a manifest.
pub fn detect_format(body: &str) -> BodyFormat {
    for raw in body.lines() {
        let line = raw.split(['#', ';']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let first = line.split_whitespace().next().unwrap_or("");
        let first = first.split('{').next().unwrap_or("");
        return match first {
            "trace" | "loop" => BodyFormat::Ir,
            _ => BodyFormat::Manifest,
        };
    }
    BodyFormat::Manifest
}

fn machine_from_query(req: &Request) -> Result<MachineModel, WireError> {
    let w: usize = match req.query("w") {
        None => 4,
        Some(v) => v.parse().ok().filter(|w| *w >= 1).ok_or_else(|| {
            bad(
                "bad_query",
                format!("w must be a positive integer, got {v:?}"),
            )
        })?,
    };
    match req.query("units") {
        None => Ok(MachineModel::single_unit(w)),
        Some("rs6000") => Ok(MachineModel::rs6000_like(w)),
        Some(v) => {
            let n: usize = v.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                bad(
                    "bad_query",
                    format!("units must be \"rs6000\" or a positive integer, got {v:?}"),
                )
            })?;
            Ok(MachineModel::uniform(n, w))
        }
    }
}

/// Parse a `POST /v1/schedule` body into engine tasks.
///
/// Honors the `X-Asched-Format` header (`manifest` / `ir`) as an
/// override of [`detect_format`]. Rejects empty corpora, loop programs
/// (the service schedules traces) and batches larger than `max_tasks`.
pub fn parse_schedule_request(
    req: &Request,
    max_tasks: usize,
) -> Result<Vec<TraceTask>, WireError> {
    let body = String::from_utf8_lossy(&req.body);
    let format = match req.header("x-asched-format") {
        None => detect_format(&body),
        Some("manifest") => BodyFormat::Manifest,
        Some("ir") => BodyFormat::Ir,
        Some(v) => {
            return Err(bad(
                "bad_format_header",
                format!("X-Asched-Format must be \"manifest\" or \"ir\", got {v:?}"),
            ))
        }
    };

    let tasks = match format {
        BodyFormat::Manifest => {
            parse_manifest(&body).map_err(|e| bad("bad_manifest", e.to_string()))?
        }
        BodyFormat::Ir => {
            let prog = parse_program(&body).map_err(|e| bad("bad_ir", e.to_string()))?;
            if prog.kind == ProgramKind::Loop {
                return Err(bad(
                    "loop_not_servable",
                    "loop programs are not served here; submit a trace{...} program",
                ));
            }
            let machine = machine_from_query(req)?;
            let graph = build_trace_graph(&prog, &LatencyModel::fig3());
            let label = req
                .query("label")
                .map(str::to_string)
                .unwrap_or_else(|| format!("ir:w{}", machine.window));
            let mut task = TraceTask::new(label, graph, machine);
            task.config = LookaheadConfig::default();
            vec![task]
        }
    };

    if tasks.is_empty() {
        return Err(bad("empty_request", "no tasks in request body"));
    }
    if tasks.len() > max_tasks {
        return Err(bad(
            "too_many_tasks",
            format!(
                "{} tasks exceeds the per-request cap of {max_tasks}",
                tasks.len()
            ),
        ));
    }
    Ok(tasks)
}

fn ids_json(ids: &[NodeId]) -> String {
    let mut s = String::from("[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&id.0.to_string());
    }
    s.push(']');
    s
}

/// Render one task report as JSON.
///
/// Deterministic for a given task input + outcome: no batch index, no
/// fingerprints, no timings. `blocks` is the emitted per-block node
/// orders (the compiler's actual output), `permutation` the predicted
/// global issue order.
pub fn task_json(t: &TaskReport) -> String {
    let mut o = JsonObject::new();
    o.str("label", &t.label)
        .str("outcome", t.outcome.name())
        .u64("makespan", t.makespan);
    match &t.result {
        Some(r) => {
            o.raw("permutation", &ids_json(&r.permutation));
            let mut blocks = String::from("[");
            for (i, order) in r.block_orders.iter().enumerate() {
                if i > 0 {
                    blocks.push(',');
                }
                blocks.push_str(&ids_json(order));
            }
            blocks.push(']');
            o.raw("blocks", &blocks);
        }
        None => {
            o.raw("permutation", "null").raw("blocks", "null");
        }
    }
    if let Some(e) = &t.error {
        o.str("error", e);
    }
    o.finish()
}

/// Render the full `POST /v1/schedule` response body.
pub fn schedule_response_json(report: &BatchReport, deadline_ms: u64, step_budget: u64) -> String {
    let mut o = JsonObject::new();
    o.str("schema", "asched-serve-v1")
        .u64("count", report.tasks.len() as u64)
        .u64("scheduled", report.scheduled)
        .u64("cached", report.cached)
        .u64("degraded", report.degraded)
        .u64("failed", report.failed)
        .u64("deadline_ms", deadline_ms)
        .u64("step_budget", step_budget);
    let mut tasks = String::from("[");
    for (i, t) in report.tasks.iter().enumerate() {
        if i > 0 {
            tasks.push(',');
        }
        tasks.push_str(&task_json(t));
    }
    tasks.push(']');
    o.raw("tasks", &tasks);
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(body: &str, target_query: &[(&str, &str)], headers: &[(&str, &str)]) -> Request {
        Request {
            method: "POST".into(),
            path: "/v1/schedule".into(),
            query: target_query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
                .collect(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn detects_formats() {
        assert_eq!(
            detect_format("# c\n\ndag nodes=8 w=2"),
            BodyFormat::Manifest
        );
        assert_eq!(detect_format("trace {\n}"), BodyFormat::Ir);
        assert_eq!(detect_format("trace{ b0: }"), BodyFormat::Ir);
        assert_eq!(detect_format("loop { }"), BodyFormat::Ir);
        assert_eq!(detect_format(""), BodyFormat::Manifest);
    }

    #[test]
    fn parses_manifest_and_ir() {
        let req = post(
            "dag nodes=8 seed=1 w=2\nseam blocks=3 seed=2 w=4\n",
            &[],
            &[],
        );
        let tasks = parse_schedule_request(&req, 16).unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].machine.window, 2);

        let ir = "trace {\n block A {\n  li gr1 = 5\n  add gr2 = gr1, gr1\n }\n}\n";
        let req = post(ir, &[("w", "8")], &[]);
        let tasks = parse_schedule_request(&req, 16).unwrap();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].machine.window, 8);
        assert_eq!(tasks[0].label, "ir:w8");
    }

    #[test]
    fn rejects_bad_bodies() {
        let cases = [
            post("", &[], &[]),
            post("dag nodes=zzz w=2\n", &[], &[]),
            post("loop {\n block A {\n li gr1 = 5\n }\n}", &[], &[]),
            post(
                "trace {\n block A {\n li gr1 = 5\n }\n}",
                &[("w", "0")],
                &[],
            ),
            post("dag nodes=8 w=2", &[], &[("X-Asched-Format", "xml")]),
        ];
        for req in cases {
            let err = parse_schedule_request(&req, 16).unwrap_err();
            assert_eq!(err.status, 400, "{}: {}", err.code, err.detail);
        }
        // Format override forces the wrong parser → 400 rather than a guess.
        let req = post("dag nodes=8 w=2", &[], &[("X-Asched-Format", "ir")]);
        assert!(parse_schedule_request(&req, 16).is_err());
        // Cap on batch size.
        let req = post("dag nodes=8 seed=1 w=2\ndag nodes=8 seed=2 w=2\n", &[], &[]);
        let err = parse_schedule_request(&req, 1).unwrap_err();
        assert_eq!(err.code, "too_many_tasks");
    }

    #[test]
    fn task_json_is_positionless() {
        use asched_engine::{Engine, EngineConfig};
        use asched_obs::NULL;
        let req = post("dag nodes=8 seed=1 w=2\n", &[], &[]);
        let tasks = parse_schedule_request(&req, 16).unwrap();
        let engine = Engine::new(EngineConfig::default());
        let report = engine.run_batch(&tasks, &NULL);
        let json = task_json(&report.tasks[0]);
        assert!(json.contains(r#""outcome":"scheduled""#), "{json}");
        assert!(!json.contains("index"), "{json}");
        assert!(!json.contains("fingerprint"), "{json}");
        let body = schedule_response_json(&report, 2000, 1000);
        assert!(body.contains(r#""schema":"asched-serve-v1""#), "{body}");
        assert!(body.contains(r#""count":1"#), "{body}");
    }
}
