//! Prometheus text exposition (format version 0.0.4).
//!
//! A tiny hand-rolled renderer: `# HELP` / `# TYPE` comment pairs,
//! `name{label="v"} value` sample lines, `\n` line endings. Histograms
//! are rendered from [`Histogram`]'s fixed power-of-two buckets:
//! a sample recorded in microseconds lands in bucket `[2^(i-1), 2^i-1]`
//! µs, which the exposition publishes as a cumulative bucket with
//! `le = (2^i - 1) / 1e6` seconds. The bucket *boundaries* are thus
//! `1e-6 * (2^i - 1)` for `i = 0..=64` — documented here once and
//! mirrored by `docs/observability.md`; only non-empty buckets are
//! emitted (cumulative counts stay correct, scrape size stays small).

use asched_obs::Histogram;

/// Accumulates one exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Exposition::default()
    }

    /// Finish, yielding the document text.
    pub fn finish(self) -> String {
        self.out
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                // Label values here are worker indices and bucket
                // bounds; escape the reserved characters anyway.
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// A counter with one sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// A gauge with one sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// A counter family: one sample per `(labels, value)` row.
    pub fn counter_family(&mut self, name: &str, help: &str, rows: &[(Vec<(&str, String)>, u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in rows {
            let borrowed: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.sample(name, &borrowed, *value as f64);
        }
    }

    /// A gauge family: one sample per `(labels, value)` row.
    pub fn gauge_family(&mut self, name: &str, help: &str, rows: &[(Vec<(&str, String)>, f64)]) {
        self.header(name, help, "gauge");
        for (labels, value) in rows {
            let borrowed: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            self.sample(name, &borrowed, *value);
        }
    }

    /// A histogram whose samples were recorded in **microseconds**,
    /// exposed in **seconds** per Prometheus convention. Bucket bounds
    /// come from [`Histogram`]'s fixed power-of-two boundaries (see the
    /// module docs); only non-empty buckets are emitted, plus the
    /// mandatory `+Inf` bucket, `_sum` and `_count`.
    pub fn histogram_us(&mut self, name: &str, help: &str, h: &Histogram) {
        self.header(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (_lo, hi, n) in h.nonzero_buckets() {
            cumulative += n;
            let le = format_value(hi as f64 / 1e6);
            self.sample(&bucket, &[("le", le.as_str())], cumulative as f64);
        }
        self.sample(&bucket, &[("le", "+Inf")], h.count() as f64);
        self.sample(&format!("{name}_sum"), &[], h.sum() as f64 / 1e6);
        self.sample(&format!("{name}_count"), &[], h.count() as f64);
    }
}

/// Render a sample value: integral floats without a trailing `.0`
/// (Prometheus accepts either; integers are easier on the eyes and on
/// golden tests), everything else via `f64` shortest display.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Check that `text` parses as Prometheus text exposition: every line
/// is empty, a `#` comment, or `name{labels} value` with a float
/// value. Returns the number of sample lines. Used by tests and the
/// CI smoke job; not a full parser, but catches malformed labels,
/// missing values and stray bytes.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.rfind(' ') {
            Some(pos) => (&line[..pos], &line[pos + 1..]),
            None => return Err(format!("line {lineno}: no value: {line:?}")),
        };
        let name = match name_part.find('{') {
            None => name_part,
            Some(open) => {
                if !name_part.ends_with('}') {
                    return Err(format!("line {lineno}: unterminated labels: {line:?}"));
                }
                let labels = &name_part[open + 1..name_part.len() - 1];
                for pair in labels.split(',') {
                    let Some((k, v)) = pair.split_once('=') else {
                        return Err(format!("line {lineno}: bad label {pair:?}"));
                    };
                    if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("line {lineno}: unquoted label value {pair:?}"));
                    }
                    if k.is_empty() || !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                        return Err(format!("line {lineno}: bad label name {k:?}"));
                    }
                }
                &name_part[..open]
            }
        };
        let valid_name = !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit());
        if !valid_name {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        if value_part != "+Inf" && value_part != "-Inf" && value_part.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: bad value {value_part:?}"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges() {
        let mut e = Exposition::new();
        e.counter("asched_requests_done_total", "Requests answered.", 42);
        e.gauge("asched_queue_depth", "Queued connections.", 3.0);
        let text = e.finish();
        assert!(text.contains("# TYPE asched_requests_done_total counter\n"));
        assert!(text.contains("asched_requests_done_total 42\n"));
        assert!(text.contains("asched_queue_depth 3\n"));
        assert_eq!(validate_exposition(&text).unwrap(), 2);
    }

    #[test]
    fn renders_labeled_families() {
        let mut e = Exposition::new();
        e.counter_family(
            "asched_worker_cache_hits_total",
            "Cache hits per worker.",
            &[
                (vec![("worker", "0".to_string())], 5),
                (vec![("worker", "1".to_string())], 7),
            ],
        );
        let text = e.finish();
        assert!(text.contains("asched_worker_cache_hits_total{worker=\"0\"} 5\n"));
        assert!(text.contains("asched_worker_cache_hits_total{worker=\"1\"} 7\n"));
        assert_eq!(validate_exposition(&text).unwrap(), 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_seconds() {
        let mut h = Histogram::new();
        h.record(1); // bucket [1,1] -> le 1e-6
        h.record(3); // bucket [2,3] -> le 3e-6
        h.record(3);
        let mut e = Exposition::new();
        e.histogram_us("asched_request_duration_seconds", "Latency.", &h);
        let text = e.finish();
        assert!(
            text.contains("asched_request_duration_seconds_bucket{le=\"0.000001\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("asched_request_duration_seconds_bucket{le=\"0.000003\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("asched_request_duration_seconds_bucket{le=\"+Inf\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("asched_request_duration_seconds_count 3\n"),
            "{text}"
        );
        // sum = 7 µs = 7e-6 s
        assert!(
            text.contains("asched_request_duration_seconds_sum 0.000007\n"),
            "{text}"
        );
        assert!(validate_exposition(&text).is_ok());
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("no_value_here\n").is_err());
        assert!(validate_exposition("bad{label} 1\n").is_err());
        assert!(validate_exposition("bad{l=unquoted} 1\n").is_err());
        assert!(validate_exposition("1leading_digit 2\n").is_err());
        assert!(validate_exposition("ok_metric notanumber\n").is_err());
        assert!(validate_exposition("# a comment\nok_metric 1\n").is_ok());
    }
}
