//! # asched-serve — the scheduling service
//!
//! A hermetic, `std`-only HTTP/1.1 service that exposes the batch
//! scheduling [`Engine`](asched_engine::Engine) over the network, plus
//! `asched-load`, its load generator. No async runtime, no external
//! HTTP crate: a bounded accept queue feeds a small pool of worker
//! threads, each owning a long-lived
//! [`SchedCtx`](asched_graph::SchedCtx) and a cache-backed engine.
//!
//! Endpoints:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/schedule` | schedule a manifest- or IR-format trace batch |
//! | `GET /healthz` | liveness + drain state |
//! | `GET /metrics` | counters, latency percentiles, engine profile (JSON; `?format=prometheus` for text exposition) |
//! | `GET /admin/flight` | flight recorder: last N request summaries |
//! | `POST /admin/drain` | begin graceful drain |
//!
//! Overload and failure policy, in one paragraph: when the accept
//! queue is full, requests are **shed** with `503` + `Retry-After`
//! (never queued unboundedly, never hung); when a request's deadline
//! is near, its remaining time becomes a step budget and the scheduler
//! **degrades** to the per-block Rank fallback (a valid schedule,
//! flagged, not an error); when a handler panics, the worker answers
//! `500` and lives on; when the server drains, everything accepted is
//! finished first. See `docs/serve.md` for the wire format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod client;
pub mod flight;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod policy;
pub mod prom;
pub mod server;
pub mod wire;

pub use arrival::{exp_gap_secs, poisson_offsets, portable_ln, uniform_offsets};
pub use client::{http_request, ClientResponse};
pub use flight::{FlightRecorder, RequestSummary};
pub use loadgen::{run_closed_loop, run_open_loop, synth_request_bodies, Arrival, LoadReport};
pub use metrics::{ServeMetrics, WorkerCacheStats};
pub use policy::{Admission, AdmissionPolicy, DeadlinePolicy};
pub use prom::validate_exposition;
pub use server::{CacheMode, Server, ServerConfig, ServerHandle};
pub use wire::{task_json, BodyFormat};
