//! Seeded open-loop arrival processes, shared between the real load
//! generator (`asched-load --arrival poisson`) and the fleet simulator
//! (`asched-fleet`), so a simulated scenario and a live load run can
//! offer the server the *same* arrival sequence from the same seed.
//!
//! Determinism is the contract: the generators use only the hermetic
//! `rand` shim and [`portable_ln`] (a software log, no libm), so a
//! `(rate, seed)` pair produces bit-identical inter-arrival gaps on
//! every platform. The simulator feeds the gaps to its virtual clock;
//! the load generator turns them into wall-clock pacing offsets.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Natural logarithm computed in software, bit-stable across
/// platforms.
///
/// `f64::ln` routes to the platform libm, whose last-ulp behavior
/// varies between hosts — enough to let one sample cross a histogram
/// bucket boundary and break byte-identical reports. This
/// implementation decomposes `x = m * 2^e` with `m` in `[1, 2)` and
/// evaluates `ln(m)` via `atanh`: with `t = (m - sqrt(2)/2*2)/(m + …)`
/// reduced so `|t| <= (sqrt(2)-1)/(sqrt(2)+1)`, a 7-term odd
/// polynomial converges to well under 1e-15 relative error — identical
/// everywhere because it is nothing but IEEE-754 mul/add/div.
///
/// Domain: finite `x > 0`. Returns `f64::NEG_INFINITY` for `x <= 0`
/// (the one case the samplers can feed it is `x = 0`, which they
/// guard).
pub fn portable_ln(x: f64) -> f64 {
    if x <= 0.0 {
        return f64::NEG_INFINITY;
    }
    const LN2: f64 = core::f64::consts::LN_2;
    const SQRT2: f64 = core::f64::consts::SQRT_2;
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    // Subnormals: renormalize by scaling up 2^52 first.
    if e == -1023 {
        let scaled = x * f64::from_bits(0x4330_0000_0000_0000); // 2^52
        let sbits = scaled.to_bits();
        e = ((sbits >> 52) & 0x7ff) as i64 - 1023 - 52;
        m = f64::from_bits((sbits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    }
    // Center the mantissa around 1 (use sqrt(2) split so |t| is small).
    if m > SQRT2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // ln(m) = 2*atanh(t) = 2t * (1 + t²/3 + t⁴/5 + ...). With
    // |t| <= (sqrt2-1)/(sqrt2+1) the t¹⁸ tail is < 1e-15 relative.
    let series = 1.0
        + t2 * (1.0 / 3.0
            + t2 * (1.0 / 5.0
                + t2 * (1.0 / 7.0
                    + t2 * (1.0 / 9.0
                        + t2 * (1.0 / 11.0
                            + t2 * (1.0 / 13.0 + t2 * (1.0 / 15.0 + t2 * (1.0 / 17.0))))))));
    2.0 * t * series + e as f64 * LN2
}

/// One exponential inter-arrival gap for a Poisson process of `rate`
/// events per second, in seconds. Inverse-CDF sampling:
/// `-ln(1 - U) / rate` with `U` uniform in `[0, 1)`, guarded so the
/// gap is always finite and strictly positive.
pub fn exp_gap_secs(rng: &mut StdRng, rate: f64) -> f64 {
    let rate = rate.max(1e-9);
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1]; clamp away from 0 so ln stays finite.
    -portable_ln((1.0 - u).max(1e-300)) / rate
}

/// The arrival schedule of `n` requests offered at `rate` requests per
/// second from seed `seed`, as offsets from the start of the run.
///
/// This is *the* Poisson arrival process: `asched-load --arrival
/// poisson --seed N` paces real requests at these offsets, and
/// `asched-fleet` advances its virtual clock through the identical
/// sequence, so measured and simulated runs see the same traffic.
pub fn poisson_offsets(rate: f64, n: usize, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut offsets = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        t += exp_gap_secs(&mut rng, rate);
        offsets.push(Duration::from_secs_f64(t));
    }
    offsets
}

/// Uniform (fixed-interval) pacing offsets: request `i` is due at
/// `i / rate` seconds. The pre-`--arrival` behavior of `asched-load`'s
/// open loop, kept as the default.
pub fn uniform_offsets(rate: f64, n: usize) -> Vec<Duration> {
    let rate = rate.max(1e-9);
    (0..n)
        .map(|i| Duration::from_secs_f64(i as f64 / rate))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_ln_matches_libm_closely() {
        for &x in &[
            1e-12, 0.1, 0.5, 0.9999, 1.0, 1.5, 2.0, 3.25, 10.0, 1e6, 1e300,
        ] {
            let got = portable_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= want.abs().max(1.0) * 1e-14,
                "ln({x}): got {got}, libm {want}"
            );
        }
        assert_eq!(portable_ln(0.0), f64::NEG_INFINITY);
        assert_eq!(portable_ln(-1.0), f64::NEG_INFINITY);
        // Subnormal inputs stay finite and accurate.
        let sub = f64::from_bits(1) * 1e10;
        assert!((portable_ln(sub) - sub.ln()).abs() < 1e-10);
    }

    #[test]
    fn poisson_offsets_are_seed_deterministic_and_rate_shaped() {
        let a = poisson_offsets(100.0, 1000, 7);
        let b = poisson_offsets(100.0, 1000, 7);
        assert_eq!(a, b);
        assert_ne!(a, poisson_offsets(100.0, 1000, 8));
        // Monotone non-decreasing, strictly positive gaps.
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
        }
        // 1000 arrivals at 100/s should take about 10s of offered time;
        // the Poisson total has std ~ sqrt(1000)/100 = 0.32s, so ±20%
        // is a >6-sigma bound — effectively a determinism check, not a
        // statistical one.
        let total = a.last().unwrap().as_secs_f64();
        assert!((8.0..12.0).contains(&total), "total {total}");
    }

    #[test]
    fn uniform_offsets_pace_evenly() {
        let u = uniform_offsets(200.0, 5);
        assert_eq!(u[0], Duration::ZERO);
        assert_eq!(u[4], Duration::from_millis(20));
    }
}
