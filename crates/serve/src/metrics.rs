//! Service-level metrics: the state behind `GET /metrics`.
//!
//! [`ServeMetrics`] is a thread-safe [`Recorder`]: every worker (and
//! the accept thread) records ordinary `asched-obs` events into it —
//! the new `req_accept` / `req_shed` / `req_done` service events plus
//! everything the engine emits per batch (`cache_query`, `task_done`,
//! timed passes) — and it folds them into a [`RunProfile`] under a
//! mutex. Request latencies additionally land in a dedicated
//! microsecond histogram so `/metrics` can report p50/p99 without a
//! full event log. Cheap gauges (queue depth, totals) are atomics so
//! the accept path never takes the profile lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use asched_engine::{SharedCacheStats, SharedScheduleCache};
use asched_obs::json::JsonObject;
use asched_obs::{Event, Histogram, Recorder, RunProfile};

use crate::prom::Exposition;

/// Per-worker schedule-cache counters (monotonic since server start).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerCacheStats {
    /// Cache hits this worker's engine reported.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// FIFO evictions.
    pub evictions: u64,
}

impl WorkerCacheStats {
    /// Hit rate over this worker's queries (0.0 before any query).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Aggregated service metrics; one instance per server, shared by every
/// thread. See the module docs for the split between atomics and the
/// profile.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    queue_depth: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    done: AtomicU64,
    tasks: AtomicU64,
    degraded_tasks: AtomicU64,
    failed_tasks: AtomicU64,
    latency_us: Mutex<Histogram>,
    profile: Mutex<RunProfile>,
    workers: Mutex<Vec<WorkerCacheStats>>,
    /// The server's process-wide cache, when it runs in shared mode;
    /// both renderers snapshot its stats live instead of folding
    /// per-batch deltas.
    shared_cache: OnceLock<Arc<SharedScheduleCache>>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics; the uptime clock starts now.
    pub fn new() -> Self {
        ServeMetrics {
            started: Instant::now(),
            queue_depth: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            done: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            degraded_tasks: AtomicU64::new(0),
            failed_tasks: AtomicU64::new(0),
            latency_us: Mutex::new(Histogram::new()),
            profile: Mutex::new(RunProfile::new()),
            workers: Mutex::new(Vec::new()),
            shared_cache: OnceLock::new(),
        }
    }

    /// Attach the server's shared cache so `/metrics` reports its
    /// counters. Later calls are ignored (one cache per server).
    pub fn attach_shared_cache(&self, cache: Arc<SharedScheduleCache>) {
        let _ = self.shared_cache.set(cache);
    }

    /// Snapshot of the shared cache's counters (`None` when the server
    /// runs private per-worker caches, or caching is off).
    pub fn shared_cache_stats(&self) -> Option<SharedCacheStats> {
        self.shared_cache.get().map(|c| c.stats())
    }

    /// Set the queue-depth gauge (the queue mutex owner knows the len).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Current queue-depth gauge.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Connections accepted into the queue so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections shed with 503 so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests answered (any status) so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Tally one batch's task outcomes.
    pub fn note_tasks(&self, total: u64, degraded: u64, failed: u64) {
        self.tasks.fetch_add(total, Ordering::Relaxed);
        self.degraded_tasks.fetch_add(degraded, Ordering::Relaxed);
        self.failed_tasks.fetch_add(failed, Ordering::Relaxed);
    }

    /// Add one batch's schedule-cache deltas to worker `worker`'s
    /// counters (the slot table grows on first sight of a worker).
    pub fn note_worker_cache(&self, worker: usize, hits: u64, misses: u64, evictions: u64) {
        let mut w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        if w.len() <= worker {
            w.resize(worker + 1, WorkerCacheStats::default());
        }
        w[worker].hits += hits;
        w[worker].misses += misses;
        w[worker].evictions += evictions;
    }

    /// Snapshot of per-worker schedule-cache counters, indexed by
    /// worker.
    pub fn worker_cache_stats(&self) -> Vec<WorkerCacheStats> {
        self.workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Clone the aggregated event profile.
    pub fn profile(&self) -> RunProfile {
        self.profile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Request-latency percentile in microseconds (`None` before the
    /// first completed request).
    pub fn latency_percentile_us(&self, p: f64) -> Option<u64> {
        self.latency_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .percentile(p)
    }

    /// Render the `GET /metrics` document.
    pub fn to_json(&self) -> String {
        let uptime = self.started.elapsed();
        let done = self.done();
        let lat = self.latency_us.lock().unwrap_or_else(|e| e.into_inner());
        let mut latency = JsonObject::new();
        latency
            .u64("count", lat.count())
            .opt_u64("p50_us", lat.percentile(0.5))
            .opt_u64("p99_us", lat.percentile(0.99))
            .opt_u64("max_us", lat.max());
        match lat.mean() {
            Some(m) => latency.f64("mean_us", m),
            None => latency.opt_u64("mean_us", None),
        };
        drop(lat);
        let profile = self.profile();
        let mut tasks = JsonObject::new();
        tasks
            .u64("total", self.tasks.load(Ordering::Relaxed))
            .u64("degraded", self.degraded_tasks.load(Ordering::Relaxed))
            .u64("failed", self.failed_tasks.load(Ordering::Relaxed))
            .u64("cache_hits", profile.counter("cache_hits"))
            .u64("cache_misses", profile.counter("cache_misses"));
        let mut workers = String::from("[");
        for (i, w) in self.worker_cache_stats().iter().enumerate() {
            if i > 0 {
                workers.push(',');
            }
            let mut wo = JsonObject::new();
            wo.u64("worker", i as u64)
                .u64("cache_hits", w.hits)
                .u64("cache_misses", w.misses)
                .u64("cache_evictions", w.evictions)
                .f64("hit_rate", w.hit_rate());
            workers.push_str(&wo.finish());
        }
        workers.push(']');
        let mut o = JsonObject::new();
        o.str("schema", "asched-serve-metrics-v1")
            .u64("uptime_ms", uptime.as_millis() as u64)
            .u64("queue_depth", self.queue_depth() as u64)
            .u64("accepted", self.accepted())
            .u64("shed", self.shed())
            .u64("done", done)
            .f64(
                "throughput_rps",
                done as f64 / uptime.as_secs_f64().max(1e-9),
            );
        o.raw("latency", &latency.finish());
        o.raw("tasks", &tasks.finish());
        o.raw("workers", &workers);
        if let Some(s) = self.shared_cache_stats() {
            let mut sc = JsonObject::new();
            sc.u64("resident", s.resident)
                .u64("capacity", s.capacity)
                .u64("shards", s.shards)
                .u64("hits", s.hits)
                .u64("misses", s.misses)
                .u64("evictions", s.evictions)
                .f64("hit_rate", s.hit_rate())
                .u64("warm_hits", s.warm_hits)
                .u64("loaded", s.loaded)
                .u64("persisted", s.persisted);
            o.raw("shared_cache", &sc.finish());
        }
        o.raw("profile", &profile.to_json());
        o.finish()
    }

    /// Render the `GET /metrics?format=prometheus` document (text
    /// exposition 0.0.4). Metric names, types and the histogram bucket
    /// bounds are documented in `docs/observability.md`.
    pub fn to_prometheus(&self) -> String {
        let mut e = Exposition::new();
        e.gauge(
            "asched_uptime_seconds",
            "Seconds since the server started.",
            self.started.elapsed().as_secs_f64(),
        );
        e.gauge(
            "asched_queue_depth",
            "Accepted connections waiting for a worker.",
            self.queue_depth() as f64,
        );
        e.counter(
            "asched_requests_accepted_total",
            "Connections accepted into the queue.",
            self.accepted(),
        );
        e.counter(
            "asched_requests_shed_total",
            "Connections shed with 503 because the queue was full.",
            self.shed(),
        );
        e.counter(
            "asched_requests_done_total",
            "Requests answered (any status).",
            self.done(),
        );
        e.counter(
            "asched_tasks_total",
            "Scheduling tasks processed.",
            self.tasks.load(Ordering::Relaxed),
        );
        e.counter(
            "asched_tasks_degraded_total",
            "Tasks degraded to the per-block rank fallback.",
            self.degraded_tasks.load(Ordering::Relaxed),
        );
        e.counter(
            "asched_tasks_failed_total",
            "Tasks that produced no schedule.",
            self.failed_tasks.load(Ordering::Relaxed),
        );
        let workers = self.worker_cache_stats();
        let label = |i: usize| vec![("worker", i.to_string())];
        e.counter_family(
            "asched_worker_cache_hits_total",
            "Schedule-cache hits per worker.",
            &workers
                .iter()
                .enumerate()
                .map(|(i, w)| (label(i), w.hits))
                .collect::<Vec<_>>(),
        );
        e.counter_family(
            "asched_worker_cache_misses_total",
            "Schedule-cache misses per worker.",
            &workers
                .iter()
                .enumerate()
                .map(|(i, w)| (label(i), w.misses))
                .collect::<Vec<_>>(),
        );
        e.counter_family(
            "asched_worker_cache_evictions_total",
            "Schedule-cache evictions per worker.",
            &workers
                .iter()
                .enumerate()
                .map(|(i, w)| (label(i), w.evictions))
                .collect::<Vec<_>>(),
        );
        e.gauge_family(
            "asched_worker_cache_hit_rate",
            "Schedule-cache hit rate per worker (0 before any query).",
            &workers
                .iter()
                .enumerate()
                .map(|(i, w)| (label(i), w.hit_rate()))
                .collect::<Vec<_>>(),
        );
        if let Some(s) = self.shared_cache_stats() {
            e.gauge(
                "asched_shared_cache_resident",
                "Entries resident in the process-wide schedule cache.",
                s.resident as f64,
            );
            e.gauge(
                "asched_shared_cache_capacity",
                "Capacity of the process-wide schedule cache.",
                s.capacity as f64,
            );
            e.gauge(
                "asched_shared_cache_shards",
                "Shard count of the process-wide schedule cache.",
                s.shards as f64,
            );
            e.counter(
                "asched_shared_cache_hits_total",
                "Shared schedule-cache hits across all workers.",
                s.hits,
            );
            e.counter(
                "asched_shared_cache_misses_total",
                "Shared schedule-cache misses across all workers.",
                s.misses,
            );
            e.counter(
                "asched_shared_cache_evictions_total",
                "Shared schedule-cache FIFO evictions.",
                s.evictions,
            );
            e.gauge(
                "asched_shared_cache_hit_rate",
                "Shared schedule-cache hit rate (0 before any query).",
                s.hit_rate(),
            );
            e.counter(
                "asched_shared_cache_warm_hits_total",
                "Hits served by entries loaded from the cache file.",
                s.warm_hits,
            );
            e.counter(
                "asched_shared_cache_loaded_total",
                "Entries loaded from the cache file at warm-start.",
                s.loaded,
            );
            e.counter(
                "asched_shared_cache_persisted_total",
                "Records appended to the cache file by this process.",
                s.persisted,
            );
        }
        let lat = self
            .latency_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        e.histogram_us(
            "asched_request_duration_seconds",
            "Accept-to-response request latency.",
            &lat,
        );
        e.finish()
    }
}

impl Recorder for ServeMetrics {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event<'_>) {
        match *event {
            Event::ReqAccept { .. } => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Event::ReqShed { .. } => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            Event::ReqDone { nanos, .. } => {
                self.done.fetch_add(1, Ordering::Relaxed);
                self.latency_us
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(nanos / 1_000);
            }
            _ => {}
        }
        self.profile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .absorb(event);
    }

    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_and_renders() {
        let m = ServeMetrics::new();
        m.record(&Event::ReqAccept { queue_depth: 1 });
        m.record(&Event::ReqDone {
            status: 200,
            nanos: 3_000_000,
            span: None,
        });
        m.record(&Event::ReqShed { queue_depth: 8 });
        m.note_tasks(5, 1, 0);
        m.set_queue_depth(2);
        assert_eq!(m.accepted(), 1);
        assert_eq!(m.done(), 1);
        assert_eq!(m.shed(), 1);
        assert_eq!(m.latency_percentile_us(0.5), Some(3_000));
        let json = m.to_json();
        assert!(
            json.contains(r#""schema":"asched-serve-metrics-v1""#),
            "{json}"
        );
        assert!(json.contains(r#""queue_depth":2"#), "{json}");
        assert!(json.contains(r#""shed":1"#), "{json}");
        assert!(json.contains(r#""degraded":1"#), "{json}");
        assert!(json.contains(r#""p99_us":"#), "{json}");
        // The profile saw the service events through the shared schema.
        assert_eq!(m.profile().counter("req_done"), 1);
        assert_eq!(m.profile().counter("req_shed"), 1);
    }

    #[test]
    fn worker_cache_counters_fold_and_render() {
        let m = ServeMetrics::new();
        m.note_worker_cache(1, 3, 1, 0); // out-of-order first sight
        m.note_worker_cache(0, 2, 2, 1);
        m.note_worker_cache(1, 1, 0, 0);
        let stats = m.worker_cache_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(
            stats[0],
            WorkerCacheStats {
                hits: 2,
                misses: 2,
                evictions: 1
            }
        );
        assert_eq!(
            stats[1],
            WorkerCacheStats {
                hits: 4,
                misses: 1,
                evictions: 0
            }
        );
        assert!((stats[1].hit_rate() - 0.8).abs() < 1e-9);

        let json = m.to_json();
        assert!(
            json.contains(r#""workers":[{"worker":0,"cache_hits":2"#),
            "{json}"
        );
        assert!(json.contains(r#""worker":1,"cache_hits":4"#), "{json}");
    }

    #[test]
    fn prometheus_rendering_is_valid_exposition() {
        let m = ServeMetrics::new();
        m.record(&Event::ReqAccept { queue_depth: 1 });
        m.record(&Event::ReqDone {
            status: 200,
            nanos: 2_000_000,
            span: Some(1),
        });
        m.note_tasks(4, 0, 0);
        m.note_worker_cache(0, 3, 1, 0);
        let text = m.to_prometheus();
        crate::prom::validate_exposition(&text)
            .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
        assert!(text.contains("asched_requests_done_total 1\n"), "{text}");
        assert!(
            text.contains("asched_worker_cache_hit_rate{worker=\"0\"} 0.75\n"),
            "{text}"
        );
        assert!(
            text.contains("asched_request_duration_seconds_count 1\n"),
            "{text}"
        );
        assert!(
            text.contains("asched_request_duration_seconds_bucket{le=\"+Inf\"} 1\n"),
            "{text}"
        );
    }
}
