//! Service-level metrics: the state behind `GET /metrics`.
//!
//! [`ServeMetrics`] is a thread-safe [`Recorder`]: every worker (and
//! the accept thread) records ordinary `asched-obs` events into it —
//! the new `req_accept` / `req_shed` / `req_done` service events plus
//! everything the engine emits per batch (`cache_query`, `task_done`,
//! timed passes) — and it folds them into a [`RunProfile`] under a
//! mutex. Request latencies additionally land in a dedicated
//! microsecond histogram so `/metrics` can report p50/p99 without a
//! full event log. Cheap gauges (queue depth, totals) are atomics so
//! the accept path never takes the profile lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use asched_obs::json::JsonObject;
use asched_obs::{Event, Histogram, Recorder, RunProfile};

/// Aggregated service metrics; one instance per server, shared by every
/// thread. See the module docs for the split between atomics and the
/// profile.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    queue_depth: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    done: AtomicU64,
    tasks: AtomicU64,
    degraded_tasks: AtomicU64,
    failed_tasks: AtomicU64,
    latency_us: Mutex<Histogram>,
    profile: Mutex<RunProfile>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics; the uptime clock starts now.
    pub fn new() -> Self {
        ServeMetrics {
            started: Instant::now(),
            queue_depth: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            done: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            degraded_tasks: AtomicU64::new(0),
            failed_tasks: AtomicU64::new(0),
            latency_us: Mutex::new(Histogram::new()),
            profile: Mutex::new(RunProfile::new()),
        }
    }

    /// Set the queue-depth gauge (the queue mutex owner knows the len).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Current queue-depth gauge.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Connections accepted into the queue so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections shed with 503 so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests answered (any status) so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Tally one batch's task outcomes.
    pub fn note_tasks(&self, total: u64, degraded: u64, failed: u64) {
        self.tasks.fetch_add(total, Ordering::Relaxed);
        self.degraded_tasks.fetch_add(degraded, Ordering::Relaxed);
        self.failed_tasks.fetch_add(failed, Ordering::Relaxed);
    }

    /// Clone the aggregated event profile.
    pub fn profile(&self) -> RunProfile {
        self.profile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Request-latency percentile in microseconds (`None` before the
    /// first completed request).
    pub fn latency_percentile_us(&self, p: f64) -> Option<u64> {
        self.latency_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .percentile(p)
    }

    /// Render the `GET /metrics` document.
    pub fn to_json(&self) -> String {
        let uptime = self.started.elapsed();
        let done = self.done();
        let lat = self.latency_us.lock().unwrap_or_else(|e| e.into_inner());
        let mut latency = JsonObject::new();
        latency
            .u64("count", lat.count())
            .opt_u64("p50_us", lat.percentile(0.5))
            .opt_u64("p99_us", lat.percentile(0.99))
            .opt_u64("max_us", lat.max());
        match lat.mean() {
            Some(m) => latency.f64("mean_us", m),
            None => latency.opt_u64("mean_us", None),
        };
        drop(lat);
        let profile = self.profile();
        let mut tasks = JsonObject::new();
        tasks
            .u64("total", self.tasks.load(Ordering::Relaxed))
            .u64("degraded", self.degraded_tasks.load(Ordering::Relaxed))
            .u64("failed", self.failed_tasks.load(Ordering::Relaxed))
            .u64("cache_hits", profile.counter("cache_hits"))
            .u64("cache_misses", profile.counter("cache_misses"));
        let mut o = JsonObject::new();
        o.str("schema", "asched-serve-metrics-v1")
            .u64("uptime_ms", uptime.as_millis() as u64)
            .u64("queue_depth", self.queue_depth() as u64)
            .u64("accepted", self.accepted())
            .u64("shed", self.shed())
            .u64("done", done)
            .f64(
                "throughput_rps",
                done as f64 / uptime.as_secs_f64().max(1e-9),
            );
        o.raw("latency", &latency.finish());
        o.raw("tasks", &tasks.finish());
        o.raw("profile", &profile.to_json());
        o.finish()
    }
}

impl Recorder for ServeMetrics {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event<'_>) {
        match *event {
            Event::ReqAccept { .. } => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Event::ReqShed { .. } => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            Event::ReqDone { nanos, .. } => {
                self.done.fetch_add(1, Ordering::Relaxed);
                self.latency_us
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(nanos / 1_000);
            }
            _ => {}
        }
        self.profile
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .absorb(event);
    }

    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_and_renders() {
        let m = ServeMetrics::new();
        m.record(&Event::ReqAccept { queue_depth: 1 });
        m.record(&Event::ReqDone {
            status: 200,
            nanos: 3_000_000,
        });
        m.record(&Event::ReqShed { queue_depth: 8 });
        m.note_tasks(5, 1, 0);
        m.set_queue_depth(2);
        assert_eq!(m.accepted(), 1);
        assert_eq!(m.done(), 1);
        assert_eq!(m.shed(), 1);
        assert_eq!(m.latency_percentile_us(0.5), Some(3_000));
        let json = m.to_json();
        assert!(
            json.contains(r#""schema":"asched-serve-metrics-v1""#),
            "{json}"
        );
        assert!(json.contains(r#""queue_depth":2"#), "{json}");
        assert!(json.contains(r#""shed":1"#), "{json}");
        assert!(json.contains(r#""degraded":1"#), "{json}");
        assert!(json.contains(r#""p99_us":"#), "{json}");
        // The profile saw the service events through the shared schema.
        assert_eq!(m.profile().counter("req_done"), 1);
        assert_eq!(m.profile().counter("req_shed"), 1);
    }
}
