//! Oracle tests: Algorithm `Lookahead` against exact ground truth.
//!
//! Random small traces are scheduled end-to-end and the measured trace
//! completion is sandwiched between two oracles:
//!
//! - **below** by the brute-force exact scheduler
//!   (`asched_rank::brute`), run over the *whole* trace DAG with no
//!   window and no block boundaries — every legal trace execution is a
//!   legal schedule of that relaxation, so its optimum is a true lower
//!   bound for any machine;
//! - **above** by the independent per-block Rank baseline measured on
//!   the same Section 2.3 window simulator — the default config's
//!   portfolio guard promises "anticipatory never loses to local" *by
//!   construction*, and this is the property test holding it to that.
//!
//! A third property pins the restricted case (single universal unit,
//! 0/1 latencies, one block) to the paper's optimality neighbourhood:
//! within one cycle of the exact optimum (the residue is the known
//! tie-breaking gap documented in `asched-rank`'s fidelity note).

use asched_core::{schedule_blocks_independent, schedule_trace, LookaheadConfig};
use asched_graph::{BlockId, DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use asched_rank::brute;
use asched_sim::{simulate, InstStream, IssuePolicy};
use proptest::prelude::*;

/// Random multi-block trace: `blocks` blocks of 2..=`max_per_block`
/// unit-exec nodes, forward edges within blocks and across block seams,
/// latencies 0..=2. Sized to stay within the brute-force node cap.
fn arb_trace(max_blocks: usize, max_per_block: usize) -> impl Strategy<Value = DepGraph> {
    (
        1usize..=max_blocks,
        2usize..=max_per_block,
        any::<u64>(),
        0.15f64..0.5,
    )
        .prop_map(|(blocks, per_block, seed, density)| {
            let mut g = DepGraph::new();
            for b in 0..blocks {
                for i in 0..per_block {
                    g.add_simple(format!("b{b}n{i}"), BlockId(b as u32));
                }
            }
            let n = blocks * per_block;
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in 0..n {
                for j in (i + 1)..n {
                    let same_block = i / per_block == j / per_block;
                    let p = if same_block { density } else { density / 2.0 };
                    if (next() % 1000) as f64 / 1000.0 < p {
                        g.add_dep(NodeId(i as u32), NodeId(j as u32), (next() % 3) as u32);
                    }
                }
            }
            g
        })
}

/// Restricted-case single-block DAG: 0/1 latencies, unit exec times.
fn arb_dag01(max_n: usize) -> impl Strategy<Value = DepGraph> {
    (2usize..=max_n, any::<u64>(), 0.1f64..0.6).prop_map(|(n, seed, density)| {
        let mut g = DepGraph::new();
        for i in 0..n {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for j in (i + 1)..n {
                if (next() % 1000) as f64 / 1000.0 < density {
                    g.add_dep(NodeId(i as u32), NodeId(j as u32), (next() % 2) as u32);
                }
            }
        }
        g
    })
}

/// Measure the independent per-block baseline the same way the
/// portfolio guard does: emit orders, run the window simulator.
fn baseline_completion(ctx: &mut SchedCtx, g: &DepGraph, m: &MachineModel) -> u64 {
    let orders = schedule_blocks_independent(ctx, g, m, true).expect("baseline must schedule");
    simulate(
        ctx,
        g,
        m,
        &InstStream::from_blocks(&orders),
        IssuePolicy::Strict,
        &SchedOpts::default(),
    )
    .completion
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lookahead's measured completion never beats the no-window
    /// whole-trace optimum and never loses to the per-block baseline,
    /// for every window the service exposes.
    #[test]
    fn lookahead_between_oracle_bounds(g in arb_trace(3, 4), wi in 0usize..3) {
        let w = [2usize, 4, 8][wi];
        let m = MachineModel::single_unit(w);
        let mut ctx = SchedCtx::new();
        let res = schedule_trace(
            &mut ctx, &g, &m, &LookaheadConfig::default(), &SchedOpts::default(),
        ).unwrap();
        let opt = brute::optimal_makespan(&g, &g.all_nodes(), &m);
        prop_assert!(
            res.makespan >= opt,
            "trace completion {} beats the relaxation optimum {}", res.makespan, opt,
        );
        let local = baseline_completion(&mut ctx, &g, &m);
        prop_assert!(
            res.makespan <= local,
            "anticipatory lost to local: {} vs {}", res.makespan, local,
        );
    }

    /// Restricted case (paper Section 2): single universal unit, 0/1
    /// latencies, one block — within one cycle of the exact optimum.
    #[test]
    fn restricted_single_block_near_optimal(g in arb_dag01(9), wi in 0usize..3) {
        let w = [2usize, 4, 8][wi];
        let m = MachineModel::single_unit(w);
        let mut ctx = SchedCtx::new();
        let res = schedule_trace(
            &mut ctx, &g, &m, &LookaheadConfig::default(), &SchedOpts::default(),
        ).unwrap();
        let opt = brute::optimal_makespan(&g, &g.all_nodes(), &m);
        prop_assert!(res.makespan >= opt);
        prop_assert!(
            res.makespan <= opt + 1,
            "restricted case drifted: {} vs optimum {}", res.makespan, opt,
        );
    }

    /// A starved step budget degrades, never panics or mis-schedules:
    /// the error is the structured budget signal the engine (and the
    /// serving deadline path) rely on.
    #[test]
    fn step_budget_degrades_cleanly(g in arb_trace(3, 4)) {
        let m = MachineModel::single_unit(4);
        let mut ctx = SchedCtx::new();
        let cfg = LookaheadConfig::default().with_step_budget(1);
        match schedule_trace(&mut ctx, &g, &m, &cfg, &SchedOpts::default()) {
            Ok(res) => prop_assert!(res.makespan > 0),
            Err(e) => prop_assert!(
                matches!(e, asched_core::CoreError::StepBudgetExhausted { .. }),
                "unexpected error {e:?}",
            ),
        }
    }
}
