//! Per-block scheduling without trace information.
//!
//! The introduction's fallback: *"If the compiler has no trace or loop
//! information, a simple application of this idea is to move idle slots
//! as late as possible independently in each basic block."* With
//! `delay = false` this degenerates to plain local (Rank Algorithm)
//! scheduling — the classic baseline the experiments compare against.

use crate::error::CoreError;
use asched_graph::{DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use asched_rank::{delay_idle_slots, rank_schedule, Deadlines};

/// Schedule every block of `g` independently; returns one emitted order
/// per block (ascending block id).
///
/// With `delay = true`, each block's idle slots are moved as late as
/// possible (anticipatory scheduling without trace information); with
/// `delay = false` this is plain per-block rank scheduling.
pub fn schedule_blocks_independent(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    delay: bool,
) -> Result<Vec<Vec<NodeId>>, CoreError> {
    let opts = SchedOpts::default();
    let mut orders = Vec::new();
    for blk in g.blocks() {
        let mask = g.block_nodes(blk);
        let free = Deadlines::unbounded(g, &mask);
        let out = rank_schedule(ctx, g, &mask, machine, &free, &opts)?;
        let sched = if delay {
            let t = out.schedule.makespan() as i64;
            let mut d = Deadlines::uniform(g, &mask, t);
            delay_idle_slots(ctx, g, &mask, machine, out.schedule, &mut d, &opts)
        } else {
            out.schedule
        };
        orders.push(sched.order());
    }
    Ok(orders)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::tests::fig2;
    use asched_sim::{InstStream, IssuePolicy};

    fn m(w: usize) -> MachineModel {
        MachineModel::single_unit(w)
    }

    fn run(g: &DepGraph, machine: &MachineModel, delay: bool) -> Vec<Vec<NodeId>> {
        schedule_blocks_independent(&mut SchedCtx::new(), g, machine, delay).unwrap()
    }

    #[test]
    fn independent_scheduling_emits_all_blocks() {
        let (g, _, _) = fig2();
        let orders = run(&g, &m(2), true);
        assert_eq!(orders.len(), 2);
        assert_eq!(orders[0].len(), 6);
        assert_eq!(orders[1].len(), 5);
    }

    /// Idle-slot delaying without trace information already helps on
    /// Figure 2: BB1's delayed order x e r w b a lets z fill the idle
    /// slot even though BB2 was scheduled blindly.
    #[test]
    fn delaying_helps_even_without_trace_info() {
        let (g, _, _) = fig2();
        let plain = run(&g, &m(2), false);
        let delayed = run(&g, &m(2), true);
        let t_plain = asched_sim::simulate(
            &mut SchedCtx::new(),
            &g,
            &m(2),
            &InstStream::from_blocks(&plain),
            IssuePolicy::Strict,
            &SchedOpts::default(),
        )
        .completion;
        let t_delayed = asched_sim::simulate(
            &mut SchedCtx::new(),
            &g,
            &m(2),
            &InstStream::from_blocks(&delayed),
            IssuePolicy::Strict,
            &SchedOpts::default(),
        )
        .completion;
        assert!(
            t_delayed <= t_plain,
            "delayed {t_delayed} should not exceed plain {t_plain}"
        );
    }

    #[test]
    fn orders_respect_in_block_dependences() {
        let (g, _, _) = fig2();
        let orders = run(&g, &m(2), true);
        for order in &orders {
            let pos: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            for &id in order {
                for e in g.out_edges_li(id) {
                    if let (Some(&pi), Some(&pj)) = (pos.get(&e.src), pos.get(&e.dst)) {
                        assert!(pi < pj, "dependence {e} violated in emitted order");
                    }
                }
            }
        }
    }
}
