//! Anticipatory instruction scheduling (the paper's primary contribution).
//!
//! *Anticipatory instruction scheduling* rearranges instructions **within
//! each basic block** so as to minimize the completion time of a whole
//! trace of basic blocks *as executed by hardware instruction lookahead*,
//! without moving any instruction across a block boundary (Sarkar &
//! Simons, SPAA 1996).
//!
//! * [`schedule_trace`] — Algorithm `Lookahead` (paper Figure 5) for a
//!   trace `BB1, …, BBm` under window size `W`, built from [`merge`]
//!   (Figure 7), `Delay_Idle_Slots` (Figure 6, in `asched-rank`) and
//!   [`chop`] (Figure 6). Provably optimal in the restricted case (0/1
//!   latencies, unit execution times, single functional unit); the
//!   Section 4.2 heuristic otherwise.
//! * [`schedule_blocks_independent`] — the "no trace information"
//!   fallback from the introduction: schedule each block on its own and
//!   move its idle slots as late as possible.
//! * [`schedule_loop_trace`] — Section 5.1: a trace of two or more blocks
//!   enclosed in a loop.
//! * [`schedule_single_block_loop`] — Section 5.2: single-block loops via
//!   the dummy-sink (5.2.1), dummy-source (5.2.2) and general candidate
//!   (5.2.3) transformations, selecting the best steady-state schedule.
//! * [`legal`] — Definitions 2.1–2.3 (Window Constraint, Ordering
//!   Constraint) as an executable legality oracle.
//!
//! Every scheduling entry point takes a `&mut` [`SchedCtx`] (one per
//! trace or per worker thread) and a [`SchedOpts`]; see `asched-graph`
//! for the context/options contract. There is exactly one entry point
//! per algorithm — the former `*_rec` recorder variants are subsumed by
//! `SchedOpts::with_recorder`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chop;
mod config;
mod error;
pub mod legal;
mod lookahead;
mod loops;
mod merge;
mod single_block;
mod trace;

pub use asched_graph::{BackwardMode, SchedCtx, SchedOpts};
pub use chop::{chop, ChopResult};
pub use config::LookaheadConfig;
pub use error::CoreError;
pub use lookahead::{schedule_trace, TraceResult};
pub use loops::{schedule_loop_trace, LoopTraceResult};
pub use merge::merge;
pub use single_block::{
    dummy_sink_transform, dummy_source_transform, schedule_single_block_loop, CandidateKind,
    CandidateReport, SingleBlockLoopResult,
};
pub use trace::schedule_blocks_independent;
