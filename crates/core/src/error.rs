//! Error type for the anticipatory scheduler.

use asched_graph::CycleError;
use asched_rank::RankError;
use std::fmt;

/// Failure modes of anticipatory scheduling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The loop-independent dependence subgraph is cyclic.
    Cyclic(CycleError),
    /// `merge` exhausted its deadline-relaxation budget and the fallback
    /// concatenation also failed the feasibility check (only reachable on
    /// pathological heuristic inputs).
    MergeFailed,
    /// A loop-scheduling entry point was called on a graph without the
    /// required structure (e.g. no loop-carried edges where one is
    /// needed, or more than one block where exactly one is expected).
    BadLoopStructure(&'static str),
    /// The trace graph has a loop-independent dependence from a later
    /// block to an earlier one — impossible along a control-flow trace
    /// (a backwards dependence must be loop-carried).
    BackwardCrossEdge {
        /// The offending edge's source.
        src: asched_graph::NodeId,
        /// The offending edge's destination.
        dst: asched_graph::NodeId,
    },
    /// Algorithm `Lookahead` ran out of its configured step budget
    /// ([`crate::LookaheadConfig::step_budget`]) before finishing the
    /// trace. The caller can retry unbounded or fall back to the
    /// per-block Rank schedule.
    StepBudgetExhausted {
        /// Steps consumed when the budget check tripped.
        steps: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Cyclic(c) => write!(f, "{c}"),
            CoreError::MergeFailed => write!(f, "merge could not find a feasible schedule"),
            CoreError::BadLoopStructure(s) => write!(f, "bad loop structure: {s}"),
            CoreError::BackwardCrossEdge { src, dst } => write!(
                f,
                "loop-independent dependence {src} -> {dst} runs backwards \
                 across the trace's block order"
            ),
            CoreError::StepBudgetExhausted { steps, budget } => write!(
                f,
                "step budget exhausted: {steps} merge steps exceed the \
                 configured budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<CycleError> for CoreError {
    fn from(c: CycleError) -> Self {
        CoreError::Cyclic(c)
    }
}

impl From<RankError> for CoreError {
    fn from(e: RankError) -> Self {
        match e {
            RankError::Cyclic(c) => CoreError::Cyclic(c),
            RankError::Infeasible { .. } => CoreError::MergeFailed,
        }
    }
}
