//! Configuration knobs for Algorithm `Lookahead`.

/// Tunable behaviour of the anticipatory scheduler.
///
/// The defaults implement the paper exactly; the switches exist for the
/// ablation experiments (E10) that quantify how much each ingredient
/// contributes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LookaheadConfig {
    /// Run `Delay_Idle_Slots` on every merged schedule (paper Figure 5).
    /// Turning this off removes the paper's key idea and reduces the
    /// algorithm to deadline-protected block merging.
    pub delay_idle_slots: bool,
    /// Protect `old` instructions in `merge` by capping their deadlines
    /// at the `old`-only makespan (paper Figure 7). Turning this off lets
    /// `new` instructions displace `old` ones in the *predicted*
    /// schedule, which the hardware cannot actually do — useful only to
    /// demonstrate why the protection exists.
    pub protect_old: bool,
    /// Window size used when *evaluating* loop-schedule candidates
    /// (Section 5.2.3 "select the best"). The paper evaluates candidate
    /// loop schedules by their literal steady-state completion time, i.e.
    /// window 1; set it higher to co-optimize with lookahead hardware.
    pub loop_eval_window: usize,
    /// Iterations used to warm up / measure steady-state loop candidates.
    pub loop_eval_iters: u32,
    /// Guard the trace result with the per-block fallback: after
    /// Algorithm `Lookahead` produces its emitted orders, also build the
    /// independent per-block schedule, measure both on the window model,
    /// and keep the better one. The paper's exact machinery never needs
    /// this; our reconstruction has a rare one-cycle tie residue (see
    /// `asched-rank`'s fidelity note), and the guard restores
    /// "anticipatory never loses to local" by construction for the cost
    /// of one extra scheduling pass. On by default.
    pub portfolio: bool,
    /// Section 5.2.3's compile-time optimization for 0/1 latencies:
    /// consider only `G_li` sources as dummy-sink candidates and only
    /// `G_li` sinks as dummy-source candidates. Sound for 0/1 latencies;
    /// off by default because the general-latency loops (e.g. Figure 3)
    /// need the full candidate set.
    pub filter_loop_candidates: bool,
    /// Per-run step budget for Algorithm `Lookahead`. One step is one
    /// node entering a block merge (`|old ∪ new|` per trace block), so
    /// the budget bounds the dominant `rank`-driven work. When the
    /// running total would exceed the budget, `schedule_trace` aborts
    /// with [`crate::CoreError::StepBudgetExhausted`] instead of
    /// finishing — batch drivers (the `asched-engine` worker pool) use
    /// this to keep one pathological task from starving a corpus run,
    /// degrading it to the per-block Rank schedule instead. `None`
    /// (the default, and the paper's behaviour) means unbounded.
    pub step_budget: Option<u64>,
}

impl Default for LookaheadConfig {
    fn default() -> Self {
        LookaheadConfig {
            delay_idle_slots: true,
            protect_old: true,
            loop_eval_window: 1,
            loop_eval_iters: 16,
            portfolio: true,
            filter_loop_candidates: false,
            step_budget: None,
        }
    }
}

impl LookaheadConfig {
    /// The ablated configuration without idle-slot delaying (E10).
    pub fn without_idle_delay() -> Self {
        LookaheadConfig {
            delay_idle_slots: false,
            ..Self::default()
        }
    }

    /// The ablated configuration without `old`-deadline protection (E10).
    pub fn without_old_protection() -> Self {
        LookaheadConfig {
            protect_old: false,
            ..Self::default()
        }
    }

    /// This configuration with a per-run step budget (see
    /// [`LookaheadConfig::step_budget`]).
    pub fn with_step_budget(self, budget: u64) -> Self {
        LookaheadConfig {
            step_budget: Some(budget),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = LookaheadConfig::default();
        assert!(c.delay_idle_slots);
        assert!(c.protect_old);
        assert_eq!(c.loop_eval_window, 1);
    }

    #[test]
    fn ablations_flip_one_switch() {
        assert!(!LookaheadConfig::without_idle_delay().delay_idle_slots);
        assert!(LookaheadConfig::without_idle_delay().protect_old);
        assert!(!LookaheadConfig::without_old_protection().protect_old);
    }
}
