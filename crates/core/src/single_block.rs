//! Anticipatory scheduling for a loop containing a single basic block
//! (paper Section 5.2).
//!
//! This is harder than the multi-block case *"because we now have to
//! consider the overlap among instructions in BB1[k] and BB1[k+1] which
//! belong to the same basic block"*. The paper's solution transforms the
//! cyclic dependence graph into an acyclic one:
//!
//! * **5.2.1 (single source)** — add a dummy *sink* `z` representing the
//!   next iteration's source; every node gets a zero-latency edge to `z`,
//!   and each loop-carried edge `(a, y)` becomes `(a, z)` with the same
//!   latency.
//! * **5.2.2 (single sink)** — the dual: a dummy *source* representing
//!   the previous iteration's sink.
//! * **5.2.3 (general)** — try 5.2.1 with every target of a loop-carried
//!   edge as the source candidate and 5.2.2 with every source of a
//!   loop-carried edge as the sink candidate, and keep the best
//!   steady-state schedule. (Figure 8 shows why a single transform is
//!   not enough.)

use crate::config::LookaheadConfig;
use crate::error::CoreError;
use asched_graph::{BlockId, DepGraph, MachineModel, NodeData, NodeId, SchedCtx, SchedOpts};
use asched_rank::{delay_idle_slots, rank_schedule, Deadlines};
use asched_sim::loop_completion;

/// Which transformation produced a candidate schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CandidateKind {
    /// Section 5.2.1 with this node as the source: a dummy sink stands in
    /// for the node's next-iteration instance.
    DummySink(NodeId),
    /// Section 5.2.2 with this node as the sink: a dummy source stands in
    /// for the node's previous-iteration instance.
    DummySource(NodeId),
    /// The loop-blind local schedule (used when the loop has no
    /// loop-carried dependence, and reported for comparison).
    Local,
}

/// One evaluated candidate schedule.
#[derive(Clone, Debug)]
pub struct CandidateReport {
    /// The transformation that produced it.
    pub kind: CandidateKind,
    /// The emitted per-iteration instruction order.
    pub order: Vec<NodeId>,
    /// Steady-state cycles per iteration, as an exact rational
    /// (numerator, denominator).
    pub period: (u64, u64),
    /// Completion time of a single iteration in isolation.
    pub single_iter: u64,
}

/// Result of single-block loop scheduling.
#[derive(Clone, Debug)]
pub struct SingleBlockLoopResult {
    /// The selected (best steady-state) order.
    pub order: Vec<NodeId>,
    /// Its steady-state period (numerator, denominator).
    pub period: (u64, u64),
    /// Completion time of one iteration of the selected order.
    pub single_iter: u64,
    /// Every candidate that was evaluated, in generation order.
    pub candidates: Vec<CandidateReport>,
}

/// Section 5.2.1: dummy-sink transform with `source` as the candidate
/// source node. Returns the acyclic graph (same node ids as `g`, plus
/// the dummy as the last node) and the dummy's id.
pub fn dummy_sink_transform(g: &DepGraph, source: NodeId) -> (DepGraph, NodeId) {
    let mut g2 = copy_li(g);
    let z = g2.add_node(NodeData {
        label: format!("{}_next", g.node(source).label),
        exec_time: 1,
        class: asched_graph::FuClass::Any,
        block: BlockId(0),
        source_pos: g.len() as u32,
    });
    for id in g.node_ids() {
        g2.add_edge(id, z, 0, 0, asched_graph::DepKind::Control);
    }
    for e in g.loop_carried_edges() {
        if e.dst == source {
            g2.add_edge(e.src, z, e.latency, 0, e.kind);
        }
    }
    (g2, z)
}

/// Section 5.2.2: dummy-source transform with `sink` as the candidate
/// sink node (the dual of [`dummy_sink_transform`]).
pub fn dummy_source_transform(g: &DepGraph, sink: NodeId) -> (DepGraph, NodeId) {
    let mut g2 = copy_li(g);
    let z = g2.add_node(NodeData {
        label: format!("{}_prev", g.node(sink).label),
        exec_time: 1,
        class: asched_graph::FuClass::Any,
        block: BlockId(0),
        source_pos: g.len() as u32,
    });
    for id in g.node_ids() {
        g2.add_edge(z, id, 0, 0, asched_graph::DepKind::Control);
    }
    for e in g.loop_carried_edges() {
        if e.src == sink {
            g2.add_edge(z, e.dst, e.latency, 0, e.kind);
        }
    }
    (g2, z)
}

/// Copy of `g` with only the loop-independent edges (same node ids).
fn copy_li(g: &DepGraph) -> DepGraph {
    let mut g2 = DepGraph::new();
    for id in g.node_ids() {
        g2.add_node(g.node(id).clone());
    }
    for id in g.node_ids() {
        for e in g.out_edges_li(id) {
            g2.add_edge(e.src, e.dst, e.latency, 0, e.kind);
        }
    }
    g2
}

/// Rank-schedule an acyclic candidate graph, delay its idle slots, and
/// return the order of the *original* nodes (the dummy dropped).
fn candidate_order(
    ctx: &mut SchedCtx,
    g2: &DepGraph,
    machine: &MachineModel,
    dummy: NodeId,
    opts: &SchedOpts,
) -> Result<Vec<NodeId>, CoreError> {
    let mask = g2.all_nodes();
    let free = Deadlines::unbounded(g2, &mask);
    let out = rank_schedule(ctx, g2, &mask, machine, &free, opts)?;
    let t = out.schedule.makespan() as i64;
    let mut d = Deadlines::uniform(g2, &mask, t);
    let s = delay_idle_slots(ctx, g2, &mask, machine, out.schedule, &mut d, opts);
    Ok(s.order().into_iter().filter(|&id| id != dummy).collect())
}

/// Section 5.2.3: schedule a single-block loop by trying every candidate
/// transformation and keeping the best steady-state order.
///
/// Candidate evaluation runs the window simulator with window
/// `cfg.loop_eval_window` (default 1: the paper's literal-schedule
/// semantics). If the loop has no loop-carried edges the loop-blind
/// local schedule is returned directly.
///
/// ```
/// use asched_core::{schedule_single_block_loop, LookaheadConfig};
/// use asched_graph::{BlockId, DepGraph, DepKind, MachineModel, SchedCtx, SchedOpts};
///
/// // The paper's Figure 8 loop: the general case finds 2 1 3 at
/// // 4 cycles/iteration where the single-source transform is stuck at 5.
/// let mut g = DepGraph::new();
/// let n1 = g.add_simple("1", BlockId(0));
/// let n2 = g.add_simple("2", BlockId(0));
/// let n3 = g.add_simple("3", BlockId(0));
/// g.add_dep(n1, n3, 1);
/// g.add_dep(n2, n3, 1);
/// g.add_edge(n3, n1, 1, 1, DepKind::Data);
///
/// let machine = MachineModel::single_unit(2);
/// let res = schedule_single_block_loop(
///     &mut SchedCtx::new(),
///     &g,
///     &machine,
///     &LookaheadConfig::default(),
///     &SchedOpts::default(),
/// )
/// .unwrap();
/// assert_eq!(res.order, vec![n2, n1, n3]);
/// assert_eq!(res.period.0, 4 * res.period.1);
/// ```
pub fn schedule_single_block_loop(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    cfg: &LookaheadConfig,
    opts: &SchedOpts,
) -> Result<SingleBlockLoopResult, CoreError> {
    if g.blocks().len() > 1 {
        return Err(CoreError::BadLoopStructure(
            "single-block loop scheduling expects exactly one block",
        ));
    }
    // Release times are meaningless across the candidate graphs (their
    // node sets differ from `g`), so only the recorder and backward mode
    // propagate to the inner scheduling calls.
    let inner = SchedOpts {
        release: None,
        ..*opts
    };
    let eval_machine = machine.with_window(cfg.loop_eval_window.max(1));
    let evaluate = |ctx: &mut SchedCtx, order: &[NodeId]| -> (u64, u64) {
        asched_sim::steady_period_with(ctx, g, &eval_machine, order, cfg.loop_eval_iters)
    };
    let single =
        |ctx: &mut SchedCtx, order: &[NodeId]| loop_completion(ctx, g, &eval_machine, order, 1);

    // The loop-blind local schedule is always computed for reporting.
    let local_order = {
        let mask = g.all_nodes();
        let out = rank_schedule(
            ctx,
            g,
            &mask,
            machine,
            &Deadlines::unbounded(g, &mask),
            &inner,
        )?;
        let t = out.schedule.makespan() as i64;
        let mut d = Deadlines::uniform(g, &mask, t);
        delay_idle_slots(ctx, g, &mask, machine, out.schedule, &mut d, &inner).order()
    };
    let mut candidates = vec![CandidateReport {
        kind: CandidateKind::Local,
        period: evaluate(ctx, &local_order),
        single_iter: single(ctx, &local_order),
        order: local_order.clone(),
    }];

    // Candidate source nodes: targets of loop-carried edges (5.2.1);
    // candidate sink nodes: sources of loop-carried edges (5.2.2).
    let mut sources: Vec<NodeId> = g.loop_carried_edges().map(|e| e.dst).collect();
    sources.sort_unstable();
    sources.dedup();
    let mut sinks: Vec<NodeId> = g.loop_carried_edges().map(|e| e.src).collect();
    sinks.sort_unstable();
    sinks.dedup();
    if cfg.filter_loop_candidates {
        // Paper Section 5.2.3, final paragraph: "For 0/1 latencies, we
        // can reduce the compile-time of this optimal solution by
        // observing that only instructions with no predecessors in G_li
        // need to be considered as candidate source nodes in step 1, and
        // only instructions with no successors in G_li need to be
        // considered as candidate sink nodes in step 2."
        let mask = g.all_nodes();
        sources.retain(|&v| g.preds_in(v, &mask).is_empty());
        sinks.retain(|&v| g.succs_in(v, &mask).is_empty());
    }

    for &y in &sources {
        let (g2, z) = dummy_sink_transform(g, y);
        let order = candidate_order(ctx, &g2, machine, z, &inner)?;
        candidates.push(CandidateReport {
            kind: CandidateKind::DummySink(y),
            period: evaluate(ctx, &order),
            single_iter: single(ctx, &order),
            order,
        });
    }
    for &y in &sinks {
        let (g2, z) = dummy_source_transform(g, y);
        let order = candidate_order(ctx, &g2, machine, z, &inner)?;
        candidates.push(CandidateReport {
            kind: CandidateKind::DummySource(y),
            period: evaluate(ctx, &order),
            single_iter: single(ctx, &order),
            order,
        });
    }

    // Select: smallest steady-state period; ties by single-iteration
    // makespan, then by generation order (deterministic).
    let best = candidates
        .iter()
        .enumerate()
        .min_by(|(i, a), (j, b)| {
            let pa = a.period.0 * b.period.1;
            let pb = b.period.0 * a.period.1;
            pa.cmp(&pb)
                .then(a.single_iter.cmp(&b.single_iter))
                .then(i.cmp(j))
        })
        .map(|(i, _)| i)
        .expect("at least the local candidate exists");
    let chosen = candidates[best].clone();
    Ok(SingleBlockLoopResult {
        order: chosen.order,
        period: chosen.period,
        single_iter: chosen.single_iter,
        candidates,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use asched_graph::DepKind;

    fn m1() -> MachineModel {
        MachineModel::single_unit(2)
    }

    fn run(g: &DepGraph, cfg: &LookaheadConfig) -> SingleBlockLoopResult {
        schedule_single_block_loop(&mut SchedCtx::new(), g, &m1(), cfg, &SchedOpts::default())
            .unwrap()
    }

    /// The Figure 3 partial-products loop: L(oad), S(tore), C(ompare),
    /// M(ultiply), BT (branch). Latencies: load 1, compare 1, multiply 4.
    pub(crate) fn fig3() -> (DepGraph, [NodeId; 5]) {
        let mut g = DepGraph::new();
        let l = g.add_simple("L4", BlockId(0));
        let s = g.add_simple("ST", BlockId(0));
        let c = g.add_simple("C4", BlockId(0));
        let mm = g.add_simple("M", BlockId(0));
        let bt = g.add_simple("BT", BlockId(0));
        // Loop-independent data dependences.
        g.add_dep(l, c, 1); // gr6 -> compare
        g.add_dep(l, mm, 1); // gr6 -> multiply
        g.add_dep(c, bt, 1); // cr1 -> branch
        g.add_edge(s, mm, 0, 0, DepKind::Anti); // S reads gr0, M overwrites it
                                                // Control dependences: everything precedes the branch.
        for &u in &[l, s, mm] {
            g.add_edge(u, bt, 0, 0, DepKind::Control);
        }
        // Loop-carried dependences.
        g.add_edge(mm, s, 4, 1, DepKind::Data); // y[i-1] value (software pipelined store)
        g.add_edge(mm, mm, 4, 1, DepKind::Data); // gr0 accumulator
        g.add_edge(l, l, 1, 1, DepKind::Data); // gr7 index update
        g.add_edge(s, s, 1, 1, DepKind::Data); // gr5 index update
        (g, [l, s, c, mm, bt])
    }

    /// Paper Figure 3, Schedule 1: the locally-optimal order
    /// L ST C4 M BT takes 5 cycles for one iteration but 7 per iteration
    /// in steady state.
    #[test]
    fn fig3_local_schedule_is_5_then_7() {
        let (g, [l, s, c, mm, bt]) = fig3();
        let res = run(&g, &LookaheadConfig::default());
        let local = res
            .candidates
            .iter()
            .find(|c| c.kind == CandidateKind::Local)
            .unwrap();
        assert_eq!(local.order, vec![l, s, c, mm, bt]);
        assert_eq!(local.single_iter, 5);
        assert_eq!(local.period, (7 * 16, 16));
    }

    /// Paper Figure 3, Schedule 2: the anticipatory order L ST M C4 BT
    /// takes 6 cycles for one iteration but sustains 6 per iteration —
    /// and the Section 5.2.3 algorithm selects it.
    #[test]
    fn fig3_algorithm_selects_schedule2() {
        let (g, [l, s, c, mm, bt]) = fig3();
        let res = run(&g, &LookaheadConfig::default());
        assert_eq!(res.order, vec![l, s, mm, c, bt]);
        assert_eq!(res.single_iter, 6);
        assert_eq!(res.period, (6 * 16, 16));
    }

    /// Figure 8: the dummy-SINK transform on a multiple-source graph is
    /// blind (the acyclic graph is symmetric in nodes 1 and 2) while the
    /// dummy-SOURCE transform finds 2 1 3; the general algorithm selects
    /// the 4-cycles-per-iteration schedule.
    #[test]
    fn fig8_general_case_picks_4n() {
        let mut g = DepGraph::new();
        let n1 = g.add_simple("1", BlockId(0));
        let n2 = g.add_simple("2", BlockId(0));
        let n3 = g.add_simple("3", BlockId(0));
        g.add_dep(n1, n3, 1);
        g.add_dep(n2, n3, 1);
        g.add_edge(n3, n1, 1, 1, DepKind::Data);
        let res = run(&g, &LookaheadConfig::default());
        assert_eq!(res.order, vec![n2, n1, n3]);
        assert_eq!(res.period, (4 * 16, 16));
        // The dummy-source candidate (sink node 3) is the winner.
        let src_cand = res
            .candidates
            .iter()
            .find(|c| matches!(c.kind, CandidateKind::DummySource(s) if s == n3))
            .unwrap();
        assert_eq!(src_cand.order, vec![n2, n1, n3]);
        // The dummy-sink candidate (source node 1) cannot break the
        // 1/2 symmetry and yields the 5-cycle schedule.
        let sink_cand = res
            .candidates
            .iter()
            .find(|c| matches!(c.kind, CandidateKind::DummySink(t) if t == n1))
            .unwrap();
        assert_eq!(sink_cand.period, (5 * 16, 16));
    }

    /// Loops without loop-carried edges fall back to the local schedule.
    #[test]
    fn no_loop_carried_edges_gives_local() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 1);
        let res = run(&g, &LookaheadConfig::default());
        assert_eq!(res.candidates.len(), 1);
        assert_eq!(res.order, vec![a, b]);
    }

    /// The 0/1 candidate filter (paper 5.2.3, final paragraph) preserves
    /// the selected schedule on Figure 8 while trying fewer candidates.
    #[test]
    fn candidate_filter_preserves_fig8_selection() {
        let mut g = DepGraph::new();
        let n1 = g.add_simple("1", BlockId(0));
        let n2 = g.add_simple("2", BlockId(0));
        let n3 = g.add_simple("3", BlockId(0));
        g.add_dep(n1, n3, 1);
        g.add_dep(n2, n3, 1);
        g.add_edge(n3, n1, 1, 1, DepKind::Data);
        let full = run(&g, &LookaheadConfig::default());
        let cfg = LookaheadConfig {
            filter_loop_candidates: true,
            ..LookaheadConfig::default()
        };
        let filtered = run(&g, &cfg);
        assert_eq!(filtered.order, full.order);
        assert_eq!(filtered.period, full.period);
        // n1 is a G_li source and a loop-carried target; n3 is a G_li
        // sink and a loop-carried source: both survive the filter, so
        // candidate counts coincide here — build a case where they don't:
        // n3 -> n2 loop-carried makes n2 a target, but n2 is not a G_li
        // source? n2 IS a source. Use n3 as target instead.
        let mut g2 = DepGraph::new();
        let a = g2.add_simple("a", BlockId(0));
        let b = g2.add_simple("b", BlockId(0));
        let c = g2.add_simple("c", BlockId(0));
        g2.add_dep(a, b, 1);
        g2.add_dep(b, c, 1);
        g2.add_edge(c, b, 2, 1, DepKind::Data); // target b is NOT a G_li source
        let full2 = run(&g2, &LookaheadConfig::default());
        let filt2 = run(&g2, &cfg);
        assert!(filt2.candidates.len() < full2.candidates.len());
    }

    #[test]
    fn multi_block_graph_rejected() {
        let mut g = DepGraph::new();
        g.add_simple("a", BlockId(0));
        g.add_simple("b", BlockId(1));
        assert!(matches!(
            schedule_single_block_loop(
                &mut SchedCtx::new(),
                &g,
                &m1(),
                &LookaheadConfig::default(),
                &SchedOpts::default()
            ),
            Err(CoreError::BadLoopStructure(_))
        ));
    }

    /// The transforms preserve node identity and add exactly one dummy.
    #[test]
    fn transforms_preserve_nodes() {
        let (g, [l, s, _c, mm, _bt]) = fig3();
        let (g2, z) = dummy_sink_transform(&g, s);
        assert_eq!(g2.len(), g.len() + 1);
        assert_eq!(z.index(), g.len());
        // M -> S <4,1> became M -> z <4,0>.
        assert!(g2.out_edges_li(mm).any(|e| e.dst == z && e.latency == 4));
        // No loop-carried edges remain.
        assert!(!g2.has_loop_carried());
        let (g3, z3) = dummy_source_transform(&g, mm);
        // M is the source of M->S and M->M: z3 -> S with latency 4.
        assert!(g3.out_edges_li(z3).any(|e| e.dst == s && e.latency == 4));
        assert!(!g3.has_loop_carried());
        let _ = l;
    }
}
