//! Algorithm `Lookahead` (paper Figure 5).
//!
//! ```text
//! sched := empty; old := ∅
//! for i := 1 to m:
//!     new := BBi
//!     (S, d) := merge(old, new, d_old, W)
//!     (S, d) := Delay_Idle_Slots(S, d)
//!     (S⁻, S⁺, d⁺) := chop(S, d)
//!     sched := concat(sched, S⁻); old := S⁺
//! sched := concat(sched, S⁺)
//! ```
//!
//! The output permutation's per-block subpermutations are the *emitted*
//! code (instructions never move across block boundaries — footnote 7);
//! the assembled global schedule is the algorithm's *prediction* of what
//! the lookahead hardware will achieve, which the `asched-sim` simulator
//! verifies independently.

use crate::chop::chop;
use crate::config::LookaheadConfig;
use crate::error::CoreError;
use crate::merge::merge;
use asched_graph::{
    BlockId, DepGraph, MachineModel, NodeId, NodeSet, SchedCtx, SchedOpts, Schedule,
};
use asched_obs::{record, Event, Pass, Recorder};
use asched_rank::{delay_idle_slots, Deadlines};

/// Output of anticipatory trace scheduling.
#[derive(Clone, Debug)]
pub struct TraceResult {
    /// The predicted global permutation (order of predicted issue).
    pub permutation: Vec<NodeId>,
    /// The algorithm's internal merged schedule — its *prediction* of the
    /// hardware's behaviour. In the restricted case (and whenever the
    /// prediction satisfies Definition 2.3) it coincides with `makespan`;
    /// off the restricted machine the heuristic's prediction can deviate
    /// (the paper notes the construction does not always yield a legal
    /// schedule), which is why `makespan` is measured, not predicted.
    pub predicted: Schedule,
    /// Completion time of the emitted code, **measured** on the paper's
    /// Section 2.3 lookahead-window model (the `asched-sim` simulator)
    /// with this machine's window.
    pub makespan: u64,
    /// The emitted code: one instruction order per basic block, in trace
    /// order. This is what the compiler actually outputs.
    pub block_orders: Vec<Vec<NodeId>>,
    /// The blocks, in trace order (parallel to `block_orders`).
    pub blocks: Vec<BlockId>,
}

/// Run Algorithm `Lookahead` over the trace formed by `g`'s blocks in
/// ascending [`BlockId`] order, for machine `machine` (whose `window` is
/// the paper's `W`).
///
/// The algorithm derives release times internally (edges from emitted
/// instructions into the retained suffix), so `opts.release` and
/// `opts.backward` are ignored at this level; `opts.rec`, when enabled,
/// sees the whole run as one timed `schedule_trace` pass with per-block
/// `block_begin` events, and the `merge`, idle-slot delaying, `chop` and
/// measurement-simulation stages forward their own events (merge probes
/// and rungs, idle moves, chop cuts, window issue/stall/occupancy).
///
/// One `ctx` per trace: the merge relaxation probes and idle-slot
/// retries of each block all hit the same cached `(graph, old ∪ new)`
/// analysis, and the scratch buffers persist block to block.
///
/// ```
/// use asched_core::{schedule_trace, LookaheadConfig};
/// use asched_graph::{BlockId, DepGraph, MachineModel, SchedCtx, SchedOpts};
///
/// // Block 0 ends in a latency gap; block 1 starts with independent
/// // work the hardware window can pull into that gap.
/// let mut g = DepGraph::new();
/// let a = g.add_simple("a", BlockId(0));
/// let b = g.add_simple("b", BlockId(0));
/// g.add_dep(a, b, 2);
/// let c = g.add_simple("c", BlockId(1));
///
/// let machine = MachineModel::single_unit(2);
/// let mut ctx = SchedCtx::new();
/// let res = schedule_trace(
///     &mut ctx,
///     &g,
///     &machine,
///     &LookaheadConfig::default(),
///     &SchedOpts::default(),
/// )
/// .unwrap();
/// // a @0, c fills the gap @1 (inside the window), b @3: 4 cycles,
/// // instead of the 5 a blind concatenation would take.
/// assert_eq!(res.makespan, 4);
/// assert_eq!(res.block_orders.len(), 2);
/// ```
pub fn schedule_trace(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    cfg: &LookaheadConfig,
    opts: &SchedOpts,
) -> Result<TraceResult, CoreError> {
    asched_obs::timed_span(opts.rec, Pass::ScheduleTrace, opts.span, || {
        schedule_trace_inner(ctx, g, machine, cfg, opts.rec, opts.span)
    })
}

fn schedule_trace_inner(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    cfg: &LookaheadConfig,
    rec: &dyn Recorder,
    span: Option<asched_obs::SpanId>,
) -> Result<TraceResult, CoreError> {
    let blocks = g.blocks();
    let n = g.len();
    // A trace follows control flow: every loop-independent dependence
    // must point forward (or stay inside a block). Reject bad input
    // here rather than panicking deep inside the measurement simulator.
    for id in g.node_ids() {
        for e in g.out_edges_li(id) {
            if g.node(e.src).block > g.node(e.dst).block {
                return Err(CoreError::BackwardCrossEdge {
                    src: e.src,
                    dst: e.dst,
                });
            }
        }
    }
    let mut predicted = Schedule::new(n);
    // Deadlines start unset (infinite); merge assigns them per block.
    let mut d = Deadlines::uniform(g, &NodeSet::new(n), 0);
    let mut old = NodeSet::new(n);
    let mut offset: u64 = 0;
    // Earliest *global* start for each unemitted node, induced by edges
    // from already-emitted instructions.
    let mut rel_global = vec![0u64; n];
    // Local (re-based) schedule of the carried suffix.
    let mut suffix_sched = Schedule::new(n);
    // Per-block release buffer, borrowed out of the context so the
    // allocation survives across blocks (and across traces). Taking it
    // leaves an empty Vec behind, which nothing inside the loop touches.
    let mut release = std::mem::take(&mut ctx.scratch.release);

    // Step budget: one step per node entering a block merge. Checked
    // before the merge so a pathological trace aborts instead of
    // burning an O(n²) rank run it has no budget for.
    let mut steps: u64 = 0;

    let mut run_blocks = || -> Result<(), CoreError> {
        for (bi, &blk) in blocks.iter().enumerate() {
            let new = g.block_nodes(blk);
            let cur = old.union(&new);
            steps = steps.saturating_add(cur.len() as u64);
            if let Some(budget) = cfg.step_budget {
                if steps > budget {
                    return Err(CoreError::StepBudgetExhausted { steps, budget });
                }
            }
            record!(
                rec,
                Event::BlockBegin {
                    block: bi as u32,
                    carried: old.len() as u32,
                    new_nodes: new.len() as u32,
                }
            );
            release.clear();
            release.extend((0..n).map(|i| rel_global[i].saturating_sub(offset)));
            let mut block_opts = SchedOpts::default()
                .with_release(&release)
                .with_recorder(rec);
            block_opts.span = span;
            let out = merge(ctx, g, machine, &old, &new, &mut d, cfg, &block_opts)?;
            let mut s = out.schedule;
            if cfg.delay_idle_slots {
                s = delay_idle_slots(ctx, g, &cur, machine, s, &mut d, &block_opts);
            }
            let chopped = asched_obs::timed_span(rec, Pass::Chop, span, || {
                chop(g, machine, &s, &cur, &mut d, machine.window)
            });
            record!(
                rec,
                Event::Chop {
                    cut: chopped.offset.checked_sub(1),
                    emitted: chopped.emitted.len() as u32,
                    carried: chopped.suffix.len() as u32,
                    offset: chopped.offset,
                }
            );
            for &(id, st) in &chopped.emitted {
                let gstart = offset + st;
                predicted.assign(
                    id,
                    gstart,
                    s.unit(id).expect("emitted node scheduled"),
                    g.exec_time(id),
                );
                let completion = gstart + g.exec_time(id) as u64;
                for e in g.out_edges_li(id) {
                    let slot = &mut rel_global[e.dst.index()];
                    *slot = (*slot).max(completion + e.latency as u64);
                }
            }
            offset += chopped.offset;
            old = chopped.suffix;
            suffix_sched = s.restrict(&old);
            if chopped.offset > 0 {
                suffix_sched.rebase(chopped.offset);
            }
        }
        Ok(())
    };
    let blocks_result = run_blocks();
    // Return the buffer before propagating any error so the allocation
    // is never lost.
    ctx.scratch.release = release;
    blocks_result?;

    // Final: append the last suffix S⁺.
    for id in old.iter() {
        let st = suffix_sched.start(id).expect("suffix schedule covers old") + offset;
        predicted.assign(
            id,
            st,
            suffix_sched.unit(id).expect("suffix schedule covers old"),
            g.exec_time(id),
        );
    }

    let permutation = predicted.order();
    let block_orders: Vec<Vec<NodeId>> = blocks
        .iter()
        .map(|&b| {
            permutation
                .iter()
                .copied()
                .filter(|&id| g.node(id).block == b)
                .collect()
        })
        .collect();
    // The deliverable number: what the Section 2.3 hardware actually
    // does with the emitted code.
    let sim_opts = SchedOpts::default().with_recorder(rec);
    let mut measured = asched_sim::simulate(
        ctx,
        g,
        machine,
        &asched_sim::InstStream::from_blocks(&block_orders),
        asched_sim::IssuePolicy::Strict,
        &sim_opts,
    )
    .completion;
    let mut result = TraceResult {
        makespan: measured,
        permutation,
        predicted,
        block_orders,
        blocks,
    };
    if cfg.portfolio && !result.blocks.is_empty() {
        // Guard against the reconstruction's rare one-cycle tie residue:
        // never emit worse code than the plain per-block schedule.
        let local =
            crate::trace::schedule_blocks_independent(ctx, g, machine, cfg.delay_idle_slots)?;
        let sim = asched_sim::simulate(
            ctx,
            g,
            machine,
            &asched_sim::InstStream::from_blocks(&local),
            asched_sim::IssuePolicy::Strict,
            &sim_opts,
        );
        if sim.completion < measured {
            measured = sim.completion;
            // Rebuild the prediction from the hardware's own behaviour so
            // every field stays mutually consistent.
            let stream = asched_sim::InstStream::from_blocks(&local);
            let predicted = asched_sim::schedule_of(g, machine, &stream, &sim);
            result = TraceResult {
                makespan: measured,
                permutation: predicted.order(),
                predicted,
                block_orders: local,
                blocks: result.blocks,
            };
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::tests::fig2;
    use asched_graph::validate::validate_schedule;
    use asched_sim::{InstStream, IssuePolicy};

    fn m(w: usize) -> MachineModel {
        MachineModel::single_unit(w)
    }

    /// Shorthand: schedule with a fresh context and the given config.
    fn run(g: &DepGraph, machine: &MachineModel, cfg: &LookaheadConfig) -> TraceResult {
        schedule_trace(&mut SchedCtx::new(), g, machine, cfg, &SchedOpts::default()).unwrap()
    }

    fn sim(g: &DepGraph, machine: &MachineModel, stream: &InstStream) -> asched_sim::SimResult {
        asched_sim::simulate(
            &mut SchedCtx::new(),
            g,
            machine,
            stream,
            IssuePolicy::Strict,
            &SchedOpts::default(),
        )
    }

    /// The full Figure 2 walk-through: anticipatory scheduling of BB1,
    /// BB2 with the w -> z edge and W = 2 achieves the paper's makespan
    /// of 11.
    #[test]
    fn fig2_trace_makespan_11() {
        let (g, [x, e, w, b, a, r], [z, q, p, v, gg]) = fig2();
        let res = run(&g, &m(2), &LookaheadConfig::default());
        assert_eq!(res.makespan, 11);
        // x is pinned first by idle-slot delaying of BB1.
        assert_eq!(res.permutation[0], x);
        // BB1's emitted order: x e r w b a (a last — it waited for w, b).
        assert_eq!(res.block_orders[0], vec![x, e, r, w, b, a]);
        // BB2's emitted order starts with z, which fills BB1's idle slot.
        assert_eq!(res.block_orders[1][0], z);
        validate_schedule(&g, &g.all_nodes(), &m(2), &res.predicted, None).unwrap();
        let _ = (e, w, b, r, q, p, v, gg);
    }

    /// The predicted makespan equals what the hardware simulator measures
    /// when executing the emitted per-block orders with the same window.
    #[test]
    fn fig2_predicted_equals_simulated() {
        let (g, _, _) = fig2();
        let res = run(&g, &m(2), &LookaheadConfig::default());
        let stream = InstStream::from_blocks(&res.block_orders);
        let s = sim(&g, &m(2), &stream);
        assert_eq!(s.completion, res.makespan);
        assert_eq!(s.completion, 11);
    }

    /// Local (per-block, no anticipation, no idle-slot delaying)
    /// scheduling of the same trace is strictly worse on the simulator.
    #[test]
    fn fig2_beats_naive_local_schedule() {
        let (g, [x, e, w, b, a, r], [z, q, p, v, gg]) = fig2();
        // Naive local: rank-schedule each block alone (no idle-slot
        // delaying). BB1 emits e x b w r a; BB2 emits z q p v g (or
        // similar); the w->z edge then stalls BB2.
        let naive =
            crate::trace::schedule_blocks_independent(&mut SchedCtx::new(), &g, &m(2), false)
                .unwrap();
        let stream = InstStream::from_blocks(&naive);
        let s = sim(&g, &m(2), &stream);
        let res = run(&g, &m(2), &LookaheadConfig::default());
        assert!(
            s.completion > res.makespan,
            "naive {} should exceed anticipatory {}",
            s.completion,
            res.makespan
        );
        let _ = (x, e, w, b, a, r, z, q, p, v, gg);
    }

    /// Single-block traces reduce to rank scheduling + idle-slot delay.
    #[test]
    fn single_block_trace() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 1);
        let res = run(&g, &m(2), &LookaheadConfig::default());
        assert_eq!(res.makespan, 3);
        assert_eq!(res.block_orders.len(), 1);
        assert_eq!(res.block_orders[0], vec![a, b]);
    }

    /// Regression (found in code review): a loop-independent dependence
    /// running backwards across block order is invalid trace input and
    /// must be rejected cleanly, not panic inside the simulator.
    #[test]
    fn backward_cross_edge_rejected() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let p = g.add_simple("p", BlockId(1));
        g.add_dep(p, a, 1); // backwards: later block feeds earlier block
        let err = schedule_trace(
            &mut SchedCtx::new(),
            &g,
            &m(2),
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .unwrap_err();
        assert!(matches!(err, crate::CoreError::BackwardCrossEdge { .. }));
        assert!(err.to_string().contains("backwards"));
    }

    /// Empty graph.
    #[test]
    fn empty_trace() {
        let g = DepGraph::new();
        let res = run(&g, &m(2), &LookaheadConfig::default());
        assert_eq!(res.makespan, 0);
        assert!(res.permutation.is_empty());
    }

    /// Block orders always partition the nodes and never cross blocks.
    #[test]
    fn block_orders_partition_nodes() {
        let (g, _, _) = fig2();
        let res = run(&g, &m(4), &LookaheadConfig::default());
        let mut seen = NodeSet::new(g.len());
        for (bi, order) in res.block_orders.iter().enumerate() {
            for &id in order {
                assert_eq!(g.node(id).block, res.blocks[bi]);
                assert!(seen.insert(id), "node {id} appears twice");
            }
        }
        assert_eq!(seen.len(), g.len());
    }

    /// Regression: the latency-4 workload that once exhausted merge's
    /// relaxation loop (greedy deadline misses off the restricted
    /// machine) now resolves through the fallback rungs and yields a
    /// valid, measured result at every window size.
    #[test]
    fn merge_fallback_rungs_regression() {
        use asched_workloads::{random_trace_dag, DagParams};
        let g = random_trace_dag(&DagParams {
            nodes: 36,
            blocks: 4,
            edge_prob: 0.3,
            cross_prob: 0.15,
            max_latency: 4,
            seed: 6 * 7919 + 13,
            ..DagParams::default()
        });
        for w in [2usize, 4, 6, 8, 16] {
            let machine = m(w);
            let res = run(&g, &machine, &LookaheadConfig::default());
            validate_schedule(&g, &g.all_nodes(), &machine, &res.predicted, None).unwrap();
            let s = sim(&g, &machine, &InstStream::from_blocks(&res.block_orders));
            assert_eq!(s.completion, res.makespan);
        }
    }

    /// A long chain of blocks exercises chop: emitted prefixes accumulate
    /// and the result still validates and simulates to the prediction.
    #[test]
    fn many_blocks_with_chop() {
        let mut g = DepGraph::new();
        let mut prev: Option<NodeId> = None;
        for blk in 0..6u32 {
            let s1 = g.add_simple(format!("a{blk}"), BlockId(blk));
            let s2 = g.add_simple(format!("b{blk}"), BlockId(blk));
            let s3 = g.add_simple(format!("c{blk}"), BlockId(blk));
            g.add_dep(s1, s3, 1);
            g.add_dep(s2, s3, 1);
            if let Some(p) = prev {
                g.add_dep(p, s1, 1); // cross-block chain
            }
            prev = Some(s3);
        }
        let res = run(&g, &m(2), &LookaheadConfig::default());
        validate_schedule(&g, &g.all_nodes(), &m(2), &res.predicted, None).unwrap();
        let stream = InstStream::from_blocks(&res.block_orders);
        let s = sim(&g, &m(2), &stream);
        assert_eq!(s.completion, res.makespan);
    }

    /// A tight step budget aborts with `StepBudgetExhausted` before the
    /// trace finishes; a generous one changes nothing.
    #[test]
    fn step_budget_trips_and_relaxes() {
        let (g, _bb1, _bb2) = fig2();
        // Figure 2 consumes 6 steps for BB1's merge alone, so a budget
        // of 5 must trip on the very first block.
        let tight = LookaheadConfig::default().with_step_budget(5);
        match schedule_trace(
            &mut SchedCtx::new(),
            &g,
            &m(2),
            &tight,
            &SchedOpts::default(),
        ) {
            Err(CoreError::StepBudgetExhausted { steps, budget: 5 }) => assert!(steps > 5),
            other => panic!("expected StepBudgetExhausted, got {other:?}"),
        }
        // A budget covering every node of every merge is never hit and
        // reproduces the unbudgeted result exactly.
        let roomy = LookaheadConfig::default().with_step_budget(10_000);
        let unbounded = run(&g, &m(2), &LookaheadConfig::default());
        let budgeted = run(&g, &m(2), &roomy);
        assert_eq!(unbounded.makespan, budgeted.makespan);
        assert_eq!(unbounded.block_orders, budgeted.block_orders);
    }

    /// One context reused across traces gives byte-identical results to
    /// a fresh context per trace.
    #[test]
    fn reused_ctx_is_bit_identical() {
        let (g, _, _) = fig2();
        let cfg = LookaheadConfig::default();
        let mut ctx = SchedCtx::new();
        let first = schedule_trace(&mut ctx, &g, &m(2), &cfg, &SchedOpts::default()).unwrap();
        for _ in 0..3 {
            let again = schedule_trace(&mut ctx, &g, &m(2), &cfg, &SchedOpts::default()).unwrap();
            assert_eq!(first.makespan, again.makespan);
            assert_eq!(first.permutation, again.permutation);
            assert_eq!(first.predicted, again.predicted);
            assert_eq!(first.block_orders, again.block_orders);
        }
        assert!(ctx.cache.hits() > 0, "repeat traces must hit the cache");
    }
}
