//! Procedure `chop` (paper Figure 6).
//!
//! After merging and idle-slot delaying, the prefix of the schedule up to
//! the last idle slot *prior to the last `W` nodes* can be *emitted*: an
//! idle slot with at least `W` instructions after it can never be filled
//! by a later block's instruction, because filling it would invert the
//! newcomer with more than `W - 1` emitted instructions and violate the
//! Window Constraint. The suffix is carried into the next merge with its
//! deadlines re-based to time zero.

use asched_graph::{DepGraph, MachineModel, NodeId, NodeSet, Schedule};
use asched_rank::Deadlines;

/// Result of chopping a merged schedule.
#[derive(Clone, Debug)]
pub struct ChopResult {
    /// Emitted nodes with their start times *within the chopped
    /// schedule* (the caller adds its running offset), ordered by start.
    pub emitted: Vec<(NodeId, u64)>,
    /// Nodes carried forward into the next merge.
    pub suffix: NodeSet,
    /// Length of the emitted prefix (`t_j + 1`): how far the global
    /// clock advances. Zero when nothing was emitted.
    pub offset: u64,
}

/// Chop `sched` (over `mask`) at the last idle slot `t_j` that still has
/// at least `W` nodes after it (i.e. the last idle slot *prior to the
/// last `W` nodes*).
///
/// `d` is updated in place: suffix deadlines are decremented by
/// `t_j + 1` (the paper's re-basing). If the schedule has no idle slot,
/// or has fewer than `W` nodes, everything is retained (`S⁻ = ∅`) —
/// dependences with non-zero latencies between `old` and `new` could
/// otherwise create avoidable idle time at the seam.
///
/// On multi-unit machines an "idle slot" for cutting purposes is a cycle
/// during which *every* unit is idle (a conservative, correct cut
/// point).
pub fn chop(
    _g: &DepGraph,
    machine: &MachineModel,
    sched: &Schedule,
    mask: &NodeSet,
    d: &mut Deadlines,
    window: usize,
) -> ChopResult {
    let retain_all = |mask: &NodeSet| ChopResult {
        emitted: Vec::new(),
        suffix: mask.clone(),
        offset: 0,
    };

    if mask.len() < window {
        return retain_all(mask);
    }
    // Cycles where all units are idle. On a multi-unit machine a
    // whole-machine idle cycle is rarer than a single-unit stall, so
    // chop cuts less often there and merge re-schedules a longer
    // suffix — a fidelity choice, not an oversight: the paper's cut
    // point is an idle *slot* in the one-cycle-per-slot schedule, and
    // cutting at a partially-busy cycle would emit instructions whose
    // units are still occupied past the cut.
    let busy = sched.busy_map(machine);
    let idles: Vec<u64> = (0..sched.makespan())
        .filter(|&t| busy.iter().all(|row| !row[t as usize]))
        .collect();
    if idles.is_empty() {
        return retain_all(mask);
    }

    // Largest idle time with at least W nodes strictly after it.
    let starts: Vec<(u64, NodeId)> = {
        let mut v: Vec<(u64, NodeId)> = mask
            .iter()
            .map(|id| (sched.start(id).expect("schedule covers mask"), id))
            .collect();
        v.sort_unstable();
        v
    };
    let t_j = idles
        .iter()
        .rev()
        .copied()
        .find(|&t| starts.iter().filter(|(s, _)| *s > t).count() >= window);
    let Some(t_j) = t_j else {
        return retain_all(mask);
    };

    let emitted: Vec<(NodeId, u64)> = starts
        .iter()
        .copied()
        .filter(|(s, _)| *s < t_j)
        .map(|(s, id)| (id, s))
        .collect();
    let mut suffix = mask.clone();
    for &(id, _) in &emitted {
        suffix.remove(id);
    }
    let offset = t_j + 1;
    d.shift_all(&suffix, -(offset as i64));
    ChopResult {
        emitted,
        suffix,
        offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::{BlockId, SchedCtx, SchedOpts};
    use asched_rank::rank_schedule_default;

    fn m(w: usize) -> MachineModel {
        MachineModel::single_unit(w)
    }

    fn rank(g: &DepGraph, mask: &NodeSet, machine: &MachineModel) -> Schedule {
        rank_schedule_default(&mut SchedCtx::new(), g, mask, machine).unwrap()
    }

    /// Figure 1's delayed schedule x e r w b _ a with W = 2: the idle
    /// slot at t=5 has only one node after it (fewer than W), so a
    /// next-block instruction could still fill it — everything must be
    /// retained, exactly as the paper's Figure 2 walk-through assumes.
    #[test]
    fn fig1_after_idle_delay_is_fully_retained_at_w2() {
        let (g, nodes) = fig1_delayed();
        let [_x, _e, _w, _b, _a, _r] = nodes;
        let mask = g.all_nodes();
        let s = rank(&g, &mask, &m(2));
        let mut d = Deadlines::uniform(&g, &mask, s.makespan() as i64);
        let s = asched_rank::delay_idle_slots(
            &mut SchedCtx::new(),
            &g,
            &mask,
            &m(2),
            s,
            &mut d,
            &SchedOpts::default(),
        );
        assert_eq!(s.idle_slots(&m(2)), vec![5]);
        let chop_res = chop(&g, &m(2), &s, &mask, &mut d, 2);
        assert!(chop_res.emitted.is_empty());
        assert_eq!(chop_res.suffix.len(), 6);
        assert_eq!(chop_res.offset, 0);
    }

    /// The same schedule with W = 1 (no lookahead): the slot at t=5 has
    /// one follower >= W, so x e r w b is emitted and {a} is carried with
    /// deadline 7 - 6 = 1.
    #[test]
    fn fig1_chops_at_w1() {
        let (g, nodes) = fig1_delayed();
        let [x, _e, _w, _b, a, _r] = nodes;
        let mask = g.all_nodes();
        let s = rank(&g, &mask, &m(2));
        let mut d = Deadlines::uniform(&g, &mask, s.makespan() as i64);
        let s = asched_rank::delay_idle_slots(
            &mut SchedCtx::new(),
            &g,
            &mask,
            &m(2),
            s,
            &mut d,
            &SchedOpts::default(),
        );
        let chop_res = chop(&g, &m(2), &s, &mask, &mut d, 1);
        assert_eq!(chop_res.offset, 6);
        assert_eq!(chop_res.emitted.len(), 5);
        assert_eq!(chop_res.emitted[0], (x, 0));
        assert_eq!(chop_res.suffix.iter().collect::<Vec<_>>(), vec![a]);
        assert_eq!(d.get(a), 1); // 7 re-based by 6
    }

    fn fig1_delayed() -> (DepGraph, [asched_graph::NodeId; 6]) {
        let mut g = DepGraph::new();
        let e = g.add_simple("e", BlockId(0));
        let x = g.add_simple("x", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let w = g.add_simple("w", BlockId(0));
        let a = g.add_simple("a", BlockId(0));
        let r = g.add_simple("r", BlockId(0));
        for &(s, t) in &[(x, w), (x, b), (x, r), (e, w), (e, b), (w, a), (b, a)] {
            g.add_dep(s, t, 1);
        }
        (g, [x, e, w, b, a, r])
    }

    #[test]
    fn no_idle_slots_retains_all() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        let mask = g.all_nodes();
        let s = rank(&g, &mask, &m(2));
        let mut d = Deadlines::uniform(&g, &mask, 2);
        let r = chop(&g, &m(2), &s, &mask, &mut d, 2);
        assert!(r.emitted.is_empty());
        assert_eq!(r.suffix.len(), 2);
        assert_eq!(r.offset, 0);
        assert_eq!(d.get(a), 2); // untouched
    }

    #[test]
    fn fewer_than_w_nodes_retains_all() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, c, 3); // idle slots exist
        let mask = g.all_nodes();
        let s = rank(&g, &mask, &m(8));
        let mut d = Deadlines::uniform(&g, &mask, s.makespan() as i64);
        let r = chop(&g, &m(8), &s, &mask, &mut d, 8);
        assert!(r.emitted.is_empty());
        assert_eq!(r.offset, 0);
    }

    #[test]
    fn idle_with_too_few_followers_is_kept() {
        // a b _ c with W = 3: the only idle slot (t=2) has one follower,
        // but W = 3 are needed; retain everything.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, c, 2);
        g.add_dep(b, c, 1);
        let mask = g.all_nodes();
        let s = rank(&g, &mask, &m(3));
        assert_eq!(s.idle_slots(&m(3)), vec![2]);
        let mut d = Deadlines::uniform(&g, &mask, 4);
        let r = chop(&g, &m(3), &s, &mask, &mut d, 3);
        assert!(r.emitted.is_empty());
        assert_eq!(r.suffix.len(), 3);
    }

    #[test]
    fn picks_latest_qualifying_idle_slot() {
        // a _ b _ c d with W = 2: idle slots at 1 and 3; the later one
        // (3) has 2 >= W followers, so cut there.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        let dn = g.add_simple("d", BlockId(0));
        g.add_dep(a, b, 1);
        g.add_dep(b, c, 1);
        g.add_dep(b, dn, 1);
        let mask = g.all_nodes();
        let s = rank(&g, &mask, &m(2));
        assert_eq!(s.idle_slots(&m(2)), vec![1, 3]);
        let mut d = Deadlines::uniform(&g, &mask, s.makespan() as i64);
        let r = chop(&g, &m(2), &s, &mask, &mut d, 2);
        assert_eq!(r.offset, 4);
        assert_eq!(r.emitted.len(), 2); // a and b
        assert_eq!(r.suffix.len(), 2); // c and d
    }
}
