//! Legality of schedules under hardware lookahead (Definitions 2.1–2.3).
//!
//! A schedule `S` with permutation `P` for a trace is *legal* iff it
//! satisfies all data dependences plus:
//!
//! * **Window Constraint** — for every inversion `(i, j)` in `P` (an
//!   earlier position holding an instruction of a *later* basic block),
//!   `j - i + 1 <= W`: the inverted pair must fit inside one lookahead
//!   window.
//! * **Ordering Constraint** — `S` is obtainable as a greedy schedule
//!   from the priority list `L = P1 ∘ P2 ∘ … ∘ Pm` (the concatenated
//!   per-block subpermutations): the hardware never issues a later ready
//!   instruction in the window before an earlier ready one.
//!
//! These checks are the test oracle for `schedule_trace`.

use asched_graph::{DepGraph, MachineModel, NodeId, NodeSet, SchedCtx, SchedOpts, Schedule};
use asched_rank::list_schedule;

/// The subpermutation of `perm` for each block (Definition 2.1), in
/// ascending block id order.
pub fn subpermutations(g: &DepGraph, perm: &[NodeId]) -> Vec<Vec<NodeId>> {
    g.blocks()
        .iter()
        .map(|&b| {
            perm.iter()
                .copied()
                .filter(|&id| g.node(id).block == b)
                .collect()
        })
        .collect()
}

/// All Window Constraint violations in `perm`: inversions `(i, j)` with
/// `j - i + 1 > window` (Definition 2.2/2.3). Empty means the constraint
/// holds.
pub fn window_violations(g: &DepGraph, perm: &[NodeId], window: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for i in 0..perm.len() {
        for j in (i + 1)..perm.len() {
            let bi = g.node(perm[i]).block;
            let bj = g.node(perm[j]).block;
            if bi > bj && j - i + 1 > window {
                v.push((i, j));
            }
        }
    }
    v
}

/// Check the Ordering Constraint: the greedy schedule built from the
/// concatenated subpermutations must reproduce `sched` exactly.
pub fn ordering_constraint_holds(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    sched: &Schedule,
    perm: &[NodeId],
) -> bool {
    let list: Vec<NodeId> = subpermutations(g, perm).into_iter().flatten().collect();
    let rebuilt = list_schedule(ctx, g, mask, machine, &list, &SchedOpts::default());
    mask.iter().all(|id| rebuilt.start(id) == sched.start(id))
}

/// Full legality check (Definition 2.3): dependences are implied by the
/// schedule being valid; this adds the Window and Ordering constraints.
pub fn is_legal(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    sched: &Schedule,
) -> bool {
    let perm = sched.order();
    window_violations(g, &perm, machine.window).is_empty()
        && ordering_constraint_holds(ctx, g, mask, machine, sched, &perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::tests::fig2;
    use crate::{schedule_trace, LookaheadConfig};
    use asched_graph::BlockId;

    fn m(w: usize) -> MachineModel {
        MachineModel::single_unit(w)
    }

    #[test]
    fn fig2_result_is_legal() {
        let (g, _, _) = fig2();
        let mut ctx = SchedCtx::new();
        let res = schedule_trace(
            &mut ctx,
            &g,
            &m(2),
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .unwrap();
        assert!(is_legal(
            &mut ctx,
            &g,
            &g.all_nodes(),
            &m(2),
            &res.predicted
        ));
    }

    #[test]
    fn window_violation_detected() {
        // Three BB2-before-BB1 positions apart exceeds W=2.
        let mut g = DepGraph::new();
        let a1 = g.add_simple("a1", BlockId(0));
        let a2 = g.add_simple("a2", BlockId(0));
        let z = g.add_simple("z", BlockId(1));
        let perm = [z, a1, a2]; // z inverted with a2 at distance 3
        let viol = window_violations(&g, &perm, 2);
        assert_eq!(viol, vec![(0, 2)]);
        assert!(window_violations(&g, &perm, 3).is_empty());
    }

    #[test]
    fn adjacent_inversion_fits_window_two() {
        let mut g = DepGraph::new();
        let a1 = g.add_simple("a1", BlockId(0));
        let z = g.add_simple("z", BlockId(1));
        let perm = [z, a1]; // span 2 <= W=2
        assert!(window_violations(&g, &perm, 2).is_empty());
        assert_eq!(window_violations(&g, &perm, 1), vec![(0, 1)]);
    }

    /// The paper's Section 2.3 counter-example: with a zero-latency edge
    /// z -> g, the schedule P = x e r w b z q a p v g would violate the
    /// Ordering Constraint (greedy from L must schedule a before q).
    #[test]
    fn ordering_constraint_counterexample() {
        // Build Figure 2 but with latency 0 on z -> g; then force the
        // illegal permutation and check the oracle rejects it.
        let (g, [x, e, w, b, a, r], [z, q, p, v, gg]) = fig2();
        // Hand-build the illegal schedule: x e r w b z q a p v g.
        let order = [x, e, r, w, b, z, q, a, p, v, gg];
        let mut sched = Schedule::new(g.len());
        // Assign consecutive times respecting latencies loosely; what
        // matters is the *order*, so use the greedy reconstruction of
        // that exact order as "the schedule".
        for (t, &id) in order.iter().enumerate() {
            // place serially with enough gap to be dependence-valid
            sched.assign(id, t as u64 * 2, 0, 1);
        }
        // q (BB2) issues before a (BB1) even though a is ready by then:
        // greedy from L = P1 ∘ P2 would schedule a first, so the
        // ordering constraint must fail.
        assert!(!ordering_constraint_holds(
            &mut SchedCtx::new(),
            &g,
            &g.all_nodes(),
            &m(4),
            &sched,
            &order
        ));
        let _ = (e, w, b, r, p, v);
    }

    #[test]
    fn subpermutations_split_by_block() {
        let (g, [x, e, w, b, a, r], [z, q, p, v, gg]) = fig2();
        let perm = [x, z, e, q, w, b, a, r, p, v, gg];
        let subs = subpermutations(&g, &perm);
        assert_eq!(subs[0], vec![x, e, w, b, a, r]);
        assert_eq!(subs[1], vec![z, q, p, v, gg]);
    }
}
