//! Procedure `merge` (paper Figure 7).
//!
//! `merge(old, new)` schedules the union of the carried-over suffix `old`
//! and the next block's instructions `new`, assigning deadlines so that
//! *"instructions from `new` do not displace instructions in `old`, but
//! only fill idle slots that may be present among instructions in
//! `old`"*:
//!
//! 1. Schedule `old ∪ new` with an artificially large deadline `D`; its
//!    makespan `T` is a lower bound for any legal merged schedule.
//! 2. Give every `old` node `d(w) = min(d_old(w), T_old)` where `T_old`
//!    is the makespan of `old` alone (tighter deadlines established
//!    earlier — e.g. by idle-slot delaying — are retained, *except* when
//!    the greedy scheduler proves the pinned set infeasible as a whole:
//!    then `schedule_or_relax`'s fallback replaces the pins with the
//!    completions an unconstrained schedule actually achieves).
//! 3. Give every `new` node deadline `T`; while infeasible, relax all
//!    `new` deadlines (exponential-then-binary search over the shared
//!    relaxation amount; the paper bounds the relaxation count by the
//!    window size; we bound it by the guaranteed-feasible
//!    concatenation).

use crate::config::LookaheadConfig;
use crate::error::CoreError;
use asched_graph::{DepGraph, MachineModel, NodeSet, SchedCtx, SchedOpts};
use asched_obs::{record, Event, MergeRung, Pass};
use asched_rank::{rank_schedule, Deadlines, RankOutput};

/// Merge `old` and `new` under the deadline discipline of Figure 7.
///
/// `d` holds the current deadlines of `old` nodes (entries for `new`
/// nodes are overwritten); on success it holds the final deadlines of
/// every node in `old ∪ new`. `opts.release`, if given, carries
/// earliest-start times from already-emitted instructions. With an
/// enabled `opts.rec` the whole call is one timed `merge` pass, every
/// relaxation probe emits a `merge_probe` accept/reject event, and the
/// final `merge_done` event names the fallback rung that produced the
/// schedule and the relaxation applied to the `new` deadlines.
///
/// Every probe re-ranks the same `old ∪ new` set, so the `ctx` analysis
/// cache collapses the whole relaxation search onto one graph analysis.
///
/// Returns the rank-algorithm output for the merged set.
#[allow(clippy::too_many_arguments)]
pub fn merge(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    old: &NodeSet,
    new: &NodeSet,
    d: &mut Deadlines,
    cfg: &LookaheadConfig,
    opts: &SchedOpts,
) -> Result<RankOutput, CoreError> {
    let result = asched_obs::timed_span(opts.rec, Pass::Merge, opts.span, || {
        merge_inner(ctx, g, machine, old, new, d, cfg, opts)
    });
    if let Ok((out, rung, relaxed)) = &result {
        record!(
            opts.rec,
            Event::MergeDone {
                rung: *rung,
                makespan: out.schedule.makespan(),
                relaxed: *relaxed,
            }
        );
    }
    result.map(|(out, _, _)| out)
}

#[allow(clippy::too_many_arguments)]
fn merge_inner(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    old: &NodeSet,
    new: &NodeSet,
    d: &mut Deadlines,
    cfg: &LookaheadConfig,
    opts: &SchedOpts,
) -> Result<(RankOutput, MergeRung, i64), CoreError> {
    debug_assert!(old.is_disjoint(new), "old and new must be disjoint");
    let cur = old.union(new);

    // Release times can push any schedule past the plain work+latency
    // horizon; widen the "unconstrained" probes accordingly.
    let slack: i64 = opts
        .release
        .map(|r| cur.iter().map(|id| r[id.index()]).max().unwrap_or(0) as i64)
        .unwrap_or(0);
    let unbounded = |mask: &NodeSet| {
        let mut d = Deadlines::unbounded(g, mask);
        d.shift_all(mask, slack);
        d
    };

    // Step 1: unconstrained lower bound T for the merged set.
    let d_free = unbounded(&cur);
    let s0 = rank_schedule(ctx, g, &cur, machine, &d_free, opts)?;
    let t_lower = s0.schedule.makespan() as i64;

    // Makespan of `old` alone under its current deadlines. Off the
    // restricted machine the greedy scheduler may miss inherited
    // deadlines even though they were achievable in the larger context;
    // in that case re-derive achievable deadlines from an unconstrained
    // schedule of `old` alone.
    let old_alone = if old.is_empty() {
        None
    } else {
        Some(schedule_or_relax(ctx, g, machine, old, d, slack, opts)?)
    };
    let t_old = old_alone
        .as_ref()
        .map_or(0, |o| o.schedule.makespan() as i64);

    // Step 2: protect old; step 3: new gets the lower bound.
    if cfg.protect_old {
        for w in old.iter() {
            d.tighten(w, t_old);
        }
    } else {
        // Ablation: old nodes only get the merged bound.
        for w in old.iter() {
            d.tighten(w, t_lower);
        }
    }
    d.set_all(new, t_lower);

    // Guaranteed-feasible ceiling: schedule old alone, then new alone
    // after the largest latency (paper: "there is a feasible … schedule
    // that can be obtained by first scheduling all of the old nodes
    // followed by all of the new nodes, with possibly [max latency] idle
    // time between the two").
    let t_new_alone = rank_schedule(ctx, g, new, machine, &unbounded(new), opts)?
        .schedule
        .makespan() as i64;
    let ceiling = t_old + g.max_latency() as i64 + t_new_alone;

    // Rung 1 (the paper): relax only the `new` deadlines until feasible.
    match relax_loop(ctx, g, machine, &cur, new, d, t_lower, ceiling, opts) {
        Ok((out, delta)) => return Ok((out, MergeRung::Paper, delta)),
        Err(CoreError::MergeFailed) => {}
        Err(e) => return Err(e),
    }

    // Rung 2 (robustification off the restricted machine): the uniform
    // `t_old` cap can be greedily unachievable even though `old` alone
    // schedules fine. Pin every old node to its completion in the
    // old-alone schedule — achievable by construction — and retry. `new`
    // can then still fill old's idle slots, which is all the paper's
    // protection is meant to allow.
    if let Some(oa) = &old_alone {
        for id in old.iter() {
            d.set(
                id,
                oa.schedule.completion(id).expect("old scheduled") as i64,
            );
        }
        d.set_all(new, t_lower);
        match relax_loop(ctx, g, machine, &cur, new, d, t_lower, ceiling, opts) {
            Ok((out, delta)) => return Ok((out, MergeRung::PinnedOld, delta)),
            Err(CoreError::MergeFailed) => {}
            Err(e) => return Err(e),
        }
    }

    // Rung 3: the concatenation the paper's feasibility argument relies
    // on — old alone, then new alone after the largest latency.
    concatenation_fallback(ctx, g, machine, old, new, d, t_old, opts)
        .map(|out| (out, MergeRung::Concatenation, 0))
}

/// The paper's relaxation loop: schedule `cur` under `d`; on
/// infeasibility raise every `new` deadline, up to `ceiling`. Per the
/// paper ("or log(W) if binary search is used") the search is
/// exponential-then-binary over the relaxation amount rather than
/// one-cycle steps, so a merge costs O(log(ceiling - T)) rank runs.
#[allow(clippy::too_many_arguments)]
fn relax_loop(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    cur: &NodeSet,
    new: &NodeSet,
    d: &mut Deadlines,
    t_lower: i64,
    ceiling: i64,
    opts: &SchedOpts,
) -> Result<(RankOutput, i64), CoreError> {
    // Probe with `new` deadlines relaxed by `delta`; `d` holds the
    // baseline (delta = 0) assignment between probes.
    let probe =
        |ctx: &mut SchedCtx, delta: i64, d: &mut Deadlines| -> Result<RankOutput, CoreError> {
            d.shift_all(new, delta);
            let r = rank_schedule(ctx, g, cur, machine, d, opts);
            d.shift_all(new, -delta);
            record!(
                opts.rec,
                Event::MergeProbe {
                    delta,
                    feasible: r.is_ok()
                }
            );
            match r {
                Ok(out) => Ok(out),
                Err(asched_rank::RankError::Cyclic(c)) => Err(CoreError::Cyclic(c)),
                Err(asched_rank::RankError::Infeasible { .. }) => Err(CoreError::MergeFailed),
            }
        };
    let max_delta = ceiling - t_lower;
    // Exponential probe for a feasible relaxation.
    let mut hi = 0i64;
    let mut hi_out = loop {
        match probe(ctx, hi, d) {
            Ok(out) => break out,
            Err(CoreError::MergeFailed) => {
                if hi >= max_delta {
                    return Err(CoreError::MergeFailed);
                }
                hi = if hi == 0 { 1 } else { (hi * 2).min(max_delta) };
            }
            Err(e) => return Err(e),
        }
    };
    // Binary search for the smallest feasible relaxation (assuming the
    // monotonicity the paper's bound relies on; a non-monotone pocket
    // merely yields a slightly larger-than-minimal delta).
    let mut lo = hi / 2 + i64::from(hi > 0); // smallest untried below hi, 0 if hi==0
    if hi == 0 {
        lo = 0;
    }
    let (mut lo, mut hi) = (lo.min(hi), hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match probe(ctx, mid, d) {
            Ok(out) => {
                hi_out = out;
                hi = mid;
            }
            Err(CoreError::MergeFailed) => lo = mid + 1,
            Err(e) => return Err(e),
        }
    }
    d.shift_all(new, hi);
    Ok((hi_out, hi))
}

/// Schedule `set` under `d`; if the greedy scheduler misses the
/// (inherited) deadlines, schedule unconstrained instead and overwrite
/// `d` with the completions actually achieved — which are achievable by
/// construction and keep the rest of the pipeline monotone.
///
/// Contract: `d` is only rewritten on the *fallback* path, and only
/// after the unconstrained schedule succeeded — on an `Err` return `d`
/// is untouched. The rewrite intentionally supersedes deadlines pinned
/// earlier (e.g. by idle-slot delaying): those pins were advisory
/// targets for this very scheduling attempt, and once proven
/// greedy-infeasible the achieved completions are the tightest sound
/// replacement.
fn schedule_or_relax(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    set: &NodeSet,
    d: &mut Deadlines,
    slack: i64,
    opts: &SchedOpts,
) -> Result<RankOutput, CoreError> {
    match rank_schedule(ctx, g, set, machine, d, opts) {
        Ok(o) => Ok(o),
        Err(asched_rank::RankError::Cyclic(c)) => Err(CoreError::Cyclic(c)),
        Err(asched_rank::RankError::Infeasible { .. }) => {
            let mut free = Deadlines::unbounded(g, set);
            free.shift_all(set, slack);
            let o = rank_schedule(ctx, g, set, machine, &free, opts)?;
            for id in set.iter() {
                d.set(id, o.schedule.completion(id).expect("scheduled") as i64);
            }
            Ok(o)
        }
    }
}

/// The guaranteed-feasible schedule: `old` under its deadlines, then
/// `new` starting `max_latency` after `old` completes. Every cross edge
/// `old -> new` has latency at most `max_latency`, so the gap satisfies
/// them all; release times were honoured by both sub-schedules.
#[allow(clippy::too_many_arguments)]
fn concatenation_fallback(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    old: &NodeSet,
    new: &NodeSet,
    d: &mut Deadlines,
    t_old: i64,
    opts: &SchedOpts,
) -> Result<RankOutput, CoreError> {
    let slack: i64 = opts
        .release
        .map(|r| {
            old.union(new)
                .iter()
                .map(|id| r[id.index()])
                .max()
                .unwrap_or(0) as i64
        })
        .unwrap_or(0);
    let s_old = if old.is_empty() {
        None
    } else {
        Some(schedule_or_relax(ctx, g, machine, old, d, slack, opts)?)
    };
    let mut d_new = Deadlines::unbounded(g, new);
    d_new.shift_all(new, slack);
    let s_new = rank_schedule(ctx, g, new, machine, &d_new, opts)?;
    // Splice after the makespan of the old schedule we ACTUALLY use —
    // schedule_or_relax may have rescheduled `old` past the caller's
    // `t_old` estimate, and splicing at the stale offset would overlap
    // units or violate cross-block latencies.
    let t_old_actual = s_old
        .as_ref()
        .map_or(t_old.max(0) as u64, |o| o.schedule.makespan());
    let offset = t_old_actual + g.max_latency() as u64;

    let mut sched = asched_graph::Schedule::new(g.len());
    let mut ranks = vec![i64::MAX; g.len()];
    if let Some(so) = &s_old {
        for id in old.iter() {
            let st = so.schedule.start(id).expect("old scheduled");
            sched.assign(id, st, so.schedule.unit(id).unwrap(), g.exec_time(id));
            ranks[id.index()] = so.ranks[id.index()];
        }
    }
    for id in new.iter() {
        let st = s_new.schedule.start(id).expect("new scheduled") + offset;
        sched.assign(id, st, s_new.schedule.unit(id).unwrap(), g.exec_time(id));
        let c = st + g.exec_time(id) as u64;
        d.set(id, c as i64);
        ranks[id.index()] = c as i64;
    }
    let priority = sched.order();
    Ok(RankOutput {
        schedule: sched,
        ranks,
        priority,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use asched_graph::validate::validate_schedule;
    use asched_graph::{BlockId, NodeId};

    fn m1() -> MachineModel {
        MachineModel::single_unit(2)
    }

    /// The Figure 1 block (BB1) plus the Figure 2 block (BB2) and the
    /// latency-1 edge w -> z. Returns (graph, BB1 nodes, BB2 nodes).
    pub(crate) fn fig2() -> (DepGraph, [NodeId; 6], [NodeId; 5]) {
        let mut g = DepGraph::new();
        // BB1 (insertion order fixes paper tie-breaks).
        let e = g.add_simple("e", BlockId(0));
        let x = g.add_simple("x", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let w = g.add_simple("w", BlockId(0));
        let a = g.add_simple("a", BlockId(0));
        let r = g.add_simple("r", BlockId(0));
        for &(s, t) in &[(x, w), (x, b), (x, r), (e, w), (e, b), (w, a), (b, a)] {
            g.add_dep(s, t, 1);
        }
        // BB2: z -(1)-> q -(0)-> p -(1)-> v, z -(1)-> g.
        let z = g.add_simple("z", BlockId(1));
        let q = g.add_simple("q", BlockId(1));
        let p = g.add_simple("p", BlockId(1));
        let v = g.add_simple("v", BlockId(1));
        let gg = g.add_simple("g", BlockId(1));
        g.add_dep(z, q, 1);
        g.add_dep(q, p, 0);
        g.add_dep(p, v, 1);
        g.add_dep(z, gg, 1);
        // The cross-block edge of Figure 2.
        g.add_dep(w, z, 1);
        (g, [x, e, w, b, a, r], [z, q, p, v, gg])
    }

    /// Paper Figure 2: merged ranks with deadline 100 everywhere.
    #[test]
    fn fig2_merged_ranks_match_paper() {
        let (g, [x, e, w, b, a, r], [z, q, p, v, gg]) = fig2();
        let d = Deadlines::uniform(&g, &g.all_nodes(), 100);
        let mut ctx = SchedCtx::new();
        let ranks = asched_rank::compute_ranks(
            &mut ctx,
            &g,
            &g.all_nodes(),
            &m1(),
            &d,
            &SchedOpts::default(),
        )
        .unwrap();
        let rk = |n: NodeId| ranks[n.index()];
        assert_eq!(rk(gg), 100);
        assert_eq!(rk(v), 100);
        assert_eq!(rk(a), 100);
        assert_eq!(rk(r), 100);
        assert_eq!(rk(p), 98);
        assert_eq!(rk(b), 98);
        assert_eq!(rk(q), 97);
        assert_eq!(rk(z), 95);
        assert_eq!(rk(w), 93);
        assert_eq!(rk(e), 91);
        assert_eq!(rk(x), 90);
    }

    /// The merged lower bound (and final merged makespan) is 11, as in
    /// the paper's walk-through.
    #[test]
    fn fig2_merge_produces_makespan_11() {
        let (g, bb1, bb2) = fig2();
        let old: NodeSet = NodeSet::from_iter_with_universe(g.len(), bb1);
        let new: NodeSet = NodeSet::from_iter_with_universe(g.len(), bb2);
        // BB1 enters the merge with deadline 7 (its own makespan) and
        // d(x) = 1 established by idle-slot delaying.
        let mut d = Deadlines::uniform(&g, &old, 7);
        d.set(bb1[0], 1); // x
        let cfg = LookaheadConfig::default();
        let mut ctx = SchedCtx::new();
        let out = merge(
            &mut ctx,
            &g,
            &m1(),
            &old,
            &new,
            &mut d,
            &cfg,
            &SchedOpts::default(),
        )
        .unwrap();
        assert_eq!(out.schedule.makespan(), 11);
        // Old nodes keep their protected deadlines.
        assert_eq!(d.get(bb1[0]), 1);
        assert!(bb1.iter().all(|&n| d.get(n) <= 7));
        // New nodes got the merged bound 11.
        assert!(bb2.iter().all(|&n| d.get(n) == 11));
        validate_schedule(
            &g,
            &old.union(&new),
            &m1(),
            &out.schedule,
            Some(d.as_slice()),
        )
        .unwrap();
        // x must still come first, and the whole of BB1 completes by 7.
        assert_eq!(out.schedule.start(bb1[0]), Some(0));
    }

    /// Without a cross edge the two blocks merge into makespan 11 as well
    /// (BB1 takes 7 with one idle slot; BB2's chain fills and extends).
    #[test]
    fn merge_empty_old_is_plain_scheduling() {
        let (g, bb1, _) = fig2();
        let new: NodeSet = NodeSet::from_iter_with_universe(g.len(), bb1);
        let old = NodeSet::new(g.len());
        let mut d = Deadlines::uniform(&g, &old, 0);
        let cfg = LookaheadConfig::default();
        let out = merge(
            &mut SchedCtx::new(),
            &g,
            &m1(),
            &old,
            &new,
            &mut d,
            &cfg,
            &SchedOpts::default(),
        )
        .unwrap();
        assert_eq!(out.schedule.makespan(), 7);
        assert!(bb1.iter().all(|&n| d.get(n) == 7));
    }

    /// When old's deadlines make the merged lower bound unreachable,
    /// merge relaxes only the new deadlines until feasible.
    #[test]
    fn merge_relaxes_new_deadlines() {
        // old: single node o pinned first (deadline 1, as idle-slot
        // delaying would leave it). new: chain n1 -(2)-> n2. The
        // unconstrained optimum starts n1 *before* o (n1@0, o@1, n2@3,
        // T = 4), but protection forbids that, so the bound must be
        // relaxed to 5 (o@0, n1@1, n2@4).
        let mut g = DepGraph::new();
        let o = g.add_simple("o", BlockId(0));
        let n1 = g.add_simple("n1", BlockId(1));
        let n2 = g.add_simple("n2", BlockId(1));
        g.add_dep(n1, n2, 2);
        let old = NodeSet::from_iter_with_universe(g.len(), [o]);
        let new = NodeSet::from_iter_with_universe(g.len(), [n1, n2]);
        let mut d = Deadlines::uniform(&g, &old, 1);
        let cfg = LookaheadConfig::default();
        let out = merge(
            &mut SchedCtx::new(),
            &g,
            &m1(),
            &old,
            &new,
            &mut d,
            &cfg,
            &SchedOpts::default(),
        )
        .unwrap();
        assert_eq!(out.schedule.start(o), Some(0));
        assert_eq!(out.schedule.start(n1), Some(1));
        assert_eq!(out.schedule.start(n2), Some(4));
        assert_eq!(out.schedule.makespan(), 5);
        // New deadlines were relaxed from the lower bound 4 to 5.
        assert_eq!(d.get(n2), 5);
        validate_schedule(
            &g,
            &old.union(&new),
            &m1(),
            &out.schedule,
            Some(d.as_slice()),
        )
        .unwrap();
    }

    /// Release times from emitted instructions hold back new nodes.
    #[test]
    fn merge_respects_release_times() {
        let mut g = DepGraph::new();
        let n1 = g.add_simple("n1", BlockId(0));
        let old = NodeSet::new(g.len());
        let new = NodeSet::from_iter_with_universe(g.len(), [n1]);
        let mut d = Deadlines::uniform(&g, &old, 0);
        let release = vec![5u64];
        let cfg = LookaheadConfig::default();
        let opts = SchedOpts::default().with_release(&release);
        let out = merge(
            &mut SchedCtx::new(),
            &g,
            &m1(),
            &old,
            &new,
            &mut d,
            &cfg,
            &opts,
        )
        .unwrap();
        assert_eq!(out.schedule.start(n1), Some(5));
    }
}
