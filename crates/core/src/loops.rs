//! Anticipatory scheduling for a loop enclosing a trace of blocks
//! (paper Section 5.1).
//!
//! *"Our solution is to simply use Algorithm Lookahead from Section 4,
//! and add an extra step in which BBm is scheduled with BB1 as a
//! successor, using the loop-carried data dependences to establish the
//! dependence constraints between the two sets."*
//!
//! The extra step builds an auxiliary two-block graph — BBm plus a frozen
//! copy of BB1's already-chosen order, joined by the distance-1
//! loop-carried edges — runs the trace scheduler on it, and takes BBm's
//! resulting subpermutation as the final emitted order for BBm.

use crate::config::LookaheadConfig;
use crate::error::CoreError;
use crate::lookahead::schedule_trace;
use crate::single_block::schedule_single_block_loop;
use asched_graph::{BlockId, DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use asched_sim::{steady_period_with, trace_loop_completion, trace_steady_period_with};

/// Result of scheduling a loop that encloses a trace of basic blocks.
#[derive(Clone, Debug)]
pub struct LoopTraceResult {
    /// The emitted per-block orders, in trace order.
    pub block_orders: Vec<Vec<NodeId>>,
    /// Steady-state cycles per loop iteration (numerator, denominator),
    /// measured by the window simulator at the machine's window size.
    pub period: (u64, u64),
    /// Completion time of the first iteration.
    pub first_iter: u64,
}

/// Schedule a loop enclosing the trace formed by `g`'s blocks.
///
/// For a single-block loop this delegates to
/// [`schedule_single_block_loop`] (Section 5.2); for `m > 1` blocks it
/// runs Algorithm `Lookahead` and then the Section 5.1 wrap-around step.
pub fn schedule_loop_trace(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    cfg: &LookaheadConfig,
    opts: &SchedOpts,
) -> Result<LoopTraceResult, CoreError> {
    let blocks = g.blocks();
    if blocks.len() <= 1 {
        let r = schedule_single_block_loop(ctx, g, machine, cfg, opts)?;
        // 5.2.3 *selects* candidates at cfg.loop_eval_window (the
        // paper's literal-schedule semantics), but this result's period
        // is documented as measured at the machine's own window — keep
        // the two paths consistent.
        return Ok(LoopTraceResult {
            first_iter: asched_sim::loop_completion(ctx, g, machine, &r.order, 1),
            period: steady_period_with(ctx, g, machine, &r.order, cfg.loop_eval_iters),
            block_orders: vec![r.order],
        });
    }

    // Step 1: anticipatory scheduling of the trace, loop-carried edges
    // ignored (they have distance > 0, so the trace scheduler already
    // ignores them).
    let base = schedule_trace(ctx, g, machine, cfg, opts)?;
    let mut block_orders = base.block_orders;

    // Step 2: re-schedule BBm against next-iteration BB1.
    let bb1 = blocks[0];
    let bbm = *blocks.last().expect("blocks nonempty");
    let wrap_edges: Vec<_> = g
        .loop_carried_edges()
        .filter(|e| e.distance == 1 && g.node(e.src).block == bbm && g.node(e.dst).block == bb1)
        .collect();
    if !wrap_edges.is_empty() {
        let m_index = blocks.len() - 1;
        let new_last = reschedule_last_block(
            ctx,
            g,
            machine,
            cfg,
            opts,
            &block_orders[m_index],
            &block_orders[0],
            &wrap_edges,
        )?;
        block_orders[m_index] = new_last;
    }

    let first_iter = trace_loop_completion(ctx, g, machine, &block_orders, 1);
    let period = trace_steady_period_with(ctx, g, machine, &block_orders, cfg.loop_eval_iters);
    Ok(LoopTraceResult {
        block_orders,
        period,
        first_iter,
    })
}

/// Build the auxiliary graph (BBm as block 0, a frozen copy of BB1 as
/// block 1, wrap-around loop-carried edges as direct edges), run the
/// trace scheduler on it and extract BBm's order.
#[allow(clippy::too_many_arguments)]
fn reschedule_last_block(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    cfg: &LookaheadConfig,
    opts: &SchedOpts,
    bbm_order: &[NodeId],
    bb1_order: &[NodeId],
    wrap_edges: &[&asched_graph::DepEdge],
) -> Result<Vec<NodeId>, CoreError> {
    let mut aux = DepGraph::new();
    // orig -> aux id
    let mut to_aux: Vec<Option<NodeId>> = vec![None; g.len()];
    for (pos, &id) in bbm_order.iter().enumerate() {
        let mut data = g.node(id).clone();
        data.block = BlockId(0);
        data.source_pos = pos as u32;
        to_aux[id.index()] = Some(aux.add_node(data));
    }
    for (pos, &id) in bb1_order.iter().enumerate() {
        let mut data = g.node(id).clone();
        data.block = BlockId(1);
        data.source_pos = pos as u32;
        to_aux[id.index()] = Some(aux.add_node(data));
    }
    // BBm-internal loop-independent edges.
    for &id in bbm_order {
        for e in g.out_edges_li(id) {
            if let (Some(s), Some(d)) = (to_aux[e.src.index()], to_aux[e.dst.index()]) {
                if g.node(e.dst).block == g.node(e.src).block {
                    aux.add_edge(s, d, e.latency, 0, e.kind);
                }
            }
        }
    }
    // BB1-internal loop-independent edges (for timing fidelity).
    for &id in bb1_order {
        for e in g.out_edges_li(id) {
            if let (Some(s), Some(d)) = (to_aux[e.src.index()], to_aux[e.dst.index()]) {
                if g.node(e.dst).block == g.node(e.src).block {
                    aux.add_edge(s, d, e.latency, 0, e.kind);
                }
            }
        }
    }
    // Freeze BB1's chosen order with zero-latency chain edges.
    for pair in bb1_order.windows(2) {
        let (a, b) = (
            to_aux[pair[0].index()].unwrap(),
            to_aux[pair[1].index()].unwrap(),
        );
        aux.add_edge(a, b, 0, 0, asched_graph::DepKind::Control);
    }
    // Wrap-around dependences become direct cross-block edges.
    for e in wrap_edges {
        let (s, d) = (
            to_aux[e.src.index()].unwrap(),
            to_aux[e.dst.index()].unwrap(),
        );
        aux.add_edge(s, d, e.latency, 0, e.kind);
    }

    let res = schedule_trace(ctx, &aux, machine, cfg, opts)?;
    // Map BBm's aux order back to original ids.
    let mut from_aux: Vec<NodeId> = vec![NodeId(0); aux.len()];
    for (orig, slot) in to_aux.iter().enumerate() {
        if let Some(a) = slot {
            from_aux[a.index()] = NodeId(orig as u32);
        }
    }
    Ok(res.block_orders[0]
        .iter()
        .map(|&a| from_aux[a.index()])
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::DepKind;

    fn m(w: usize) -> MachineModel {
        MachineModel::single_unit(w)
    }

    fn run(g: &DepGraph, machine: &MachineModel, cfg: &LookaheadConfig) -> LoopTraceResult {
        schedule_loop_trace(&mut SchedCtx::new(), g, machine, cfg, &SchedOpts::default()).unwrap()
    }

    /// A two-block loop where the wrap-around step matters: BB2 contains
    /// a producer p whose result the *next* iteration's BB1 needs with
    /// latency 3. Scheduling p early in BB2 shortens the steady state.
    fn wraparound_loop() -> (DepGraph, [NodeId; 5]) {
        let mut g = DepGraph::new();
        let u = g.add_simple("u", BlockId(0));
        let f = g.add_simple("f", BlockId(0));
        // BB2: two fillers inserted BEFORE p so that a loop-blind
        // scheduler (breaking rank ties by source order) emits p last.
        let q1 = g.add_simple("q1", BlockId(1));
        let q2 = g.add_simple("q2", BlockId(1));
        let p = g.add_simple("p", BlockId(1));
        g.add_edge(p, u, 3, 1, DepKind::Data); // wrap-around dependence
        (g, [u, f, q1, q2, p])
    }

    #[test]
    fn wraparound_step_improves_steady_state() {
        let (g, [u, f, q1, q2, p]) = wraparound_loop();
        let cfg = LookaheadConfig::default();
        let machine = m(2);
        let res = run(&g, &machine, &cfg);
        // The extra step must have moved p to the front of BB2.
        assert_eq!(res.block_orders[1][0], p);
        // Compare against the loop-blind orders.
        let blind =
            crate::trace::schedule_blocks_independent(&mut SchedCtx::new(), &g, &machine, true)
                .unwrap();
        assert_eq!(*blind[1].last().unwrap(), p); // p last without loop info
        let warm = 16;
        let mut sctx = SchedCtx::new();
        let c1 = trace_loop_completion(&mut sctx, &g, &machine, &blind, warm);
        let c2 = trace_loop_completion(&mut sctx, &g, &machine, &blind, 2 * warm);
        let blind_period = c2 - c1;
        assert!(
            res.period.0 < blind_period,
            "wrap-aware {} should beat blind {}",
            res.period.0,
            blind_period
        );
        let _ = (u, f, q1, q2);
    }

    /// With no wrap-around edges the result equals plain trace
    /// scheduling.
    #[test]
    fn no_wrap_edges_is_plain_trace() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(1));
        g.add_dep(a, b, 1);
        let cfg = LookaheadConfig::default();
        let res = run(&g, &m(2), &cfg);
        let base =
            schedule_trace(&mut SchedCtx::new(), &g, &m(2), &cfg, &SchedOpts::default()).unwrap();
        assert_eq!(res.block_orders, base.block_orders);
    }

    /// Single-block loops delegate to Section 5.2.
    #[test]
    fn single_block_delegates() {
        let (g, nodes) = crate::single_block::tests::fig3();
        let res = run(&g, &m(2), &LookaheadConfig::default());
        assert_eq!(res.block_orders.len(), 1);
        // Schedule 2 of Figure 3.
        assert_eq!(
            res.block_orders[0],
            vec![nodes[0], nodes[1], nodes[3], nodes[2], nodes[4]]
        );
        let _ = nodes;
    }

    /// The steady-state period always respects the recurrence bound
    /// (max over cycles of latency/distance).
    #[test]
    fn period_respects_recurrence() {
        let (g, _) = wraparound_loop();
        let res = run(&g, &m(4), &LookaheadConfig::default());
        // Recurrence: p -> u (3+1 exec) over distance 1 plus u..p path?
        // u and p are in different blocks with no forward path, so the
        // binding cycle is just p->u: period >= exec(p) + 3 = 4? No —
        // the wrap edge alone is not a cycle; the real lower bound is
        // total work / units = 5.
        assert!(res.period.0 >= 5 * res.period.1);
    }
}
