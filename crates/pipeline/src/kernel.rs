//! Kernel extraction: a modulo schedule as a new single-block loop.

use crate::modulo::ModuloSchedule;
use asched_graph::{BlockId, DepGraph, NodeData, NodeId};
use asched_sim::InstStream;

/// The kernel of a software-pipelined loop, expressed as a new
/// single-block loop over the *same node ids*.
#[derive(Clone, Debug)]
pub struct KernelLoop {
    /// Dependence graph of the kernel: same nodes as the source loop,
    /// edges re-based by pipeline stage (`distance' = distance +
    /// stage(dst) - stage(src)`, always ≥ 0 for a valid schedule).
    pub graph: DepGraph,
    /// The kernel instruction order (one loop iteration of the emitted
    /// pipelined code).
    pub order: Vec<NodeId>,
    /// Pipeline stage per node.
    pub stage: Vec<u64>,
    /// The initiation interval achieved by the modulo schedule.
    pub ii: u64,
}

/// Build the kernel loop for modulo schedule `ms` of loop `g`.
pub fn kernel_loop(g: &DepGraph, ms: &ModuloSchedule) -> KernelLoop {
    let mut kg = DepGraph::new();
    let order = ms.kernel_order(g);
    // Re-number source positions to kernel order so stable tie-breaks
    // follow the pipelined code.
    let mut pos_of = vec![0u32; g.len()];
    for (i, &v) in order.iter().enumerate() {
        pos_of[v.index()] = i as u32;
    }
    for id in g.node_ids() {
        let d = g.node(id);
        kg.add_node(NodeData {
            label: d.label.clone(),
            exec_time: d.exec_time,
            class: d.class,
            block: BlockId(0),
            source_pos: pos_of[id.index()],
        });
    }
    for e in g.edges() {
        let d2 = e.distance as i64 + ms.stage(e.dst) as i64 - ms.stage(e.src) as i64;
        debug_assert!(d2 >= 0, "valid modulo schedules never rebase below 0");
        kg.add_edge(e.src, e.dst, e.latency, d2.max(0) as u32, e.kind);
    }
    let stage: Vec<u64> = g.node_ids().map(|v| ms.stage(v)).collect();
    KernelLoop {
        graph: kg,
        order,
        stage,
        ii: ms.ii,
    }
}

/// The dynamic stream of the full pipelined execution of `n` source
/// iterations: kernel passes `p = 0 .. n + S - 1`, where pass `p` runs
/// node `v` for source iteration `p - stage(v)` when that is in range
/// (this covers prolog, kernel and epilog uniformly).
pub fn pipelined_stream(kl: &KernelLoop, n: u32) -> InstStream {
    let stages = kl.stage.iter().copied().max().unwrap_or(0) + 1;
    let mut items: Vec<(NodeId, u32)> = Vec::new();
    for p in 0..(n as u64 + stages - 1) {
        for &v in &kl.order {
            let s = kl.stage[v.index()];
            if p >= s && p - s < n as u64 {
                items.push((v, (p - s) as u32));
            }
        }
    }
    let mut stream = InstStream::default();
    for (node, iter) in items {
        stream.push(node, iter);
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulo::modulo_schedule;
    use asched_graph::{DepKind, MachineModel};

    fn m1() -> MachineModel {
        MachineModel::single_unit(1)
    }

    #[test]
    fn kernel_preserves_nodes_and_rebases_distances() {
        // a -(4)-> b, no recurrence: II 2, b one stage later.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 4);
        let ms = modulo_schedule(&g, &m1()).unwrap();
        let kl = kernel_loop(&g, &ms);
        assert_eq!(kl.graph.len(), 2);
        // The a->b edge became loop-carried in the kernel.
        let e = kl.graph.out_edges(a).iter().find(|e| e.dst == b).unwrap();
        assert!(e.distance >= 1, "cross-stage edge must gain distance");
        assert_eq!(kl.ii, 2);
    }

    #[test]
    fn pipelined_stream_runs_every_instance_once() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 4);
        let ms = modulo_schedule(&g, &m1()).unwrap();
        let kl = kernel_loop(&g, &ms);
        let n = 5;
        let stream = pipelined_stream(&kl, n);
        assert_eq!(stream.len(), 2 * n as usize);
        // Every (node, iter) appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for it in stream.items() {
            assert!(seen.insert((it.node, it.iter)));
        }
    }

    #[test]
    fn pipelined_stream_is_simulable() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 4);
        g.add_edge(a, a, 0, 1, DepKind::Data);
        let ms = modulo_schedule(&g, &m1()).unwrap();
        let kl = kernel_loop(&g, &ms);
        let stream = pipelined_stream(&kl, 8);
        // Simulate against the ORIGINAL graph: the pipelined order must
        // be dependence-correct for the original loop semantics.
        let r = asched_sim::simulate(
            &mut asched_graph::SchedCtx::new(),
            &g,
            &MachineModel::single_unit(4),
            &stream,
            asched_sim::IssuePolicy::Strict,
            &asched_graph::SchedOpts::default(),
        );
        // 8 iterations, II 2 -> roughly 2*8 cycles once warmed up.
        assert!(r.completion >= 16);
        assert!(r.completion <= 16 + 6);
    }
}
