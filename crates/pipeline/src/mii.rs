//! Initiation-interval lower bounds.

use asched_graph::{DepGraph, FuClass, MachineModel};

/// Resource-constrained minimum initiation interval: no II can be
/// smaller than the work demanded of the busiest functional-unit class.
pub fn res_mii(g: &DepGraph, machine: &MachineModel) -> u64 {
    let total: u64 = g.node_ids().map(|id| g.exec_time(id) as u64).sum();
    let mut bound = total.div_ceil(machine.num_units() as u64).max(1);
    // An op occupying its unit for e cycles needs e *distinct* slots of
    // the modulo reservation table, so no II below the largest execution
    // time is ever feasible (regardless of unit count).
    bound = bound.max(
        g.node_ids()
            .map(|id| g.exec_time(id) as u64)
            .max()
            .unwrap_or(1),
    );
    for class in FuClass::CONCRETE {
        let work: u64 = g
            .node_ids()
            .filter(|&id| g.node(id).class == class)
            .map(|id| g.exec_time(id) as u64)
            .sum();
        if work == 0 {
            continue;
        }
        let cap = machine.capacity_for(class) as u64;
        assert!(cap > 0, "no unit can run class {class}");
        bound = bound.max(work.div_ceil(cap));
    }
    bound
}

/// Recurrence-constrained minimum initiation interval: the maximum over
/// dependence cycles of `ceil(total delay / total distance)`.
///
/// Computed by binary search on `II` with a Bellman–Ford positive-cycle
/// test on the constraint graph `start(v) >= start(u) + exec(u) +
/// latency - II * distance`.
pub fn rec_mii(g: &DepGraph) -> u64 {
    let delay_sum: i64 = g
        .edges()
        .map(|e| e.latency as i64 + g.exec_time(e.src) as i64)
        .sum::<i64>()
        .max(1);
    let feasible = |ii: i64| -> bool {
        // Longest-path Bellman-Ford; feasible iff no positive cycle.
        let n = g.len();
        let mut dist = vec![0i64; n];
        for round in 0..=n {
            let mut changed = false;
            for e in g.edges() {
                let w = g.exec_time(e.src) as i64 + e.latency as i64 - ii * e.distance as i64;
                let cand = dist[e.src.index()] + w;
                if cand > dist[e.dst.index()] {
                    dist[e.dst.index()] = cand;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
            if round == n {
                return false;
            }
        }
        true
    };
    let (mut lo, mut hi) = (1i64, delay_sum);
    debug_assert!(feasible(hi));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo as u64
}

/// The overall minimum initiation interval `max(ResMII, RecMII)`.
pub fn mii(g: &DepGraph, machine: &MachineModel) -> u64 {
    res_mii(g, machine).max(rec_mii(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::{BlockId, DepKind};

    #[test]
    fn res_mii_counts_work_per_unit() {
        let mut g = DepGraph::new();
        for i in 0..6 {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        assert_eq!(res_mii(&g, &MachineModel::single_unit(1)), 6);
        assert_eq!(res_mii(&g, &MachineModel::uniform(2, 1)), 3);
        assert_eq!(res_mii(&g, &MachineModel::uniform(3, 1)), 2);
    }

    /// Regression (found in code review): an op with execution time
    /// larger than the work bound must still raise the MII — it needs
    /// that many distinct modulo slots on its own unit.
    #[test]
    fn res_mii_covers_max_exec_time() {
        let mut g = DepGraph::new();
        let long = g.add_simple("div", BlockId(0));
        g.node_mut(long).exec_time = 3;
        g.add_simple("a", BlockId(0));
        // Work bound on 2 units = ceil(4/2) = 2, but the divide needs 3.
        assert_eq!(res_mii(&g, &MachineModel::uniform(2, 1)), 3);
        // And the schedule it produces is physically valid.
        let s = crate::modulo_schedule(&g, &MachineModel::uniform(2, 1)).unwrap();
        assert!(s.ii >= 3);
    }

    #[test]
    fn rec_mii_of_self_loop() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        g.add_edge(a, a, 4, 1, DepKind::Data);
        // delay = exec 1 + latency 4 = 5 over distance 1.
        assert_eq!(rec_mii(&g), 5);
    }

    #[test]
    fn rec_mii_of_two_node_cycle() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 2); // delay 1+2
        g.add_edge(b, a, 1, 2, DepKind::Data); // delay 1+1, distance 2
                                               // Cycle delay = 5, distance 2 -> ceil(5/2) = 3.
        assert_eq!(rec_mii(&g), 3);
    }

    #[test]
    fn acyclic_rec_mii_is_one() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 3);
        assert_eq!(rec_mii(&g), 1);
    }

    #[test]
    fn fig3_mii_is_six() {
        // The binding cycle is M -(4,1)-> S -(anti 0,0)-> M with total
        // delay (1+4) + (1+0) = 6 over distance 1: RecMII 6 — exactly
        // the paper's best achievable steady state for Figure 3 (its
        // Schedule 2 sustains 6 cycles/iteration). The M->M
        // self-dependence alone would only demand 5; without register
        // renaming the anti dependence closes the longer cycle.
        let g = asched_workloads::fixtures::fig3_graph();
        assert_eq!(rec_mii(&g), 6);
        assert_eq!(res_mii(&g, &MachineModel::single_unit(1)), 5);
        assert_eq!(mii(&g, &MachineModel::single_unit(1)), 6);
    }
}
