//! Software pipelining (modulo scheduling) and the anticipatory
//! post-pass.
//!
//! Paper Section 2.4 observes that the Figure 3 loop had already been
//! software-pipelined (the store belongs to the previous iteration) and
//! that *"anticipatory instruction scheduling can be used as a post-pass
//! to software pipelining (the two techniques are complementary)"*. This
//! crate provides the substrate to demonstrate that:
//!
//! * [`res_mii`] / [`rec_mii`] — the classic initiation-interval lower
//!   bounds (resource and recurrence constrained);
//! * [`modulo_schedule`] — simplified iterative modulo scheduling (Rau):
//!   height-priority placement into a modulo reservation table with
//!   bounded eviction;
//! * [`kernel_loop`] — re-expresses the modulo schedule as a new
//!   single-block loop (same nodes, re-based `<latency, distance>`
//!   edges) whose emitted order is the kernel;
//! * [`anticipatory_postpass`] — runs the paper's Section 5.2 loop
//!   scheduler over the kernel and reports the steady-state improvement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod mii;
mod modulo;
mod postpass;

pub use kernel::{kernel_loop, pipelined_stream, KernelLoop};
pub use mii::{mii, rec_mii, res_mii};
pub use modulo::{modulo_schedule, ModuloSchedule, PipelineError};
pub use postpass::{anticipatory_postpass, PostpassReport};
