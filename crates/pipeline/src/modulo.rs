//! Iterative modulo scheduling (simplified Rau'94).

use crate::mii::mii;
use asched_graph::{heights, DepGraph, MachineModel, NodeId};
use std::fmt;

/// A modulo schedule: per-node absolute start times under initiation
/// interval `ii`; the `k`-th iteration of node `v` starts at
/// `start[v] + k * ii`.
#[derive(Clone, Debug)]
pub struct ModuloSchedule {
    /// The achieved initiation interval.
    pub ii: u64,
    /// Absolute start time per node (all `Some` on success).
    pub start: Vec<Option<u64>>,
    /// Functional unit per node.
    pub unit: Vec<Option<usize>>,
}

impl ModuloSchedule {
    /// Pipeline stage of `v` (`start / ii`).
    pub fn stage(&self, v: NodeId) -> u64 {
        self.start[v.index()].expect("scheduled") / self.ii
    }

    /// Kernel-local cycle of `v` (`start mod ii`).
    pub fn local(&self, v: NodeId) -> u64 {
        self.start[v.index()].expect("scheduled") % self.ii
    }

    /// Number of pipeline stages (max stage + 1).
    pub fn stages(&self, g: &DepGraph) -> u64 {
        g.node_ids().map(|v| self.stage(v)).max().unwrap_or(0) + 1
    }

    /// Kernel emission order: by (local cycle, unit).
    pub fn kernel_order(&self, g: &DepGraph) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = g.node_ids().collect();
        v.sort_by_key(|&x| (self.local(x), self.unit[x.index()]));
        v
    }
}

/// Modulo scheduling failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// No schedule found up to the II cap.
    NoSchedule {
        /// The lower bound that was attempted first.
        mii: u64,
        /// The largest II tried.
        tried_up_to: u64,
    },
    /// The graph is empty.
    Empty,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NoSchedule { mii, tried_up_to } => write!(
                f,
                "no modulo schedule found (MII {mii}, tried up to II {tried_up_to})"
            ),
            PipelineError::Empty => write!(f, "empty loop body"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Iterative modulo scheduling: try `II = MII, MII+1, …` until a
/// schedule fits, with a per-II eviction budget.
///
/// Control-dependence edges onto the branch are honoured like data
/// edges, which keeps the branch in the final stage slot of the kernel.
pub fn modulo_schedule(
    g: &DepGraph,
    machine: &MachineModel,
) -> Result<ModuloSchedule, PipelineError> {
    if g.is_empty() {
        return Err(PipelineError::Empty);
    }
    let lower = mii(g, machine);
    let cap = lower + g.len() as u64 + g.max_latency() as u64 + 4;
    for ii in lower..=cap {
        if let Some(s) = try_ii(g, machine, ii) {
            return Ok(s);
        }
    }
    Err(PipelineError::NoSchedule {
        mii: lower,
        tried_up_to: cap,
    })
}

fn try_ii(g: &DepGraph, machine: &MachineModel, ii: u64) -> Option<ModuloSchedule> {
    let mask = g.all_nodes();
    let h = heights(g, &mask).ok()?;
    let mut order: Vec<NodeId> = g.node_ids().collect();
    order.sort_by(|&a, &b| {
        h[b.index()]
            .cmp(&h[a.index()])
            .then_with(|| g.stable_key(a).cmp(&g.stable_key(b)))
    });

    let n = g.len();
    let mut start: Vec<Option<u64>> = vec![None; n];
    let mut unit: Vec<Option<usize>> = vec![None; n];
    // Modulo reservation table: mrt[u][slot] = occupying node.
    let mut mrt: Vec<Vec<Option<NodeId>>> = vec![vec![None; ii as usize]; machine.num_units()];
    let mut queue: Vec<NodeId> = order.clone();
    let mut budget = (n * n + 16) as i64;
    // `never_before[v]`: monotonically growing lower bound used when an
    // op is evicted and replaced, guaranteeing progress.
    let mut min_start: Vec<u64> = vec![0; n];

    while let Some(v) = queue.first().copied() {
        queue.remove(0);
        budget -= 1;
        if budget < 0 {
            return None;
        }
        // Earliest start from *scheduled* predecessors (all edges, any
        // distance: start(v) >= start(u) + exec + lat - ii*dist).
        let mut est = min_start[v.index()] as i64;
        for e in g.in_edges(v) {
            if e.src == v {
                // Self edges constrain II (already in RecMII), not the
                // within-kernel placement.
                continue;
            }
            if let Some(su) = start[e.src.index()] {
                let c = su as i64 + g.exec_time(e.src) as i64 + e.latency as i64
                    - ii as i64 * e.distance as i64;
                est = est.max(c);
            }
        }
        let est = est.max(0) as u64;
        // Scan est .. est+ii-1 for a conflict-free slot; otherwise force
        // placement at est and evict.
        let exec = g.exec_time(v) as u64;
        let class = g.node(v).class;
        let mut placed = false;
        for t in est..est + ii {
            if let Some(u) = free_unit(machine, &mrt, class, t, exec, ii) {
                occupy(&mut mrt, u, t, exec, ii, v);
                start[v.index()] = Some(t);
                unit[v.index()] = Some(u);
                placed = true;
                break;
            }
        }
        if !placed {
            if exec > ii {
                return None; // cannot exist at this II
            }
            // Forced placement at est on the first compatible unit;
            // evict whatever overlaps.
            let u = machine.units_for(class).next()?;
            let evicted = evict_overlaps(&mut mrt, u, est, exec, ii);
            for w in evicted {
                start[w.index()] = None;
                unit[w.index()] = None;
                queue.push(w);
            }
            occupy(&mut mrt, u, est, exec, ii, v);
            start[v.index()] = Some(est);
            unit[v.index()] = Some(u);
            min_start[v.index()] = est + 1; // if evicted again, move on
        }
        // Evict already-scheduled successors whose constraint is now
        // violated.
        let sv = start[v.index()].unwrap();
        let evict: Vec<NodeId> = g
            .out_edges(v)
            .iter()
            .filter(|e| e.dst != v)
            .filter_map(|e| {
                let sd = start[e.dst.index()]?;
                let need = sv as i64 + g.exec_time(v) as i64 + e.latency as i64
                    - ii as i64 * e.distance as i64;
                (((sd as i64) < need) && e.dst != v).then_some(e.dst)
            })
            .collect();
        for w in evict {
            if let (Some(sw), Some(uw)) = (start[w.index()], unit[w.index()]) {
                vacate(&mut mrt, uw, sw, g.exec_time(w) as u64, ii);
                start[w.index()] = None;
                unit[w.index()] = None;
                if !queue.contains(&w) {
                    queue.push(w);
                }
            }
        }
    }

    // Verify all constraints (belt and braces).
    for e in g.edges() {
        let (su, sv) = (start[e.src.index()]?, start[e.dst.index()]?);
        let need = su as i64 + g.exec_time(e.src) as i64 + e.latency as i64
            - ii as i64 * e.distance as i64;
        if e.src != e.dst && (sv as i64) < need {
            return None;
        }
        if e.src == e.dst {
            // Self edge: exec + lat <= ii * dist must hold.
            let delay = g.exec_time(e.src) as i64 + e.latency as i64;
            if delay > ii as i64 * e.distance as i64 {
                return None;
            }
        }
    }
    Some(ModuloSchedule { ii, start, unit })
}

fn free_unit(
    machine: &MachineModel,
    mrt: &[Vec<Option<NodeId>>],
    class: asched_graph::FuClass,
    t: u64,
    exec: u64,
    ii: u64,
) -> Option<usize> {
    if exec > ii {
        // Fewer modulo slots than occupancy cycles: never placeable
        // (ResMII prevents this II from being tried; belt and braces).
        return None;
    }
    machine
        .units_for(class)
        .find(|&u| (0..exec).all(|k| mrt[u][((t + k) % ii) as usize].is_none()))
}

fn occupy(mrt: &mut [Vec<Option<NodeId>>], u: usize, t: u64, exec: u64, ii: u64, v: NodeId) {
    for k in 0..exec {
        let slot = ((t + k) % ii) as usize;
        debug_assert!(mrt[u][slot].is_none());
        mrt[u][slot] = Some(v);
    }
}

fn vacate(mrt: &mut [Vec<Option<NodeId>>], u: usize, t: u64, exec: u64, ii: u64) {
    for k in 0..exec {
        mrt[u][((t + k) % ii) as usize] = None;
    }
}

fn evict_overlaps(
    mrt: &mut [Vec<Option<NodeId>>],
    u: usize,
    t: u64,
    exec: u64,
    ii: u64,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    for k in 0..exec {
        let slot = ((t + k) % ii) as usize;
        if let Some(w) = mrt[u][slot].take() {
            if !out.contains(&w) {
                out.push(w);
            }
        }
    }
    // Also clear this op's other slots.
    for row in mrt[u].iter_mut() {
        if let Some(w) = row {
            if out.contains(w) {
                *row = None;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::{BlockId, DepKind};

    fn m1() -> MachineModel {
        MachineModel::single_unit(1)
    }

    #[test]
    fn simple_chain_achieves_res_mii() {
        // Three independent ops: II = 3 on one unit, stages collapse.
        let mut g = DepGraph::new();
        for i in 0..3 {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        let s = modulo_schedule(&g, &m1()).unwrap();
        assert_eq!(s.ii, 3);
    }

    #[test]
    fn recurrence_binds_ii() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 2);
        g.add_edge(b, a, 1, 1, DepKind::Data);
        // Cycle delay = (1+2)+(1+1) = 5 over distance 1 -> II >= 5.
        let s = modulo_schedule(&g, &m1()).unwrap();
        assert_eq!(s.ii, 5);
        // Constraint check: b starts >= a+3.
        let (sa, sb) = (s.start[a.index()].unwrap(), s.start[b.index()].unwrap());
        assert!(sb >= sa + 3);
    }

    #[test]
    fn latency_hidden_across_stages() {
        // a -(4)-> b with no recurrence: II = 2 (two ops, one unit),
        // with b in a later stage.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 4);
        let s = modulo_schedule(&g, &m1()).unwrap();
        assert_eq!(s.ii, 2);
        assert!(s.stage(b) > s.stage(a));
        let (sa, sb) = (s.start[a.index()].unwrap(), s.start[b.index()].unwrap());
        assert!(sb >= sa + 5);
    }

    #[test]
    fn multi_unit_packs_wider() {
        let mut g = DepGraph::new();
        for i in 0..4 {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        let s = modulo_schedule(&g, &MachineModel::uniform(2, 1)).unwrap();
        assert_eq!(s.ii, 2);
    }

    #[test]
    fn fig3_graph_schedules_at_mii() {
        let g = asched_workloads::fixtures::fig3_graph();
        let sch = modulo_schedule(&g, &m1()).unwrap();
        // MII = 6: the M -> S -> M cycle (see mii tests).
        assert_eq!(sch.ii, 6);
    }

    #[test]
    fn empty_graph_rejected() {
        let g = DepGraph::new();
        assert!(matches!(
            modulo_schedule(&g, &m1()),
            Err(PipelineError::Empty)
        ));
    }
}
