//! Anticipatory scheduling as a post-pass to software pipelining
//! (paper Section 2.4).
//!
//! Modulo scheduling fixes the *initiation interval* and the stage
//! assignment; within the kernel, though, the instruction *order* still
//! matters on a lookahead machine (the kernel is itself a single-block
//! loop). The post-pass re-runs the paper's Section 5.2 loop scheduler
//! over the kernel graph and keeps the better steady-state order.

use crate::kernel::{kernel_loop, KernelLoop};
use crate::modulo::{modulo_schedule, PipelineError};
use asched_core::{schedule_single_block_loop, CoreError, LookaheadConfig};
use asched_graph::{DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use asched_sim::steady_period_rational;

/// Outcome of the modulo + anticipatory pipeline.
#[derive(Clone, Debug)]
pub struct PostpassReport {
    /// The kernel loop produced by modulo scheduling.
    pub kernel: KernelLoop,
    /// Steady-state period of the kernel in modulo-schedule order
    /// (numerator, denominator).
    pub before: (u64, u64),
    /// Steady-state period after the anticipatory post-pass.
    pub after: (u64, u64),
    /// The post-pass kernel order.
    pub order: Vec<NodeId>,
}

/// Errors of the combined pipeline.
#[derive(Debug)]
pub enum PostpassError {
    /// Modulo scheduling failed.
    Pipeline(PipelineError),
    /// The anticipatory loop scheduler failed.
    Core(CoreError),
}

impl From<PipelineError> for PostpassError {
    fn from(e: PipelineError) -> Self {
        PostpassError::Pipeline(e)
    }
}

impl From<CoreError> for PostpassError {
    fn from(e: CoreError) -> Self {
        PostpassError::Core(e)
    }
}

/// Software-pipeline `g`, then anticipatorily reschedule the kernel.
///
/// Steady-state periods are measured with the window simulator at the
/// given machine's window size on the *kernel* graph (whose distance
/// labels encode the pipelining), in the paper's literal-schedule
/// semantics (`cfg.loop_eval_window`). The caller's [`SchedCtx`] is
/// threaded through both the loop scheduler and every simulator run.
pub fn anticipatory_postpass(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    machine: &MachineModel,
    cfg: &LookaheadConfig,
    opts: &SchedOpts,
) -> Result<PostpassReport, PostpassError> {
    let ms = modulo_schedule(g, machine)?;
    let kernel = kernel_loop(g, &ms);
    let eval = machine.with_window(cfg.loop_eval_window.max(1));
    let before = steady_period_rational(ctx, &kernel.graph, &eval, &kernel.order);
    let res = schedule_single_block_loop(ctx, &kernel.graph, machine, cfg, opts)?;
    let after = steady_period_rational(ctx, &kernel.graph, &eval, &res.order);
    // Keep whichever order is better (the post-pass must never hurt).
    let (order, after) = if after.0 * before.1 <= before.0 * after.1 {
        (res.order, after)
    } else {
        (kernel.order.clone(), before)
    };
    Ok(PostpassReport {
        kernel,
        before,
        after,
        order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    fn m1() -> MachineModel {
        MachineModel::single_unit(1)
    }

    /// The paper's Figure 3 loop, from the canonical fixture.
    fn fig3() -> DepGraph {
        asched_workloads::fixtures::fig3_graph()
    }

    fn run(g: &DepGraph, machine: &MachineModel) -> PostpassReport {
        anticipatory_postpass(
            &mut SchedCtx::new(),
            g,
            machine,
            &LookaheadConfig::default(),
            &SchedOpts::default(),
        )
        .unwrap()
    }

    #[test]
    fn postpass_never_hurts() {
        let g = fig3();
        let r = run(&g, &m1());
        assert!(
            r.after.0 * r.before.1 <= r.before.0 * r.after.1,
            "post-pass must not increase the period"
        );
        // Figure 3's RecMII is 6; the combined result can't beat it.
        assert!(r.after.0 >= 6 * r.after.1);
    }

    #[test]
    fn postpass_reaches_mii_on_fig3() {
        // Figure 3's recurrence (M -> S -> M through the pipelined
        // store) binds II to 6, which is exactly what the paper's
        // Schedule 2 sustains: the authors' loop was *already* software
        // pipelined, and the anticipatory loop scheduler recovers the
        // same steady state from the kernel.
        let g = fig3();
        let r = run(&g, &m1());
        assert_eq!(r.kernel.ii, 6);
        assert_eq!(r.after.0, 6 * r.after.1, "steady state equals the II");
    }

    #[test]
    fn postpass_on_acyclic_loop() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 4);
        let r = run(&g, &m1());
        // Two unit ops on one unit: period 2.
        assert_eq!(r.after.0, 2 * r.after.1);
    }
}
