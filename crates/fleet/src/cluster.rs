//! The cluster model: M replicas of the serving tier behind a
//! round-robin load balancer, driven by the DES kernel.
//!
//! Fidelity comes from *reusing the server's decision code*, not
//! re-implementing it: admission (shed vs queue) is
//! [`asched_serve::AdmissionPolicy::admit`] and deadline → step-budget
//! conversion is [`asched_serve::DeadlinePolicy`] — the exact
//! functions `asched-serve` calls on the request path. What the
//! simulator *models* (rather than executes) is everything with a
//! clock or a socket in it:
//!
//! - **replica** — a bounded accept queue feeding `workers` workers;
//! - **schedule cache** — a FIFO set of request fingerprints with the
//!   engine cache's insert-on-miss/evict-oldest behavior; a hit/miss
//!   decides which calibrated service-time distribution the request
//!   samples from. `cache_scope=worker` gives each worker a private
//!   cache of `cache` entries; `cache_scope=replica` pools the same
//!   memory into one cache of `cache × workers` entries per replica,
//!   the simulated counterpart of `asched-serve --cache-mode shared`;
//! - **degradation** — at dispatch, the queue-wait-decayed deadline is
//!   converted to a step budget; a request whose schedule needs more
//!   steps than the budget degrades to the Rank fallback (cheaper,
//!   counted, exactly like `engine_tasks_degraded` in production);
//! - **clients** — a shed request honors the server's `Retry-After`
//!   (plus deterministic jitter, mirroring how real clients
//!   desynchronize) up to a retry budget, then gives up.
//!
//! One seeded [`StdRng`] drives everything — arrivals, fingerprints,
//! size classes, service samples, retry jitter — so the entire run is
//! a deterministic function of `(scenario, model)`.

use std::collections::VecDeque;

use asched_serve::{Admission, AdmissionPolicy, DeadlinePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kernel::{nanos_from_secs, EventQueue, SimNanos, SECOND};
use crate::report::FleetReport;
use crate::scenario::{CacheScope, Scenario};
use crate::service::ServiceSampler;

/// Degraded (Rank-fallback) service time divisor: the fallback skips
/// the anticipatory passes, which dominate scheduling cost, so a
/// degraded task is modeled at a quarter of its sampled full cost.
const DEGRADED_COST_DIV: u64 = 4;

/// Retry jitter window, nanoseconds (0–100 ms): clients that were shed
/// together must not return in lockstep.
const RETRY_JITTER_NS: u64 = 100_000_000;

enum Ev {
    /// The traffic generator emits the next fresh request.
    Fresh,
    /// A request (fresh or retry) reaches the load balancer.
    Arrive { req: u32 },
    /// A worker finishes its in-flight request.
    Done { replica: u32, worker: u32 },
}

struct Req {
    born: SimNanos,
    attempts: u32,
    class: u32,
    fp: u64,
}

struct Replica {
    queue: VecDeque<(u32, SimNanos)>,
    /// Per worker: the in-flight request id, if busy.
    workers: Vec<Option<u32>>,
    /// FIFO schedule caches of resident fingerprints: one per worker
    /// (`cache_scope=worker`) or a single pooled one
    /// (`cache_scope=replica`).
    caches: Vec<VecDeque<u64>>,
}

struct Sim<'a> {
    sc: &'a Scenario,
    sampler: &'a ServiceSampler,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
    deadline_ms: u64,
    rng: StdRng,
    q: EventQueue<Ev>,
    reqs: Vec<Req>,
    replicas: Vec<Replica>,
    rr_next: usize,
    fresh_emitted: u64,
    fresh_clock_secs: f64,
    report: FleetReport,
}

/// Run one scenario to completion and return its report.
pub fn simulate(sc: &Scenario, sampler: &ServiceSampler) -> FleetReport {
    let deadline = DeadlinePolicy {
        default_deadline_ms: sc.deadline_ms,
        steps_per_ms: sc.steps_per_ms,
    };
    // Simulated clients send no deadline header; the effective deadline
    // is the server default, resolved through the same policy call the
    // server makes.
    let deadline_ms = deadline
        .effective_deadline_ms(None)
        .expect("no header is always valid");
    let sim = Sim {
        sc,
        sampler,
        admission: AdmissionPolicy {
            queue_capacity: sc.queue,
        },
        deadline,
        deadline_ms,
        rng: StdRng::seed_from_u64(sc.seed),
        q: EventQueue::new(),
        reqs: Vec::new(),
        replicas: (0..sc.replicas)
            .map(|_| Replica {
                queue: VecDeque::new(),
                workers: vec![None; sc.workers],
                caches: match sc.cache_scope {
                    CacheScope::Worker => vec![VecDeque::new(); sc.workers],
                    CacheScope::Replica => vec![VecDeque::new()],
                },
            })
            .collect(),
        rr_next: 0,
        fresh_emitted: 0,
        fresh_clock_secs: 0.0,
        report: FleetReport::new(sc.line()),
    };
    sim.run()
}

impl Sim<'_> {
    fn run(mut self) -> FleetReport {
        if self.sc.requests > 0 {
            self.fresh_clock_secs = self
                .sc
                .traffic
                .next_arrival_secs(&mut self.rng, self.fresh_clock_secs);
            self.q
                .push(nanos_from_secs(self.fresh_clock_secs), Ev::Fresh);
        }
        while let Some((now, ev)) = self.q.pop() {
            match ev {
                Ev::Fresh => self.on_fresh(now),
                Ev::Arrive { req } => self.arrive(req, now),
                Ev::Done { replica, worker } => {
                    self.on_done(replica as usize, worker as usize, now)
                }
            }
        }
        self.report.makespan_ns = self.q.now();
        self.report.requests = self.fresh_emitted;
        // Conservation: every fresh request either completed or gave
        // up, and every arrival was either served or shed.
        debug_assert_eq!(self.report.ok + self.report.gave_up, self.report.requests);
        debug_assert_eq!(self.report.ok + self.report.shed, self.report.attempts);
        self.report
    }

    fn on_fresh(&mut self, now: SimNanos) {
        let class = self.sample_class();
        let fp = self.rng.gen_range(0..self.sc.distinct.max(1));
        let id = self.reqs.len() as u32;
        self.reqs.push(Req {
            born: now,
            attempts: 0,
            class,
            fp,
        });
        self.fresh_emitted += 1;
        if self.fresh_emitted < self.sc.requests {
            self.fresh_clock_secs = self
                .sc
                .traffic
                .next_arrival_secs(&mut self.rng, self.fresh_clock_secs);
            self.q
                .push(nanos_from_secs(self.fresh_clock_secs), Ev::Fresh);
        }
        self.arrive(id, now);
    }

    /// Geometric size classes: each doubling happens with probability
    /// `tail`, capped at `tail_max` — a heavy-tailed trace-size mix.
    fn sample_class(&mut self) -> u32 {
        let mut k = 0;
        if self.sc.tail > 0.0 {
            while k < self.sc.tail_max && self.rng.gen_bool(self.sc.tail) {
                k += 1;
            }
        }
        k
    }

    fn arrive(&mut self, req: u32, now: SimNanos) {
        self.report.attempts += 1;
        let rep = self.rr_next % self.sc.replicas;
        self.rr_next = self.rr_next.wrapping_add(1);
        match self.admission.admit(self.replicas[rep].queue.len()) {
            Admission::Accept { depth } => {
                self.report.queue_depth.record(depth as u64);
                self.replicas[rep].queue.push_back((req, now));
                self.dispatch(rep, now);
            }
            Admission::Shed {
                retry_after_secs, ..
            } => {
                self.report.shed += 1;
                let r = &mut self.reqs[req as usize];
                r.attempts += 1;
                if r.attempts <= self.sc.retries {
                    self.report.retried += 1;
                    let jitter = self.rng.gen_range(0..RETRY_JITTER_NS);
                    self.q
                        .push(now + retry_after_secs * SECOND + jitter, Ev::Arrive { req });
                } else {
                    self.report.gave_up += 1;
                }
            }
        }
    }

    /// Start queued requests on idle workers until one side runs out.
    fn dispatch(&mut self, rep: usize, now: SimNanos) {
        loop {
            let Some(widx) = self.replicas[rep].workers.iter().position(Option::is_none) else {
                return;
            };
            let Some((req, enq)) = self.replicas[rep].queue.pop_front() else {
                return;
            };
            // The server computes the step budget at schedule time,
            // after queue wait has already eaten into the deadline.
            let elapsed_ms = (now - enq) / 1_000_000;
            let remaining_ms = self.deadline.remaining_ms(self.deadline_ms, elapsed_ms);
            let budget = self.deadline.per_task_step_budget(remaining_ms, 1);
            let (class, fp) = {
                let r = &self.reqs[req as usize];
                (r.class, r.fp)
            };
            let size_mult = 1u64 << class.min(32);
            let steps_needed = self.sc.base_steps.saturating_mul(size_mult);
            let degraded = budget < steps_needed;

            // FIFO schedule cache: hit if resident; insert on miss,
            // evicting the oldest entry at capacity — the engine
            // cache's replacement behavior. Replica scope pools the
            // workers' capacity into one cache.
            let hit = if self.sc.cache == 0 {
                false
            } else {
                let (cidx, capacity) = match self.sc.cache_scope {
                    CacheScope::Worker => (widx, self.sc.cache),
                    CacheScope::Replica => (0, self.sc.cache * self.sc.workers),
                };
                let cache = &mut self.replicas[rep].caches[cidx];
                if cache.contains(&fp) {
                    self.report.cache_hits += 1;
                    true
                } else {
                    self.report.cache_misses += 1;
                    cache.push_back(fp);
                    if cache.len() > capacity {
                        cache.pop_front();
                        self.report.cache_evictions += 1;
                    }
                    false
                }
            };

            let mut task_us = self
                .sampler
                .sample_task_us(&mut self.rng, hit)
                .saturating_mul(size_mult);
            if degraded {
                self.report.degraded += 1;
                task_us = task_us / DEGRADED_COST_DIV + 1;
            }
            let service_us = task_us + self.sampler.sample_overhead_us(&mut self.rng);
            self.report.service_us.record(service_us);
            self.replicas[rep].workers[widx] = Some(req);
            self.q.push(
                now.saturating_add(service_us.saturating_mul(1_000)),
                Ev::Done {
                    replica: rep as u32,
                    worker: widx as u32,
                },
            );
        }
    }

    fn on_done(&mut self, rep: usize, widx: usize, now: SimNanos) {
        let req = self.replicas[rep].workers[widx]
            .take()
            .expect("Done event for an idle worker");
        self.report.ok += 1;
        let born = self.reqs[req as usize].born;
        self.report.latency_us.record((now - born) / 1_000);
        self.dispatch(rep, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn run(line: &str) -> FleetReport {
        let sc = Scenario::parse(line).expect(line);
        simulate(&sc, &ServiceSampler::synthetic_default())
    }

    #[test]
    fn conservation_holds_under_every_regime() {
        for line in crate::scenario::default_sweep() {
            // Shrink for test speed; the invariants are size-free.
            let mut sc = Scenario::parse(line).unwrap();
            sc.requests = 5_000;
            let r = simulate(&sc, &ServiceSampler::synthetic_default());
            assert_eq!(r.ok + r.gave_up, r.requests, "{line}");
            assert_eq!(r.ok + r.shed, r.attempts, "{line}");
            assert_eq!(r.latency_us.count(), r.ok, "{line}");
        }
    }

    #[test]
    fn underload_sheds_nothing() {
        let r = run("poisson rate=100 reqs=3000 replicas=4 workers=2");
        assert_eq!(r.shed, 0);
        assert_eq!(r.ok, 3000);
        assert_eq!(r.gave_up, 0);
        // Goodput tracks the offered rate.
        assert!(
            (r.goodput_rps() / 100.0 - 1.0).abs() < 0.15,
            "{}",
            r.goodput_rps()
        );
    }

    #[test]
    fn overload_sheds_and_retries() {
        // ~640 req/s/worker capacity at full miss cost; 8000 req/s
        // into 2 workers with a tiny queue is hard overload.
        let r = run("poisson rate=8000 reqs=5000 replicas=1 workers=2 queue=4 retries=2 cache=0");
        assert!(r.shed > 0, "{}", r.render());
        assert!(r.retried > 0);
        assert!(
            r.gave_up > 0,
            "retry budget must exhaust under sustained overload"
        );
        assert!(r.shed_rate() > 0.3, "shed rate {}", r.shed_rate());
    }

    #[test]
    fn tight_deadline_degrades_instead_of_failing() {
        // budget = 5ms * 10 steps/ms = 50 < base_steps 64 even with no
        // queue wait: every request degrades, none are lost.
        let r = run("poisson rate=100 reqs=2000 deadline_ms=5 steps_per_ms=10 base_steps=64");
        assert_eq!(r.degraded, r.ok);
        assert_eq!(r.ok, 2000);
        // And a roomy deadline degrades nothing.
        let r = run("poisson rate=100 reqs=2000 deadline_ms=2000 steps_per_ms=100");
        assert_eq!(r.degraded, 0);
    }

    #[test]
    fn cache_warmth_follows_population_size() {
        // Population fits in cache: high hit rate after warmup.
        let warm = run("poisson rate=200 reqs=10000 replicas=1 workers=1 distinct=64 cache=128");
        // Population far exceeds cache: mostly misses, evictions flow.
        let cold =
            run("poisson rate=200 reqs=10000 replicas=1 workers=1 distinct=100000 cache=128");
        assert!(warm.cache_hit_rate() > 0.9, "{}", warm.cache_hit_rate());
        assert!(cold.cache_hit_rate() < 0.1, "{}", cold.cache_hit_rate());
        assert!(cold.cache_evictions > 0);
        assert_eq!(warm.cache_evictions, 0);
        // The cache gap shows up as a service-time gap.
        let warm_p50 = warm.service_us.percentile(0.5).unwrap();
        let cold_p50 = cold.service_us.percentile(0.5).unwrap();
        assert!(cold_p50 > 3 * warm_p50, "warm {warm_p50} cold {cold_p50}");
    }

    #[test]
    fn replica_scope_pools_worker_caches() {
        // 4 private 64-entry caches thrash against 200 distinct
        // fingerprints; one pooled 256-entry cache holds them all.
        let worker = run("poisson rate=200 reqs=10000 replicas=1 workers=4 distinct=200 cache=64");
        let replica = run(
            "poisson rate=200 reqs=10000 replicas=1 workers=4 distinct=200 cache=64 \
             cache_scope=replica",
        );
        assert!(
            replica.cache_hit_rate() > worker.cache_hit_rate() + 0.1,
            "worker {} replica {}",
            worker.cache_hit_rate(),
            replica.cache_hit_rate()
        );
        assert_eq!(replica.cache_evictions, 0);
        assert!(worker.cache_evictions > 0);
    }

    #[test]
    fn heavy_tail_stretches_service_times() {
        let thin = run("poisson rate=50 reqs=4000 tail=0");
        let heavy = run("poisson rate=50 reqs=4000 tail=0.4 tail_max=6");
        let thin_max = thin.service_us.max().unwrap();
        let heavy_max = heavy.service_us.max().unwrap();
        assert!(
            heavy_max > 2 * thin_max,
            "thin {thin_max} heavy {heavy_max}"
        );
    }

    #[test]
    fn retry_latency_includes_backoff() {
        // Every retried-then-served request carries at least the 1s
        // Retry-After in its end-to-end latency.
        let r = run("poisson rate=8000 reqs=3000 replicas=1 workers=1 queue=2 retries=3 cache=0");
        assert!(r.retried > 0);
        let max_us = r.latency_us.max().unwrap();
        assert!(max_us >= 1_000_000, "max latency {max_us}us");
    }
}
