//! Capacity planning: "how many replicas for X req/s at p99 < Y ms?"
//!
//! The question is answered empirically, not with a queueing formula:
//! each probe runs the full deterministic simulation at a candidate
//! replica count and checks the measured p99 and shed rate against the
//! target. Because feasibility is monotone in replica count (more
//! replicas never hurt under round-robin), the search is exponential
//! doubling to bracket, then binary search to the minimum — O(log n)
//! probes, each byte-reproducible.

use crate::cluster::simulate;
use crate::report::FleetReport;
use crate::scenario::Scenario;
use crate::service::ServiceSampler;
use crate::traffic::Traffic;

/// The service-level objective a capacity query must meet.
#[derive(Clone, Copy, Debug)]
pub struct CapacityTarget {
    /// Offered load, req/s (Poisson).
    pub rps: f64,
    /// p99 end-to-end latency bound, milliseconds.
    pub p99_ms: u64,
    /// Largest acceptable shed rate (fraction of arrivals 503'd).
    pub max_shed_rate: f64,
    /// Search ceiling on replica count.
    pub max_replicas: usize,
}

impl Default for CapacityTarget {
    fn default() -> Self {
        CapacityTarget {
            rps: 1_000.0,
            p99_ms: 100,
            max_shed_rate: 0.01,
            max_replicas: 1_024,
        }
    }
}

/// The answer to a capacity query.
#[derive(Clone, Debug)]
pub struct CapacityAnswer {
    /// Minimal feasible replica count (or the ceiling if infeasible).
    pub replicas: usize,
    /// Whether the target was met at `replicas`.
    pub feasible: bool,
    /// The report of the run at `replicas`.
    pub report: FleetReport,
    /// Every probe taken, as `(replicas, feasible)`, in order.
    pub probes: Vec<(usize, bool)>,
}

fn meets(r: &FleetReport, t: &CapacityTarget) -> bool {
    let p99_us = r.latency_us.percentile(0.99).unwrap_or(u64::MAX);
    p99_us <= t.p99_ms.saturating_mul(1_000) && r.shed_rate() <= t.max_shed_rate
}

/// Find the minimal replica count meeting `target` for the cluster
/// shape described by `base` (its traffic is replaced with a Poisson
/// process at the target rate; all other knobs — workers, queue,
/// deadline, cache, population — are kept).
pub fn required_replicas(
    base: &Scenario,
    target: &CapacityTarget,
    sampler: &ServiceSampler,
) -> CapacityAnswer {
    let probe = |n: usize| -> FleetReport {
        let mut sc = base.clone();
        sc.replicas = n;
        sc.traffic = Traffic::Poisson { rate: target.rps };
        simulate(&sc, sampler)
    };
    let max = target.max_replicas.max(1);
    let mut probes = Vec::new();

    // Bracket: double until feasible (or hit the ceiling).
    let mut lo = 0usize; // largest replica count known infeasible
    let mut n = 1usize;
    let (mut hi, mut hi_report) = loop {
        let r = probe(n);
        let ok = meets(&r, target);
        probes.push((n, ok));
        if ok {
            break (n, r);
        }
        lo = n;
        if n >= max {
            return CapacityAnswer {
                replicas: max,
                feasible: false,
                report: r,
                probes,
            };
        }
        n = (n * 2).min(max);
    };

    // Binary search the minimum inside (lo, hi].
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let r = probe(mid);
        let ok = meets(&r, target);
        probes.push((mid, ok));
        if ok {
            hi = mid;
            hi_report = r;
        } else {
            lo = mid;
        }
    }
    CapacityAnswer {
        replicas: hi,
        feasible: true,
        report: hi_report,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_minimal_feasible_count() {
        let base = Scenario::parse("poisson reqs=4000 workers=2 cache=0 retries=0").unwrap();
        let target = CapacityTarget {
            rps: 1_200.0,
            p99_ms: 50,
            max_shed_rate: 0.01,
            max_replicas: 64,
        };
        let sampler = ServiceSampler::synthetic_default();
        let ans = required_replicas(&base, &target, &sampler);
        assert!(ans.feasible, "probes: {:?}", ans.probes);
        assert!(ans.replicas >= 1);
        // Minimality: one replica fewer must have probed or be provably
        // infeasible. Verify directly.
        if ans.replicas > 1 {
            let mut sc = base.clone();
            sc.replicas = ans.replicas - 1;
            sc.traffic = Traffic::Poisson { rate: target.rps };
            let below = simulate(&sc, &sampler);
            assert!(!meets(&below, &target), "replicas-1 was also feasible");
        }
        // And the reported run meets the target.
        assert!(meets(&ans.report, &target));
    }

    #[test]
    fn impossible_targets_report_infeasible() {
        let base = Scenario::parse("poisson reqs=2000 workers=1 cache=0 retries=0").unwrap();
        // Sub-service-time p99 at any replica count: a single request's
        // own service (~3ms miss) already busts a 1ms p99.
        let target = CapacityTarget {
            rps: 500.0,
            p99_ms: 1,
            max_shed_rate: 0.5,
            max_replicas: 8,
        };
        let ans = required_replicas(&base, &target, &ServiceSampler::synthetic_default());
        assert!(!ans.feasible);
        assert_eq!(ans.replicas, 8);
        assert!(ans.probes.iter().all(|&(_, ok)| !ok));
    }
}
