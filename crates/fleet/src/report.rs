//! What one simulated run produced: conservation-checked counters,
//! virtual-time histograms, and their renderings.
//!
//! Everything in a [`FleetReport`] is a function of *virtual* time and
//! the scenario seed — no wall clock anywhere — which is what lets CI
//! run the same scenario twice and `cmp` the rendered output byte for
//! byte.

use asched_obs::Histogram;

use crate::kernel::SimNanos;

/// The outcome of one simulated scenario.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// The scenario's canonical line ([`crate::Scenario::line`]).
    pub scenario: String,
    /// Fresh requests offered.
    pub requests: u64,
    /// Arrivals at the load balancer: fresh + retries.
    pub attempts: u64,
    /// Requests that completed with a 200.
    pub ok: u64,
    /// Completed requests served by the Rank-fallback degraded path.
    pub degraded: u64,
    /// 503 shed events (one arrival each).
    pub shed: u64,
    /// Shed arrivals that scheduled a retry.
    pub retried: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Schedule-cache hits across all workers.
    pub cache_hits: u64,
    /// Schedule-cache misses across all workers.
    pub cache_misses: u64,
    /// Schedule-cache FIFO evictions across all workers.
    pub cache_evictions: u64,
    /// Virtual time of the last event — the run's makespan.
    pub makespan_ns: SimNanos,
    /// End-to-end latency of completed requests, µs (includes queue
    /// wait, service, and any retry backoff).
    pub latency_us: Histogram,
    /// Per-request service time, µs.
    pub service_us: Histogram,
    /// Accept-queue depth observed at each admission.
    pub queue_depth: Histogram,
}

impl FleetReport {
    /// Empty report for a scenario.
    pub fn new(scenario: String) -> Self {
        FleetReport {
            scenario,
            ..FleetReport::default()
        }
    }

    /// Fraction of arrivals answered 503.
    pub fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.attempts.max(1) as f64
    }

    /// Fraction of completed requests that degraded to Rank fallback.
    pub fn degraded_fraction(&self) -> f64 {
        self.degraded as f64 / self.ok.max(1) as f64
    }

    /// Completed requests per virtual second.
    pub fn goodput_rps(&self) -> f64 {
        self.ok as f64 / (self.makespan_ns as f64 / 1e9).max(1e-9)
    }

    /// Schedule-cache hit rate across all workers.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache_hits as f64 / (self.cache_hits + self.cache_misses).max(1) as f64
    }

    /// Flat metric rows for `BENCH_fleet.json`, all named
    /// `{prefix}.{metric}`.
    pub fn metrics(&self, prefix: &str) -> Vec<(String, f64)> {
        let pct = |q: f64| self.latency_us.percentile(q).unwrap_or(0) as f64;
        vec![
            (format!("{prefix}.requests"), self.requests as f64),
            (format!("{prefix}.attempts"), self.attempts as f64),
            (format!("{prefix}.ok"), self.ok as f64),
            (format!("{prefix}.shed"), self.shed as f64),
            (format!("{prefix}.gave_up"), self.gave_up as f64),
            (format!("{prefix}.shed_rate"), self.shed_rate()),
            (
                format!("{prefix}.degraded_fraction"),
                self.degraded_fraction(),
            ),
            (format!("{prefix}.goodput_rps"), self.goodput_rps()),
            (format!("{prefix}.latency_p50_us"), pct(0.5)),
            (format!("{prefix}.latency_p99_us"), pct(0.99)),
            (format!("{prefix}.latency_p999_us"), pct(0.999)),
            (format!("{prefix}.cache_hit_rate"), self.cache_hit_rate()),
            (
                format!("{prefix}.makespan_ms"),
                self.makespan_ns as f64 / 1e6,
            ),
        ]
    }

    /// Deterministic human-readable rendering — the text CI compares
    /// byte for byte between same-seed runs.
    pub fn render(&self) -> String {
        let pct = |h: &Histogram, q: f64| h.percentile(q).unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!("fleet scenario {}\n", self.scenario));
        out.push_str(&format!(
            "  requests {} attempts {} ok {} shed {} (rate {:.4}) retried {} gave_up {}\n",
            self.requests,
            self.attempts,
            self.ok,
            self.shed,
            self.shed_rate(),
            self.retried,
            self.gave_up,
        ));
        out.push_str(&format!(
            "  degraded {} (fraction {:.4})\n",
            self.degraded,
            self.degraded_fraction(),
        ));
        out.push_str(&format!(
            "  cache hits {} misses {} evictions {} (hit rate {:.4})\n",
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate(),
        ));
        out.push_str(&format!(
            "  makespan {:.6}s goodput {:.1} rps\n",
            self.makespan_ns as f64 / 1e9,
            self.goodput_rps(),
        ));
        out.push_str(&format!(
            "  latency p50 {}us p99 {}us p999 {}us max {}us\n",
            pct(&self.latency_us, 0.5),
            pct(&self.latency_us, 0.99),
            pct(&self.latency_us, 0.999),
            self.latency_us.max().unwrap_or(0),
        ));
        out.push_str(&format!(
            "  service p50 {}us p99 {}us\n",
            pct(&self.service_us, 0.5),
            pct(&self.service_us, 0.99),
        ));
        out.push_str(&format!(
            "  queue depth p50 {} p99 {} max {}\n",
            pct(&self.queue_depth, 0.5),
            pct(&self.queue_depth, 0.99),
            self.queue_depth.max().unwrap_or(0),
        ));
        out
    }

    /// One markdown table row; see [`markdown_header`] for the columns.
    pub fn markdown_row(&self, name: &str) -> String {
        format!(
            "| {} | {} | {} | {:.4} | {:.4} | {:.1} | {} | {} | {} |",
            name,
            self.requests,
            self.ok,
            self.shed_rate(),
            self.degraded_fraction(),
            self.goodput_rps(),
            self.latency_us.percentile(0.5).unwrap_or(0),
            self.latency_us.percentile(0.99).unwrap_or(0),
            self.latency_us.percentile(0.999).unwrap_or(0),
        )
    }
}

/// Header lines for the sweep's markdown summary table.
pub fn markdown_header() -> String {
    "| scenario | requests | ok | shed_rate | degraded | goodput_rps | p50_us | p99_us | p999_us |\n\
     |---|---|---|---|---|---|---|---|---|"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_guard_against_zero() {
        let r = FleetReport::new("poisson".into());
        assert_eq!(r.shed_rate(), 0.0);
        assert_eq!(r.degraded_fraction(), 0.0);
        assert_eq!(r.cache_hit_rate(), 0.0);
        assert_eq!(r.goodput_rps(), 0.0);
    }

    #[test]
    fn render_is_stable() {
        let mut r = FleetReport::new("poisson name=x".into());
        r.requests = 10;
        r.attempts = 12;
        r.ok = 9;
        r.shed = 3;
        r.retried = 2;
        r.gave_up = 1;
        r.makespan_ns = 2_000_000_000;
        r.latency_us.record(100);
        r.latency_us.record(900);
        let a = r.render();
        assert_eq!(a, r.render());
        assert!(a.contains("requests 10 attempts 12 ok 9 shed 3 (rate 0.2500)"));
        assert!(a.contains("makespan 2.000000s goodput 4.5 rps"));
    }

    #[test]
    fn metrics_rows_carry_prefix() {
        let r = FleetReport::new("s".into());
        let m = r.metrics("fleet.baseline");
        assert!(m.iter().all(|(k, _)| k.starts_with("fleet.baseline.")));
        assert!(m.iter().any(|(k, _)| k == "fleet.baseline.goodput_rps"));
    }
}
