//! Portable software trigonometry for the traffic generators.
//!
//! `f64::sin` routes to the platform libm, whose last-ulp results vary
//! between hosts. The diurnal traffic generator feeds `sin` into an
//! acceptance probability, so a single differing ulp could flip one
//! Bernoulli draw and cascade into a completely different event
//! sequence — breaking the crate's byte-identical-output promise.
//! [`portable_sin`] is built from nothing but IEEE-754 add/mul/rem,
//! which are exactly specified, so it returns the same bits on every
//! platform. Absolute error is below 1e-11 over the whole range after
//! reduction — far tighter than the traffic model needs.

/// Sine computed in software, bit-stable across platforms.
///
/// Strategy: reduce the argument modulo 2π with IEEE-exact `%`, fold
/// into `[-π/2, π/2]` with the reflection identities, then evaluate the
/// odd Taylor polynomial through the x¹⁷ term (tail < 1e-13 at π/2).
/// The reduction uses a single f64 2π, so extremely large arguments
/// lose phase accuracy — irrelevant here: callers pass virtual-time
/// phases below a few thousand seconds.
pub fn portable_sin(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::NAN;
    }
    const PI: f64 = core::f64::consts::PI;
    const TAU: f64 = core::f64::consts::TAU;
    // Reduce to (-π, π]. `%` (fmod) is exactly rounded per IEEE-754.
    let mut r = x % TAU;
    if r > PI {
        r -= TAU;
    } else if r < -PI {
        r += TAU;
    }
    // Fold into [-π/2, π/2]: sin(x) = sin(π−x) on the right half,
    // sin(x) = −sin(x+π) on the left half.
    if r > PI / 2.0 {
        r = PI - r;
    } else if r < -PI / 2.0 {
        r = -PI - r;
    }
    let t2 = r * r;
    // sin(r) = r (1 − r²/3! + r⁴/5! − r⁶/7! + ...), Horner form.
    let series = 1.0
        + t2 * (-1.0 / 6.0
            + t2 * (1.0 / 120.0
                + t2 * (-1.0 / 5040.0
                    + t2 * (1.0 / 362_880.0
                        + t2 * (-1.0 / 39_916_800.0
                            + t2 * (1.0 / 6_227_020_800.0
                                + t2 * (-1.0 / 1_307_674_368_000.0
                                    + t2 * (1.0 / 355_687_428_096_000.0))))))));
    r * series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_closely() {
        let mut x = -50.0f64;
        while x <= 50.0 {
            let got = portable_sin(x);
            let want = x.sin();
            assert!(
                (got - want).abs() < 1e-10,
                "sin({x}): got {got}, libm {want}"
            );
            x += 0.137;
        }
    }

    #[test]
    fn exact_landmarks() {
        assert_eq!(portable_sin(0.0), 0.0);
        assert!((portable_sin(core::f64::consts::FRAC_PI_2) - 1.0).abs() < 1e-12);
        assert!((portable_sin(-core::f64::consts::FRAC_PI_2) + 1.0).abs() < 1e-12);
        assert!(portable_sin(core::f64::consts::PI).abs() < 1e-12);
        assert!(portable_sin(f64::NAN).is_nan());
        assert!(portable_sin(f64::INFINITY).is_nan());
    }
}
