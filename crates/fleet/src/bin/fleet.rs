//! `asched-fleet` — the serving-tier fleet simulator CLI.
//!
//! ```text
//! asched-fleet run "SCENARIO" [--model FILE] [--out FILE]
//! asched-fleet capacity "SCENARIO" --target-rps X --p99-ms Y
//!              [--max-shed F] [--max-replicas N] [--model FILE]
//! asched-fleet sweep [--scenario LINE]... [--model FILE]
//!              [--snapshot LABEL] [--markdown FILE]
//! ```
//!
//! `SCENARIO` is one line of the grammar documented in
//! `asched_fleet::scenario` (e.g. `poisson rate=800 reqs=1000000
//! replicas=4 workers=2 seed=42`). `--model` points at an
//! `asched-service-model-v1` file from `asched-trace --calibrate`;
//! without it a synthetic default service-time model is used.
//!
//! Everything printed to **stdout** is a function of virtual time
//! only — two runs of the same command produce byte-identical stdout
//! (CI `cmp`s exactly this). Wall-clock timing goes to stderr.

use std::process::ExitCode;
use std::time::Instant;

use asched_bench::report::snapshot_json;
use asched_fleet::{
    default_sweep, markdown_header, required_replicas, simulate, CapacityTarget, FleetReport,
    Scenario, ServiceSampler,
};
use asched_trace::ServiceModel;

fn load_sampler(model: Option<&str>) -> Result<ServiceSampler, String> {
    match model {
        None => Ok(ServiceSampler::synthetic_default()),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read model {path}: {e}"))?;
            let model = ServiceModel::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            ServiceSampler::from_model(&model).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: asched-fleet run \"SCENARIO\" [--model FILE] [--out FILE]\n\
         \x20      asched-fleet capacity \"SCENARIO\" --target-rps X --p99-ms Y\n\
         \x20                   [--max-shed F] [--max-replicas N] [--model FILE]\n\
         \x20      asched-fleet sweep [--scenario LINE]... [--model FILE]\n\
         \x20                   [--snapshot LABEL] [--markdown FILE]\n\
         \n\
         SCENARIO grammar: poisson|onoff|diurnal key=value...\n\
         e.g. \"poisson rate=800 reqs=1000000 replicas=4 workers=2 seed=42\""
    );
    std::process::exit(2)
}

struct Flags {
    scenario_args: Vec<String>,
    scenarios: Vec<String>,
    model: Option<String>,
    out: Option<String>,
    snapshot: Option<String>,
    markdown: Option<String>,
    target_rps: Option<f64>,
    p99_ms: Option<u64>,
    max_shed: f64,
    max_replicas: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        scenario_args: Vec::new(),
        scenarios: Vec::new(),
        model: None,
        out: None,
        snapshot: None,
        markdown: None,
        target_rps: None,
        p99_ms: None,
        max_shed: 0.01,
        max_replicas: 1_024,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--model" => f.model = Some(val("--model")?),
            "--out" => f.out = Some(val("--out")?),
            "--snapshot" => f.snapshot = Some(val("--snapshot")?),
            "--markdown" => f.markdown = Some(val("--markdown")?),
            "--scenario" => f.scenarios.push(val("--scenario")?),
            "--target-rps" => {
                f.target_rps = Some(
                    val("--target-rps")?
                        .parse()
                        .map_err(|e| format!("--target-rps: {e}"))?,
                )
            }
            "--p99-ms" => {
                f.p99_ms = Some(
                    val("--p99-ms")?
                        .parse()
                        .map_err(|e| format!("--p99-ms: {e}"))?,
                )
            }
            "--max-shed" => {
                f.max_shed = val("--max-shed")?
                    .parse()
                    .map_err(|e| format!("--max-shed: {e}"))?
            }
            "--max-replicas" => {
                f.max_replicas = val("--max-replicas")?
                    .parse()
                    .map_err(|e| format!("--max-replicas: {e}"))?
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => f.scenario_args.push(other.to_string()),
        }
    }
    Ok(f)
}

fn run_cmd(f: &Flags) -> Result<String, String> {
    let line = f.scenario_args.join(" ");
    if line.is_empty() {
        return Err("run needs a scenario line".into());
    }
    let sc = Scenario::parse(&line)?;
    let sampler = load_sampler(f.model.as_deref())?;
    let started = Instant::now();
    let report = simulate(&sc, &sampler);
    eprintln!(
        "simulated {} arrivals in {:.2}s wall",
        report.attempts,
        started.elapsed().as_secs_f64()
    );
    Ok(report.render())
}

fn capacity_cmd(f: &Flags) -> Result<String, String> {
    let line = f.scenario_args.join(" ");
    if line.is_empty() {
        return Err("capacity needs a scenario line".into());
    }
    let sc = Scenario::parse(&line)?;
    let target = CapacityTarget {
        rps: f.target_rps.ok_or("capacity needs --target-rps")?,
        p99_ms: f.p99_ms.ok_or("capacity needs --p99-ms")?,
        max_shed_rate: f.max_shed,
        max_replicas: f.max_replicas,
    };
    let sampler = load_sampler(f.model.as_deref())?;
    let started = Instant::now();
    let ans = required_replicas(&sc, &target, &sampler);
    eprintln!(
        "capacity search took {} probes in {:.2}s wall",
        ans.probes.len(),
        started.elapsed().as_secs_f64()
    );
    let mut out = format!(
        "capacity target rps={} p99_ms={} max_shed={} max_replicas={}\n",
        target.rps, target.p99_ms, target.max_shed_rate, target.max_replicas
    );
    for (n, ok) in &ans.probes {
        out.push_str(&format!(
            "  probe replicas={n} {}\n",
            if *ok { "feasible" } else { "infeasible" }
        ));
    }
    out.push_str(&format!(
        "answer replicas={} {}\n",
        ans.replicas,
        if ans.feasible {
            "feasible"
        } else {
            "INFEASIBLE"
        }
    ));
    out.push_str(&ans.report.render());
    Ok(out)
}

fn sweep_cmd(f: &Flags) -> Result<String, String> {
    let lines: Vec<String> = if f.scenarios.is_empty() {
        default_sweep().into_iter().map(String::from).collect()
    } else {
        f.scenarios.clone()
    };
    let sampler = load_sampler(f.model.as_deref())?;
    let started = Instant::now();
    let mut table = markdown_header();
    table.push('\n');
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut reports: Vec<(String, FleetReport)> = Vec::new();
    for line in &lines {
        let sc = Scenario::parse(line).map_err(|e| format!("{line:?}: {e}"))?;
        let report = simulate(&sc, &sampler);
        table.push_str(&report.markdown_row(&sc.name));
        table.push('\n');
        metrics.extend(report.metrics(&format!("fleet.{}", sc.name)));
        reports.push((sc.name, report));
    }
    eprintln!(
        "swept {} scenarios in {:.2}s wall",
        reports.len(),
        started.elapsed().as_secs_f64()
    );
    if let Some(label) = &f.snapshot {
        let json = snapshot_json(label, &metrics, None);
        let path = format!("BENCH_{label}.json");
        std::fs::write(&path, json + "\n").map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &f.markdown {
        std::fs::write(path, &table).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(table)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("asched-fleet: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "run" => run_cmd(&flags),
        "capacity" => capacity_cmd(&flags),
        "sweep" => sweep_cmd(&flags),
        "--help" | "-h" => usage(),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(stdout) => {
            let out = if let Some(path) = &flags.out {
                if let Err(e) = std::fs::write(path, &stdout) {
                    eprintln!("asched-fleet: cannot write {path}: {e}");
                    return ExitCode::from(1);
                }
                eprintln!("wrote {path}");
                stdout
            } else {
                stdout
            };
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("asched-fleet: {e}");
            ExitCode::from(2)
        }
    }
}
