//! The scenario grammar: one line fully describes one simulated run.
//!
//! ```text
//! poisson rate=800 reqs=1000000 replicas=4 workers=2 queue=64 seed=42
//! onoff hi=1500 lo=100 period_s=4 duty=0.3 reqs=200000
//! diurnal rate=700 amp=0.8 period_s=30 reqs=200000 replicas=3
//! ```
//!
//! The first token picks the traffic shape ([`crate::Traffic`]); the
//! rest are `key=value` pairs, every one optional, with the defaults
//! below. A scenario is *closed over its knobs*: [`Scenario::line`]
//! re-emits the canonical normalized form (every knob explicit, fixed
//! order), which is what reports echo and what makes two runs
//! comparable at a glance.
//!
//! | key | default | meaning |
//! |-----|---------|---------|
//! | `name` | the kind | label used in sweep tables and metric names |
//! | `rate` | 500 | mean req/s (poisson, diurnal) |
//! | `hi`/`lo` | 1500/100 | on/off burst and quiet rates (onoff) |
//! | `period_s` | 10 | burst or sinusoid period, seconds |
//! | `duty` | 0.3 | burst fraction of each period (onoff) |
//! | `amp` | 0.8 | relative sinusoid swing (diurnal) |
//! | `reqs` | 100000 | fresh requests offered |
//! | `replicas` | 4 | serve replicas behind the round-robin LB |
//! | `workers` | 2 | workers per replica |
//! | `queue` | 64 | accept-queue bound per replica |
//! | `deadline_ms` | 2000 | server default deadline |
//! | `steps_per_ms` | 100 | deadline→step-budget conversion |
//! | `cache` | 128 | per-worker schedule-cache capacity (0 = off) |
//! | `cache_scope` | worker | `worker` = private caches; `replica` = one shared cache per replica of capacity `cache × workers` |
//! | `distinct` | 256 | distinct request fingerprints in the population |
//! | `retries` | 3 | client retry budget after a 503 |
//! | `tail` | 0 | per-doubling probability of a larger request |
//! | `tail_max` | 6 | cap on size-class doublings |
//! | `base_steps` | 64 | schedule length of a size-class-0 request |
//! | `seed` | 42 | the one RNG seed for the whole run |

use crate::traffic::Traffic;

/// How a replica's workers share their schedule cache — the simulated
/// counterpart of `asched-serve --cache-mode`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheScope {
    /// Each worker owns a private cache of `cache` entries.
    #[default]
    Worker,
    /// All workers of a replica share one cache of `cache × workers`
    /// entries — same aggregate memory, pooled.
    Replica,
}

impl CacheScope {
    fn token(self) -> &'static str {
        match self {
            CacheScope::Worker => "worker",
            CacheScope::Replica => "replica",
        }
    }
}

/// A fully-specified simulation scenario. See the module docs for the
/// line grammar and knob meanings.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Label for tables and metric prefixes.
    pub name: String,
    /// Fresh-request arrival process.
    pub traffic: Traffic,
    /// Fresh requests offered (retries come on top).
    pub requests: u64,
    /// Serve replicas behind the load balancer.
    pub replicas: usize,
    /// Workers per replica.
    pub workers: usize,
    /// Accept-queue bound per replica ([`asched_serve::AdmissionPolicy`]).
    pub queue: usize,
    /// Server default deadline ([`asched_serve::DeadlinePolicy`]).
    pub deadline_ms: u64,
    /// Deadline→step-budget conversion rate.
    pub steps_per_ms: u64,
    /// Per-worker schedule-cache capacity; 0 disables the cache model.
    pub cache: usize,
    /// Whether workers of a replica pool their cache capacity.
    pub cache_scope: CacheScope,
    /// Distinct request fingerprints (uniform popularity).
    pub distinct: u64,
    /// Client retry budget after a shed.
    pub retries: u32,
    /// Probability a request doubles in size, applied repeatedly
    /// (geometric size classes); 0 = all requests identical.
    pub tail: f64,
    /// Maximum number of size doublings.
    pub tail_max: u32,
    /// Steps needed by a size-class-0 request; compared against the
    /// deadline-derived step budget to decide degradation.
    pub base_steps: u64,
    /// RNG seed for the entire run.
    pub seed: u64,
}

impl Scenario {
    fn with_traffic(kind: &str, traffic: Traffic) -> Self {
        Scenario {
            name: kind.to_string(),
            traffic,
            requests: 100_000,
            replicas: 4,
            workers: 2,
            queue: 64,
            deadline_ms: 2_000,
            steps_per_ms: 100,
            cache: 128,
            cache_scope: CacheScope::default(),
            distinct: 256,
            retries: 3,
            tail: 0.0,
            tail_max: 6,
            base_steps: 64,
            seed: 42,
        }
    }

    /// Parse a scenario line. Errors name the offending token.
    pub fn parse(line: &str) -> Result<Scenario, String> {
        let mut tokens = line.split_whitespace();
        let kind = tokens.next().ok_or("empty scenario line")?;
        // Traffic-shape knobs, folded into the Traffic value at the end.
        let (mut rate, mut hi, mut lo) = (500.0f64, 1_500.0f64, 100.0f64);
        let (mut period_s, mut duty, mut amp) = (10.0f64, 0.3f64, 0.8f64);
        if !matches!(kind, "poisson" | "onoff" | "diurnal") {
            return Err(format!(
                "unknown traffic kind {kind:?} (poisson, onoff, diurnal)"
            ));
        }
        let mut sc = Scenario::with_traffic(kind, Traffic::Poisson { rate });
        for tok in tokens {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
            let f = || -> Result<f64, String> { val.parse().map_err(|e| format!("{key}: {e}")) };
            let u = || -> Result<u64, String> { val.parse().map_err(|e| format!("{key}: {e}")) };
            match key {
                "name" => sc.name = val.to_string(),
                "rate" => rate = f()?,
                "hi" => hi = f()?,
                "lo" => lo = f()?,
                "period_s" => period_s = f()?,
                "duty" => duty = f()?,
                "amp" => amp = f()?,
                "reqs" => sc.requests = u()?,
                "replicas" => sc.replicas = u()? as usize,
                "workers" => sc.workers = u()? as usize,
                "queue" => sc.queue = u()? as usize,
                "deadline_ms" => sc.deadline_ms = u()?,
                "steps_per_ms" => sc.steps_per_ms = u()?,
                "cache" => sc.cache = u()? as usize,
                "cache_scope" => {
                    sc.cache_scope = match val {
                        "worker" => CacheScope::Worker,
                        "replica" => CacheScope::Replica,
                        other => {
                            return Err(format!(
                                "cache_scope must be worker or replica, got {other:?}"
                            ))
                        }
                    }
                }
                "distinct" => sc.distinct = u()?,
                "retries" => sc.retries = u()? as u32,
                "tail" => sc.tail = f()?,
                "tail_max" => sc.tail_max = u()? as u32,
                "base_steps" => sc.base_steps = u()?,
                "seed" => sc.seed = u()?,
                other => return Err(format!("unknown scenario key {other:?}")),
            }
        }
        sc.traffic = match kind {
            "poisson" => Traffic::Poisson { rate },
            "onoff" => Traffic::OnOff {
                rate_hi: hi,
                rate_lo: lo,
                period_secs: period_s,
                duty,
            },
            "diurnal" => Traffic::Diurnal {
                rate,
                amplitude: amp,
                period_secs: period_s,
            },
            _ => unreachable!(),
        };
        sc.validate()?;
        Ok(sc)
    }

    fn validate(&self) -> Result<(), String> {
        let bad = |msg: &str| Err(msg.to_string());
        match self.traffic {
            Traffic::Poisson { rate } if rate <= 0.0 => return bad("rate must be > 0"),
            Traffic::OnOff {
                rate_hi,
                rate_lo,
                period_secs,
                duty,
            } => {
                if rate_hi <= 0.0 || rate_lo < 0.0 {
                    return bad("onoff needs hi > 0 and lo >= 0");
                }
                if period_secs <= 0.0 {
                    return bad("period_s must be > 0");
                }
                if !(0.0 < duty && duty <= 1.0) {
                    return bad("duty must be in (0, 1]");
                }
            }
            Traffic::Diurnal {
                rate,
                amplitude,
                period_secs,
            } => {
                if rate <= 0.0 {
                    return bad("rate must be > 0");
                }
                if !(0.0..1.0).contains(&amplitude) {
                    return bad("amp must be in [0, 1)");
                }
                if period_secs <= 0.0 {
                    return bad("period_s must be > 0");
                }
            }
            _ => {}
        }
        if self.replicas == 0 || self.workers == 0 {
            return bad("replicas and workers must be >= 1");
        }
        if !(0.0..1.0).contains(&self.tail) {
            return bad("tail must be in [0, 1)");
        }
        if self.base_steps == 0 {
            return bad("base_steps must be >= 1");
        }
        if self.name.is_empty() || self.name.contains(char::is_whitespace) {
            return bad("name must be non-empty without whitespace");
        }
        Ok(())
    }

    /// Canonical normalized form: every knob explicit, fixed order.
    /// `Scenario::parse(sc.line()) == sc` for any valid scenario.
    pub fn line(&self) -> String {
        let shape = match self.traffic {
            Traffic::Poisson { rate } => format!("poisson rate={rate}"),
            Traffic::OnOff {
                rate_hi,
                rate_lo,
                period_secs,
                duty,
            } => format!("onoff hi={rate_hi} lo={rate_lo} period_s={period_secs} duty={duty}"),
            Traffic::Diurnal {
                rate,
                amplitude,
                period_secs,
            } => format!("diurnal rate={rate} amp={amplitude} period_s={period_secs}"),
        };
        format!(
            "{shape} name={} reqs={} replicas={} workers={} queue={} deadline_ms={} \
             steps_per_ms={} cache={} cache_scope={} distinct={} retries={} tail={} \
             tail_max={} base_steps={} seed={}",
            self.name,
            self.requests,
            self.replicas,
            self.workers,
            self.queue,
            self.deadline_ms,
            self.steps_per_ms,
            self.cache,
            self.cache_scope.token(),
            self.distinct,
            self.retries,
            self.tail,
            self.tail_max,
            self.base_steps,
            self.seed,
        )
    }
}

/// The default sweep: one scenario per regime the serving tier must
/// handle — steady underload, hard overload, bursts, a diurnal swing,
/// deadline pressure, and a cache-hostile population. These are the
/// rows of `BENCH_fleet.json`.
pub fn default_sweep() -> Vec<&'static str> {
    vec![
        "poisson name=baseline rate=600 reqs=200000 replicas=4 workers=2 queue=64",
        "poisson name=overload rate=4000 reqs=200000 replicas=2 workers=2 queue=16 retries=2",
        "onoff name=bursty hi=2500 lo=100 period_s=4 duty=0.3 reqs=200000 replicas=3 workers=2 queue=32",
        "diurnal name=diurnal rate=700 amp=0.8 period_s=30 reqs=200000 replicas=3 workers=2",
        "poisson name=tight_deadline rate=500 reqs=100000 replicas=2 workers=2 deadline_ms=5 steps_per_ms=10",
        "poisson name=cold_cache rate=500 reqs=100000 replicas=2 workers=2 distinct=100000 cache=64",
        "poisson name=shared_cache rate=600 reqs=200000 replicas=4 workers=2 queue=64 cache_scope=replica",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_line() {
        for line in default_sweep() {
            let sc = Scenario::parse(line).expect(line);
            let again = Scenario::parse(&sc.line()).expect("normalized form parses");
            assert_eq!(sc, again, "{line}");
        }
    }

    #[test]
    fn defaults_fill_in() {
        let sc = Scenario::parse("poisson").unwrap();
        assert_eq!(sc.name, "poisson");
        assert_eq!(sc.requests, 100_000);
        assert_eq!(sc.replicas, 4);
        assert_eq!(sc.traffic, Traffic::Poisson { rate: 500.0 });
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Scenario::parse("").is_err());
        assert!(Scenario::parse("waves rate=3").is_err());
        assert!(Scenario::parse("poisson rate").is_err());
        assert!(Scenario::parse("poisson bogus=1").is_err());
        assert!(Scenario::parse("poisson rate=0").is_err());
        assert!(Scenario::parse("poisson replicas=0").is_err());
        assert!(Scenario::parse("onoff duty=1.5").is_err());
        assert!(Scenario::parse("diurnal amp=1.0").is_err());
        assert!(Scenario::parse("poisson tail=1.0").is_err());
        assert!(Scenario::parse("poisson cache_scope=global").is_err());
    }

    #[test]
    fn cache_scope_parses_and_round_trips() {
        let sc = Scenario::parse("poisson cache_scope=replica").unwrap();
        assert_eq!(sc.cache_scope, CacheScope::Replica);
        assert!(sc.line().contains("cache_scope=replica"));
        assert_eq!(
            Scenario::parse("poisson").unwrap().cache_scope,
            CacheScope::Worker
        );
    }
}
