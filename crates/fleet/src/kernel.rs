//! The discrete-event simulation kernel: a virtual clock and an event
//! queue with deterministic ordering.
//!
//! The whole crate rests on two properties of this module:
//!
//! - **the clock never goes backwards** — [`EventQueue::pop`] refuses
//!   (panics in debug, the invariant is enforced by `push`) to deliver
//!   an event earlier than the last one delivered;
//! - **ties break identically on every run** — events scheduled for
//!   the same virtual nanosecond are delivered in the order they were
//!   *scheduled*, via a monotone sequence number carried next to the
//!   timestamp. A plain `BinaryHeap<(time, payload)>` would fall back
//!   to comparing payloads (or be nondeterministic with equal keys);
//!   the `(time, seq)` key makes the pop order a pure function of the
//!   push history.
//!
//! Virtual time is `u64` nanoseconds. At nanosecond resolution that is
//! ~584 simulated years — far beyond any scenario — and integer time
//! keeps every comparison exact, which floating-point timestamps would
//! not.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds since simulation start.
pub type SimNanos = u64;

/// One virtual second, in [`SimNanos`].
pub const SECOND: SimNanos = 1_000_000_000;

/// Convert a non-negative duration in seconds to [`SimNanos`],
/// saturating (negative and non-finite inputs clamp to zero).
pub fn nanos_from_secs(secs: f64) -> SimNanos {
    if secs.is_nan() || secs <= 0.0 {
        return 0;
    }
    let n = secs * SECOND as f64;
    if n >= u64::MAX as f64 {
        u64::MAX
    } else {
        n as u64
    }
}

struct Entry<E> {
    at: SimNanos,
    seq: u64,
    event: E,
}

// Ordering looks only at (at, seq): the payload never influences heap
// order, so `E` needs no Ord bound and ties are schedule-order stable.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A future-event list delivering events in `(time, insertion)` order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: SimNanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at virtual time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// The virtual time of the most recently popped event (zero before
    /// the first pop).
    pub fn now(&self) -> SimNanos {
        self.now
    }

    /// Schedule `event` at absolute virtual time `at`. Scheduling into
    /// the past is clamped to `now` — the event fires immediately after
    /// the current one, preserving clock monotonicity.
    pub fn push(&mut self, at: SimNanos, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Deliver the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimNanos, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "virtual clock went backwards");
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn clock_is_monotone_even_for_past_pushes() {
        let mut q = EventQueue::new();
        q.push(100, "late");
        assert_eq!(q.pop(), Some((100, "late")));
        // Scheduling "in the past" clamps to now.
        q.push(50, "past");
        assert_eq!(q.pop(), Some((100, "past")));
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn nanos_from_secs_clamps() {
        assert_eq!(nanos_from_secs(1.0), SECOND);
        assert_eq!(nanos_from_secs(0.0), 0);
        assert_eq!(nanos_from_secs(-3.0), 0);
        assert_eq!(nanos_from_secs(f64::NAN), 0);
        assert_eq!(nanos_from_secs(f64::INFINITY), u64::MAX);
        assert_eq!(nanos_from_secs(1e-9), 1);
    }
}
