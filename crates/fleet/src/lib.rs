//! # asched-fleet — deterministic discrete-event simulation of the
//! serving tier
//!
//! `crates/serve` answers "does one replica behave correctly under
//! load?" This crate answers the questions that need a *fleet* and
//! millions of requests — how many replicas for a target p99, what a
//! diurnal swing does to shed rate, how the schedule cache's hit rate
//! moves goodput — in seconds of wall clock, by simulating virtual
//! time instead of burning real time.
//!
//! Three design commitments:
//!
//! - **Real policies, simulated clocks.** Admission, Retry-After, and
//!   deadline→step-budget decisions are *the server's own code*
//!   ([`asched_serve::AdmissionPolicy`], [`asched_serve::DeadlinePolicy`]),
//!   called with simulated inputs. The simulator cannot drift from the
//!   server on a policy question, because there is nothing to drift.
//! - **Calibrated service times.** Workers don't fake cost models;
//!   they sample from the `asched-service-model-v1` histograms that
//!   `asched-trace --calibrate` measured on a real traced run
//!   ([`ServiceSampler`]), split by schedule-cache hit/miss — the two
//!   service regimes that dominate the real tier's latency.
//! - **Byte-identical reproducibility.** One seeded [`rand`] shim RNG,
//!   integer virtual time, stable event tie-breaking
//!   ([`kernel::EventQueue`]), and software math (no libm) everywhere a
//!   float feeds a decision ([`asched_serve::portable_ln`],
//!   [`fmath::portable_sin`]): the same scenario line produces the
//!   same report bytes on every platform, every run. CI enforces this
//!   with `cmp`.
//!
//! The `asched-fleet` binary exposes `run` (one scenario →
//! [`FleetReport`]), `capacity` (binary search for the minimal replica
//! count meeting an SLO), and `sweep` (the scenario battery behind
//! `BENCH_fleet.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod cluster;
pub mod fmath;
pub mod kernel;
pub mod report;
pub mod scenario;
pub mod service;
pub mod traffic;

pub use capacity::{required_replicas, CapacityAnswer, CapacityTarget};
pub use cluster::simulate;
pub use fmath::portable_sin;
pub use kernel::{nanos_from_secs, EventQueue, SimNanos, SECOND};
pub use report::{markdown_header, FleetReport};
pub use scenario::{default_sweep, CacheScope, Scenario};
pub use service::{BucketSampler, ServiceSampler, DEFAULT_OVERHEAD_US};
pub use traffic::Traffic;
