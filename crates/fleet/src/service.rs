//! Service-time sampling: how long a simulated worker holds a request.
//!
//! The simulator does not re-run the scheduling engine; it *samples*
//! service times from the calibrated `asched-service-model-v1`
//! histograms that `asched-trace --calibrate` produced from a real
//! traced run. Two regimes matter — a request whose schedule is
//! resident in the worker's schedule cache (`task_hit_us`) versus one
//! that must be scheduled from scratch (`task_miss_us`) — because the
//! cache model in [`crate::cluster`] decides per request which regime
//! it lands in, and the hit/miss cost gap is the whole reason the
//! cache exists.
//!
//! Sampling from a [`ModelHistogram`] is two uniform draws: pick a
//! bucket with probability proportional to its count, then pick a
//! value uniformly inside the bucket's power-of-two bounds, clamped to
//! the observed `[min, max]`. That reproduces the recorded
//! distribution up to bucketing error — the same error the histogram
//! itself already accepted at record time.

use asched_trace::{ModelHistogram, ServiceModel};
use rand::rngs::StdRng;
use rand::Rng;

/// Fixed per-request overhead (connection handling, parse, serialize)
/// in microseconds, used when a model does not let us derive one.
pub const DEFAULT_OVERHEAD_US: u64 = 25;

/// A weighted-bucket sampler over one recorded distribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketSampler {
    buckets: Vec<(u64, u64, u64)>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl BucketSampler {
    /// A degenerate sampler that always returns `v`.
    pub fn constant(v: u64) -> Self {
        BucketSampler {
            buckets: vec![(v, v, 1)],
            total: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    /// Build from a parsed model histogram; `None` when it is empty.
    pub fn from_model(m: &ModelHistogram) -> Option<Self> {
        if m.is_empty() {
            return None;
        }
        Some(BucketSampler {
            buckets: m.buckets.clone(),
            total: m.count,
            sum: m.sum,
            min: m.min.unwrap_or(0),
            max: m.max.unwrap_or(u64::MAX),
        })
    }

    /// Build from raw sample values (used by the synthetic default
    /// model) by bucketing them exactly like [`asched_obs::Histogram`].
    pub fn from_values(vals: &[u64]) -> Self {
        let mut h = asched_obs::Histogram::new();
        for &v in vals {
            h.record(v);
        }
        BucketSampler::from_model(&ModelHistogram::from_histogram(&h))
            .expect("from_values needs at least one sample")
    }

    /// Mean of the recorded samples (exact: kept from the model's sum).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.total.max(1) as f64
    }

    /// Draw one value from the distribution.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let mut r = rng.gen_range(0..self.total);
        for &(lo, hi, n) in &self.buckets {
            if r < n {
                let v = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
                return v.clamp(self.min, self.max);
            }
            r -= n;
        }
        self.max
    }
}

/// The distributions a simulated request is priced from.
///
/// Overhead is a *sum* of samplers (typically the traced `read` and
/// `write` spans) plus a constant residual, not a single constant: the
/// socket-facing spans are heavy-tailed on a real host, and collapsing
/// them to their mean flattens the simulated latency distribution well
/// below the measured one.
#[derive(Clone, Debug)]
pub struct ServiceSampler {
    hit: BucketSampler,
    miss: BucketSampler,
    overhead_parts: Vec<BucketSampler>,
    overhead_residual_us: u64,
}

impl ServiceSampler {
    /// A built-in synthetic model for runs without a calibration file:
    /// cache hits around 60–180 µs, misses around 1–6 ms, constant
    /// overhead. Entirely deterministic (no RNG in construction); the
    /// ~16× hit/miss gap is in the ballpark of the measured engine
    /// cache speedup and gives scenarios a load axis worth exploring.
    pub fn synthetic_default() -> Self {
        let hits: Vec<u64> = (0u64..64).map(|i| 60 + (i * 7) % 120).collect();
        let misses: Vec<u64> = (0u64..64).map(|i| 1_000 + (i * 211) % 5_000).collect();
        ServiceSampler {
            hit: BucketSampler::from_values(&hits),
            miss: BucketSampler::from_values(&misses),
            overhead_parts: Vec::new(),
            overhead_residual_us: DEFAULT_OVERHEAD_US,
        }
    }

    /// Build from a calibrated [`ServiceModel`].
    ///
    /// Regime sources, in preference order: `task_miss_us` for misses
    /// (falling back to the undifferentiated `task` span histogram,
    /// then `handle`); `task_hit_us` for hits (falling back to the
    /// miss distribution when the traced run never hit).
    ///
    /// Overhead — the per-request worker time spent *outside* the
    /// scheduling task — is rebuilt from the traced `read` and `write`
    /// span histograms (sampled independently, preserving their tails)
    /// plus a constant residual that makes the overhead *mean* equal
    /// `mean(request) - mean(queue) - mean(task)`. The queue span must
    /// be excluded: the simulator models queue wait itself, so leaving
    /// the traced run's wait inside the overhead would double-count it
    /// at exactly the loads where it matters. Falls back to
    /// [`DEFAULT_OVERHEAD_US`] when the model lacks the spans.
    pub fn from_model(m: &ServiceModel) -> Result<Self, String> {
        let miss = BucketSampler::from_model(&m.task_miss_us)
            .or_else(|| m.span_us.get("task").and_then(BucketSampler::from_model))
            .or_else(|| m.span_us.get("handle").and_then(BucketSampler::from_model))
            .ok_or("service model has no task_miss_us, task, or handle histogram")?;
        let hit = BucketSampler::from_model(&m.task_hit_us).unwrap_or_else(|| miss.clone());
        let (overhead_parts, overhead_residual_us) =
            match (m.span_us.get("request"), m.span_us.get("task")) {
                (Some(req), Some(task)) if !req.is_empty() && !task.is_empty() => {
                    let queued = m.span_us.get("queue").and_then(|q| q.mean()).unwrap_or(0.0);
                    let total =
                        (req.mean().unwrap_or(0.0) - queued - task.mean().unwrap_or(0.0)).max(1.0);
                    let parts: Vec<BucketSampler> = ["read", "write"]
                        .iter()
                        .filter_map(|name| m.span_us.get(*name))
                        .filter_map(BucketSampler::from_model)
                        .collect();
                    let parts_mean: f64 = parts.iter().map(BucketSampler::mean).sum();
                    // Residual absorbs parse/serialize time the spans
                    // don't cover; clamp at zero if read+write already
                    // exceed the derived total (possible under heavy
                    // measurement noise).
                    let residual = (total - parts_mean).max(0.0) as u64;
                    (parts, residual)
                }
                _ => (Vec::new(), DEFAULT_OVERHEAD_US),
            };
        Ok(ServiceSampler {
            hit,
            miss,
            overhead_parts,
            overhead_residual_us,
        })
    }

    /// Sample the scheduling cost of one task, in µs, for the given
    /// cache regime.
    pub fn sample_task_us(&self, rng: &mut StdRng, hit: bool) -> u64 {
        if hit {
            self.hit.sample(rng)
        } else {
            self.miss.sample(rng)
        }
    }

    /// Sample the per-request overhead, in µs: one draw from each
    /// traced overhead span, plus the constant residual.
    pub fn sample_overhead_us(&self, rng: &mut StdRng) -> u64 {
        let mut total = self.overhead_residual_us;
        for p in &self.overhead_parts {
            total = total.saturating_add(p.sample(rng));
        }
        total
    }

    /// Mean task cost, in µs, per regime (for capacity estimates and
    /// tests).
    pub fn mean_task_us(&self, hit: bool) -> f64 {
        if hit {
            self.hit.mean()
        } else {
            self.miss.mean()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_inside_observed_range() {
        let s = BucketSampler::from_values(&[3, 5, 9, 200, 999]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = s.sample(&mut rng);
            assert!((3..=999).contains(&v), "{v}");
        }
    }

    #[test]
    fn constant_sampler_is_constant() {
        let s = BucketSampler::constant(42);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 42);
        }
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn synthetic_default_separates_regimes() {
        let s = ServiceSampler::synthetic_default();
        // Misses must be meaningfully dearer than hits — the scenario
        // load math in scenario.rs assumes roughly this gap.
        assert!(s.mean_task_us(false) > 5.0 * s.mean_task_us(true));
        let mut rng = StdRng::seed_from_u64(3);
        let h = s.sample_task_us(&mut rng, true);
        let m = s.sample_task_us(&mut rng, false);
        assert!((60..=180).contains(&h), "{h}");
        assert!((1_000..=6_000).contains(&m), "{m}");
        assert_eq!(s.sample_overhead_us(&mut rng), DEFAULT_OVERHEAD_US);
    }

    #[test]
    fn model_fallback_chain() {
        // An empty model errors; a model with only a task span serves
        // both regimes from it.
        let empty = ServiceModel::default();
        assert!(ServiceSampler::from_model(&empty).is_err());

        let mut h = asched_obs::Histogram::new();
        h.record(500);
        let mut m = ServiceModel::default();
        m.span_us
            .insert("task".to_string(), ModelHistogram::from_histogram(&h));
        let s = ServiceSampler::from_model(&m).expect("task span suffices");
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample_task_us(&mut rng, true), 500);
        assert_eq!(s.sample_task_us(&mut rng, false), 500);
        assert_eq!(s.sample_overhead_us(&mut rng), DEFAULT_OVERHEAD_US);
    }
}
