//! The crate's headline promise: a scenario is a pure function of its
//! line. Same line (same seed) ⇒ byte-identical report; different seed
//! ⇒ a genuinely different run.

use asched_fleet::{required_replicas, simulate, CapacityTarget, Scenario, ServiceSampler};

fn render(line: &str) -> String {
    let sc = Scenario::parse(line).expect(line);
    simulate(&sc, &ServiceSampler::synthetic_default()).render()
}

#[test]
fn same_seed_is_byte_identical_across_every_traffic_shape() {
    for line in [
        "poisson rate=900 reqs=20000 replicas=2 workers=2 queue=16 retries=2 tail=0.2",
        "onoff hi=2000 lo=50 period_s=3 duty=0.25 reqs=20000 replicas=2 workers=2 queue=8",
        "diurnal rate=800 amp=0.7 period_s=20 reqs=20000 replicas=2 workers=2",
    ] {
        assert_eq!(render(line), render(line), "{line}");
    }
}

#[test]
fn seed_changes_the_run() {
    let a = render("poisson rate=900 reqs=20000 replicas=2 workers=2 queue=16 seed=1");
    let b = render("poisson rate=900 reqs=20000 replicas=2 workers=2 queue=16 seed=2");
    assert_ne!(a, b);
}

#[test]
fn sweep_metrics_are_deterministic() {
    let collect = || -> Vec<(String, f64)> {
        let mut rows = Vec::new();
        for line in asched_fleet::default_sweep() {
            let mut sc = Scenario::parse(line).unwrap();
            sc.requests = 10_000;
            let r = simulate(&sc, &ServiceSampler::synthetic_default());
            rows.extend(r.metrics(&format!("fleet.{}", sc.name)));
        }
        rows
    };
    let a = collect();
    let b = collect();
    assert_eq!(a.len(), b.len());
    for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(va.to_bits(), vb.to_bits(), "{ka}: {va} vs {vb}");
    }
}

#[test]
fn capacity_answers_are_deterministic() {
    let base = Scenario::parse("poisson reqs=3000 workers=2 cache=0 retries=0").unwrap();
    let target = CapacityTarget {
        rps: 1_000.0,
        p99_ms: 50,
        max_shed_rate: 0.01,
        max_replicas: 64,
    };
    let sampler = ServiceSampler::synthetic_default();
    let a = required_replicas(&base, &target, &sampler);
    let b = required_replicas(&base, &target, &sampler);
    assert_eq!(a.replicas, b.replicas);
    assert_eq!(a.feasible, b.feasible);
    assert_eq!(a.probes, b.probes);
    assert_eq!(a.report.render(), b.report.render());
}

#[test]
fn large_run_stays_fast_and_reproducible() {
    // A scale sanity check well under CI's 1M-request smoke: 100k
    // requests must simulate in well under a second of wall clock and
    // reproduce exactly. (The full 1M × 2 + cmp runs in CI.)
    let line = "poisson rate=2000 reqs=100000 replicas=4 workers=2 queue=32 retries=2";
    let started = std::time::Instant::now();
    let a = render(line);
    let wall = started.elapsed();
    assert_eq!(a, render(line));
    assert!(
        wall.as_secs_f64() < 10.0,
        "100k-request sim took {wall:?} — 1M would bust the 30s budget"
    );
}
