//! The parsed form of `asched-service-model-v1` — the service-time
//! calibration file `asched-trace --calibrate` writes.
//!
//! Until this module existed the model was write-only: the emitter
//! ([`crate::analyze::calibrate_json`]) serialized histograms and
//! nothing in the workspace could read them back. [`ServiceModel`]
//! closes the loop. The contract is a *byte-exact* round trip:
//! `ServiceModel::parse(text).to_json() == text` for any document the
//! emitter produces, proven by a test — so the fleet simulator, the
//! only downstream consumer, can never see different numbers than the
//! calibration run recorded.
//!
//! [`ModelHistogram`] mirrors [`asched_obs::Histogram`]'s JSON shape
//! (`count`/`sum`/`min`/`max` plus non-empty power-of-two buckets) but
//! keeps the buckets as plain data, which is what a sampler needs:
//! pick a bucket by weight, pick a value inside its bounds.

use std::collections::BTreeMap;

use asched_obs::json::JsonObject;
use asched_obs::Histogram;

use crate::json::{parse, Json};

/// One histogram from a service-model document.
///
/// Buckets use the exact boundaries of [`asched_obs::Histogram`]:
/// `[0,0]`, then `[2^(i-1), 2^i - 1]`. Only non-empty buckets are
/// stored, in ascending order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelHistogram {
    /// Total samples.
    pub count: u64,
    /// Sum of samples (saturating at record time).
    pub sum: u64,
    /// Smallest sample, `None` when empty.
    pub min: Option<u64>,
    /// Largest sample, `None` when empty.
    pub max: Option<u64>,
    /// Non-empty buckets as `(lo, hi, n)` with inclusive bounds.
    pub buckets: Vec<(u64, u64, u64)>,
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    match v.get(key).and_then(Json::as_f64) {
        Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
        Some(n) => Err(format!("{key} must be a non-negative integer, got {n}")),
        None => Err(format!("missing numeric field {key:?}")),
    }
}

fn opt_u64_field(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(_) => u64_field(v, key).map(Some),
    }
}

impl ModelHistogram {
    /// Snapshot a live [`Histogram`] into plain data.
    pub fn from_histogram(h: &Histogram) -> Self {
        ModelHistogram {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h.nonzero_buckets().collect(),
        }
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Parse one histogram object; bucket `hi` bounds are *recomputed*
    /// from `lo` (they are redundant in the schema) so values that
    /// exceed `f64`'s integer precision cannot corrupt a round trip.
    fn from_json(v: &Json) -> Result<Self, String> {
        let count = u64_field(v, "count")?;
        let sum = u64_field(v, "sum")?;
        let min = opt_u64_field(v, "min")?;
        let max = opt_u64_field(v, "max")?;
        let raw = match v.get("buckets") {
            Some(Json::Arr(items)) => items,
            _ => return Err("missing buckets array".into()),
        };
        let mut buckets = Vec::with_capacity(raw.len());
        let mut total = 0u64;
        for b in raw {
            let lo = u64_field(b, "lo")?;
            let n = u64_field(b, "n")?;
            if n == 0 {
                return Err(format!("empty bucket at lo={lo} should not be emitted"));
            }
            let hi = if lo == 0 {
                0
            } else if !lo.is_power_of_two() {
                return Err(format!("bucket lo={lo} is not a power of two"));
            } else {
                lo + (lo - 1)
            };
            if let Some(&(prev_lo, _, _)) = buckets.last() {
                if lo <= prev_lo {
                    return Err(format!("buckets out of order at lo={lo}"));
                }
            }
            buckets.push((lo, hi, n));
            total = total.saturating_add(n);
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, count says {count}"));
        }
        if (count == 0) != (min.is_none() && max.is_none()) {
            return Err("min/max presence disagrees with count".into());
        }
        Ok(ModelHistogram {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }

    /// Serialize; byte-identical to [`Histogram::to_json`] for the
    /// histogram this was parsed from or snapshotted off.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("count", self.count).u64("sum", self.sum);
        o.opt_u64("min", self.min).opt_u64("max", self.max);
        let mut buckets = String::from("[");
        for (i, (lo, hi, n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let mut b = JsonObject::new();
            b.u64("lo", *lo).u64("hi", *hi).u64("n", *n);
            buckets.push_str(&b.finish());
        }
        buckets.push(']');
        o.raw("buckets", &buckets);
        o.finish()
    }
}

/// A parsed `asched-service-model-v1` document.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceModel {
    /// Total spans in the calibration trace.
    pub spans_total: u64,
    /// `request` root spans in the calibration trace.
    pub requests: u64,
    /// Per-span-name duration histograms, microseconds.
    pub span_us: BTreeMap<String, ModelHistogram>,
    /// Per-pass duration histograms, microseconds.
    pub pass_us: BTreeMap<String, ModelHistogram>,
    /// `task` spans whose schedule-cache query hit, microseconds.
    pub task_hit_us: ModelHistogram,
    /// `task` spans whose schedule-cache query missed, microseconds.
    pub task_miss_us: ModelHistogram,
}

fn hist_map(v: &Json, key: &str) -> Result<BTreeMap<String, ModelHistogram>, String> {
    let obj = match v.get(key) {
        Some(Json::Obj(m)) => m,
        _ => return Err(format!("missing object field {key:?}")),
    };
    let mut out = BTreeMap::new();
    for (name, h) in obj {
        let h = ModelHistogram::from_json(h).map_err(|e| format!("{key}.{name}: {e}"))?;
        out.insert(name.clone(), h);
    }
    Ok(out)
}

impl ServiceModel {
    /// Parse a model document, validating the schema tag and the
    /// internal consistency of every histogram.
    pub fn parse(text: &str) -> Result<ServiceModel, String> {
        let v = parse(text.trim_end())?;
        match v.get("schema").and_then(Json::as_str) {
            Some("asched-service-model-v1") => {}
            Some(other) => return Err(format!("unsupported schema {other:?}")),
            None => return Err("missing schema tag".into()),
        }
        match v.get("unit").and_then(Json::as_str) {
            Some("us") => {}
            other => return Err(format!("unsupported unit {other:?} (expected \"us\")")),
        }
        Ok(ServiceModel {
            spans_total: u64_field(&v, "spans_total")?,
            requests: u64_field(&v, "requests")?,
            span_us: hist_map(&v, "span_us")?,
            pass_us: hist_map(&v, "pass_us")?,
            task_hit_us: v
                .get("task_hit_us")
                .map(ModelHistogram::from_json)
                .transpose()
                .map_err(|e| format!("task_hit_us: {e}"))?
                .unwrap_or_default(),
            task_miss_us: v
                .get("task_miss_us")
                .map(ModelHistogram::from_json)
                .transpose()
                .map_err(|e| format!("task_miss_us: {e}"))?
                .unwrap_or_default(),
        })
    }

    /// Re-emit the document; byte-identical to what
    /// [`crate::analyze::calibrate_json`] wrote (modulo the trailing
    /// newline the CLI adds to the file).
    pub fn to_json(&self) -> String {
        let render = |hists: &BTreeMap<String, ModelHistogram>| {
            let mut obj = JsonObject::new();
            for (name, h) in hists {
                obj.raw(name, &h.to_json());
            }
            obj.finish()
        };
        let mut o = JsonObject::new();
        o.str("schema", "asched-service-model-v1")
            .str("unit", "us")
            .u64("spans_total", self.spans_total)
            .u64("requests", self.requests);
        o.raw("span_us", &render(&self.span_us));
        o.raw("pass_us", &render(&self.pass_us));
        o.raw("task_hit_us", &self.task_hit_us.to_json());
        o.raw("task_miss_us", &self.task_miss_us.to_json());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::calibrate_json;
    use crate::model::Trace;

    fn sample_trace() -> Trace {
        Trace::parse(
            r#"{"ev":"span_start","span":1,"parent":null,"name":"request"}
{"ev":"span_start","span":2,"parent":1,"name":"handle"}
{"ev":"span_start","span":3,"parent":2,"name":"task"}
{"ev":"cache_query","key":1,"hit":false,"span":3}
{"ev":"pass_end","pass":"rank","nanos":3000,"span":3}
{"ev":"span_end","span":3,"nanos":6000}
{"ev":"span_start","span":4,"parent":2,"name":"task"}
{"ev":"cache_query","key":1,"hit":true,"span":4}
{"ev":"span_end","span":4,"nanos":1500}
{"ev":"span_end","span":2,"nanos":9000}
{"ev":"req_done","status":200,"nanos":12000,"span":1}
{"ev":"span_end","span":1,"nanos":12000}
"#,
        )
    }

    #[test]
    fn round_trips_the_emitters_output_byte_for_byte() {
        let doc = calibrate_json(&sample_trace());
        let model = ServiceModel::parse(&doc).expect("parses");
        assert_eq!(model.to_json(), doc);
        // And the parse is stable: parse(emit(parse(x))) == parse(x).
        assert_eq!(ServiceModel::parse(&model.to_json()).unwrap(), model);
    }

    #[test]
    fn splits_task_spans_by_cache_outcome() {
        let doc = calibrate_json(&sample_trace());
        let model = ServiceModel::parse(&doc).unwrap();
        // 6000ns miss → 6us; 1500ns hit → 1us.
        assert_eq!(model.task_miss_us.count, 1);
        assert_eq!(model.task_miss_us.min, Some(6));
        assert_eq!(model.task_hit_us.count, 1);
        assert_eq!(model.task_hit_us.min, Some(1));
        assert_eq!(model.span_us["task"].count, 2);
        assert_eq!(model.requests, 1);
        assert_eq!(model.pass_us["rank"].count, 1);
    }

    #[test]
    fn histogram_snapshot_matches_live_to_json() {
        let mut h = Histogram::new();
        for v in [0, 1, 3, 9, 9, 1024, u64::MAX] {
            h.record(v);
        }
        let m = ModelHistogram::from_histogram(&h);
        assert_eq!(m.to_json(), h.to_json());
        assert_eq!(m.count, 7);
        // The top bucket survives the lo→hi recomputation.
        assert_eq!(m.buckets.last().unwrap().1, u64::MAX);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(ServiceModel::parse("{}").is_err());
        assert!(ServiceModel::parse(r#"{"schema":"asched-service-model-v2"}"#).is_err());
        let bad_count = r#"{"schema":"asched-service-model-v1","unit":"us","spans_total":1,"requests":0,"span_us":{"x":{"count":2,"sum":1,"min":1,"max":1,"buckets":[{"lo":1,"hi":1,"n":1}]}},"pass_us":{}}"#;
        let err = ServiceModel::parse(bad_count).unwrap_err();
        assert!(err.contains("count"), "{err}");
        let bad_lo = r#"{"schema":"asched-service-model-v1","unit":"us","spans_total":1,"requests":0,"span_us":{"x":{"count":1,"sum":3,"min":3,"max":3,"buckets":[{"lo":3,"hi":3,"n":1}]}},"pass_us":{}}"#;
        assert!(ServiceModel::parse(bad_lo)
            .unwrap_err()
            .contains("power of two"));
    }

    #[test]
    fn tolerates_models_without_the_task_split() {
        // Documents written before the hit/miss split parse fine.
        let legacy = r#"{"schema":"asched-service-model-v1","unit":"us","spans_total":0,"requests":0,"span_us":{},"pass_us":{}}"#;
        let model = ServiceModel::parse(legacy).unwrap();
        assert!(model.task_hit_us.is_empty());
        assert!(model.task_miss_us.is_empty());
    }
}
