//! Span-tree reconstruction from a JSONL event trace.
//!
//! The obs layer emits a flat stream of events; `span_start` /
//! `span_end` lines plus the optional trailing `"span"` attribution on
//! ordinary events (see `docs/observability.md`) turn that stream into
//! a forest. [`Trace::parse`] rebuilds the forest: one [`Span`] per
//! `span_start`, children attached in start order, durations from
//! `span_end`, and attributed pass / cache / task / request events
//! folded onto the span they happened inside.
//!
//! Parsing is tolerant of unknown event tags (forward compatibility)
//! but strict about span structure: an end without a start, a duplicate
//! start, or a parent that never started is reported, not ignored —
//! the acceptance bar for the serving tier is *zero* orphan spans.

use std::collections::BTreeMap;

use asched_obs::schema::{parse_flat_object, SchemaError, Value};

/// One reconstructed span.
#[derive(Clone, Debug)]
pub struct Span {
    /// Span id (unique per trace).
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Span name (`request`, `queue`, `engine`, `task`, ...).
    pub name: String,
    /// Duration from `span_end`, `None` while unclosed.
    pub nanos: Option<u64>,
    /// Child span ids, in start order.
    pub children: Vec<u64>,
    /// Attributed `pass_end` events: `(pass, nanos)` in stream order.
    pub passes: Vec<(String, u64)>,
    /// Attributed cache queries that hit.
    pub cache_hits: u64,
    /// Attributed cache queries that missed.
    pub cache_misses: u64,
    /// Attributed hits served by warm-started (file-loaded) entries —
    /// a subset of `cache_hits`.
    pub cache_warm_hits: u64,
    /// Attributed cache evictions.
    pub cache_evictions: u64,
    /// Attributed `task_done` outcome, if any.
    pub outcome: Option<String>,
    /// Attributed `req_done` status, if any.
    pub status: Option<u64>,
}

/// A structural problem found while rebuilding the forest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Orphan {
    /// `span_start` whose parent id never started.
    UnknownParent {
        /// The child span.
        span: u64,
        /// The id it claims as parent.
        parent: u64,
    },
    /// `span_end` for an id that never started.
    EndWithoutStart(u64),
    /// Second `span_start` for an id already started.
    DuplicateStart(u64),
    /// Second `span_end` for an id already ended.
    DoubleEnd(u64),
    /// An attributed event naming a span that never started.
    UnknownAttribution {
        /// Event tag (`pass_end`, `cache_query`, ...).
        ev: String,
        /// The span id it names.
        span: u64,
    },
}

/// The reconstructed forest plus bookkeeping for `--check`.
#[derive(Debug, Default)]
pub struct Trace {
    /// All spans by id.
    pub spans: BTreeMap<u64, Span>,
    /// Root span ids (no parent), in start order.
    pub roots: Vec<u64>,
    /// Structural problems, in stream order.
    pub orphans: Vec<Orphan>,
    /// Spans that started but never ended.
    pub unclosed: Vec<u64>,
    /// Total lines read.
    pub lines: usize,
    /// Lines that were not parseable flat JSON objects (first offender
    /// kept for the error message).
    pub bad_lines: Vec<(usize, SchemaError)>,
    /// `req_done` events seen, as `(span-or-0, status, nanos)`.
    pub req_done: Vec<(u64, u64, u64)>,
}

fn num(map: &BTreeMap<String, Value>, key: &str) -> Option<u64> {
    match map.get(key) {
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn text<'m>(map: &'m BTreeMap<String, Value>, key: &str) -> Option<&'m str> {
    match map.get(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

impl Trace {
    /// Rebuild the span forest from JSONL `text`.
    pub fn parse(text: &str) -> Trace {
        let mut t = Trace::default();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            t.lines += 1;
            let map = match parse_flat_object(line) {
                Ok(m) => m,
                Err(e) => {
                    t.bad_lines.push((i + 1, e));
                    continue;
                }
            };
            let Some(ev) = text_owned(&map) else { continue };
            t.absorb(&ev, &map);
        }
        t.unclosed = t
            .spans
            .values()
            .filter(|s| s.nanos.is_none())
            .map(|s| s.id)
            .collect();
        t
    }

    fn absorb(&mut self, ev: &str, map: &BTreeMap<String, Value>) {
        match ev {
            "span_start" => {
                let (Some(id), Some(name)) = (num(map, "span"), text(map, "name")) else {
                    return;
                };
                let parent = num(map, "parent");
                if self.spans.contains_key(&id) {
                    self.orphans.push(Orphan::DuplicateStart(id));
                    return;
                }
                match parent {
                    None => self.roots.push(id),
                    Some(p) => match self.spans.get_mut(&p) {
                        Some(parent_span) => parent_span.children.push(id),
                        None => self.orphans.push(Orphan::UnknownParent {
                            span: id,
                            parent: p,
                        }),
                    },
                }
                self.spans.insert(
                    id,
                    Span {
                        id,
                        parent,
                        name: name.to_string(),
                        nanos: None,
                        children: Vec::new(),
                        passes: Vec::new(),
                        cache_hits: 0,
                        cache_misses: 0,
                        cache_warm_hits: 0,
                        cache_evictions: 0,
                        outcome: None,
                        status: None,
                    },
                );
            }
            "span_end" => {
                let (Some(id), Some(nanos)) = (num(map, "span"), num(map, "nanos")) else {
                    return;
                };
                match self.spans.get_mut(&id) {
                    None => self.orphans.push(Orphan::EndWithoutStart(id)),
                    Some(s) if s.nanos.is_some() => self.orphans.push(Orphan::DoubleEnd(id)),
                    Some(s) => s.nanos = Some(nanos),
                }
            }
            "req_done" => {
                let status = num(map, "status").unwrap_or(0);
                let nanos = num(map, "nanos").unwrap_or(0);
                let span = num(map, "span").unwrap_or(0);
                self.req_done.push((span, status, nanos));
                if span != 0 {
                    match self.spans.get_mut(&span) {
                        Some(s) => s.status = Some(status),
                        None => self.orphans.push(Orphan::UnknownAttribution {
                            ev: ev.to_string(),
                            span,
                        }),
                    }
                }
            }
            _ => {
                // Any other event may carry a span attribution.
                let Some(span) = num(map, "span") else { return };
                let Some(s) = self.spans.get_mut(&span) else {
                    self.orphans.push(Orphan::UnknownAttribution {
                        ev: ev.to_string(),
                        span,
                    });
                    return;
                };
                match ev {
                    "pass_end" => {
                        if let (Some(pass), Some(nanos)) = (text(map, "pass"), num(map, "nanos")) {
                            s.passes.push((pass.to_string(), nanos));
                        }
                    }
                    "cache_query" => match map.get("hit") {
                        Some(Value::Bool(true)) => {
                            s.cache_hits += 1;
                            // "warm" is emitted only when true.
                            if matches!(map.get("warm"), Some(Value::Bool(true))) {
                                s.cache_warm_hits += 1;
                            }
                        }
                        Some(Value::Bool(false)) => s.cache_misses += 1,
                        _ => {}
                    },
                    "cache_evict" => s.cache_evictions += 1,
                    "task_done" => {
                        if let Some(outcome) = text(map, "outcome") {
                            s.outcome = Some(outcome.to_string());
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Sum of the direct children's durations over the root's own, as a
    /// percentage; `None` when the span is unclosed or instantaneous.
    /// This is the "span coverage" figure: how much of a request's
    /// latency its phase spans account for.
    pub fn coverage(&self, id: u64) -> Option<f64> {
        let s = self.spans.get(&id)?;
        let total = s.nanos?;
        if total == 0 {
            return None;
        }
        let children: u64 = s
            .children
            .iter()
            .filter_map(|c| self.spans.get(c).and_then(|c| c.nanos))
            .sum();
        Some(100.0 * children as f64 / total as f64)
    }

    /// Root ids with a given span name, in start order.
    pub fn roots_named(&self, name: &str) -> Vec<u64> {
        self.roots
            .iter()
            .copied()
            .filter(|id| self.spans.get(id).is_some_and(|s| s.name == name))
            .collect()
    }

    /// The heaviest-child chain from `id` down: the trace's critical
    /// path through the span tree, as span ids (starting with `id`).
    pub fn critical_path(&self, id: u64) -> Vec<u64> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(s) = self.spans.get(&cur) {
            let heaviest = s
                .children
                .iter()
                .filter_map(|c| self.spans.get(c))
                .max_by_key(|c| c.nanos.unwrap_or(0));
            match heaviest {
                Some(c) => {
                    path.push(c.id);
                    cur = c.id;
                }
                None => break,
            }
        }
        path
    }
}

fn text_owned(map: &BTreeMap<String, Value>) -> Option<String> {
    text(map, "ev").map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"seq":0,"ev":"span_start","span":1,"parent":null,"name":"request"}
{"seq":1,"ev":"span_start","span":2,"parent":1,"name":"queue"}
{"seq":2,"ev":"span_end","span":2,"nanos":40}
{"seq":3,"ev":"span_start","span":3,"parent":1,"name":"handle"}
{"seq":4,"ev":"pass_end","pass":"rank","nanos":30,"span":3}
{"seq":5,"ev":"cache_query","key":9,"hit":true,"span":3}
{"seq":6,"ev":"span_end","span":3,"nanos":55}
{"seq":7,"ev":"req_done","status":200,"nanos":100,"span":1}
{"seq":8,"ev":"span_end","span":1,"nanos":100}
"#;

    #[test]
    fn rebuilds_the_forest() {
        let t = Trace::parse(SAMPLE);
        assert!(t.bad_lines.is_empty());
        assert!(t.orphans.is_empty());
        assert!(t.unclosed.is_empty());
        assert_eq!(t.roots, vec![1]);
        let root = &t.spans[&1];
        assert_eq!(root.name, "request");
        assert_eq!(root.children, vec![2, 3]);
        assert_eq!(root.nanos, Some(100));
        assert_eq!(root.status, Some(200));
        let handle = &t.spans[&3];
        assert_eq!(handle.passes, vec![("rank".to_string(), 30)]);
        assert_eq!(handle.cache_hits, 1);
        assert_eq!(t.req_done, vec![(1, 200, 100)]);
        // 40 + 55 of 100 → 95% coverage, paths follow the heavy child.
        assert_eq!(t.coverage(1), Some(95.0));
        assert_eq!(t.critical_path(1), vec![1, 3]);
        assert_eq!(t.roots_named("request"), vec![1]);
    }

    #[test]
    fn reports_structural_problems() {
        let t = Trace::parse(
            "{\"ev\":\"span_start\",\"span\":5,\"parent\":99,\"name\":\"x\"}\n\
             {\"ev\":\"span_end\",\"span\":6,\"nanos\":1}\n\
             {\"ev\":\"pass_end\",\"pass\":\"rank\",\"nanos\":1,\"span\":7}\n",
        );
        assert_eq!(t.orphans.len(), 3);
        assert!(matches!(
            t.orphans[0],
            Orphan::UnknownParent {
                span: 5,
                parent: 99
            }
        ));
        assert_eq!(t.orphans[1], Orphan::EndWithoutStart(6));
        assert!(matches!(
            t.orphans[2],
            Orphan::UnknownAttribution { span: 7, .. }
        ));
        assert_eq!(t.unclosed, vec![5]);
    }

    #[test]
    fn tolerates_unknown_tags_and_bad_lines() {
        let t = Trace::parse("{\"ev\":\"future_event\",\"x\":1}\nnot json\n{}\n");
        assert_eq!(t.lines, 3);
        assert_eq!(t.bad_lines.len(), 1);
        assert!(t.spans.is_empty());
    }
}
