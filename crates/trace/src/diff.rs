//! Bench-snapshot regression diffing (`asched-bench-diff`).
//!
//! Two `BENCH_*.json` snapshots (the envelope `snapshot_json` writes:
//! `{"schema":..., "label":..., "metrics":{name: number, ...}}`) are
//! compared metric by metric with a *symmetric ratio*:
//! `max(a/b, b/a)` — so a 2x slowdown and a 2x speedup both read as
//! ratio 2.0, and thresholds bound drift in either direction (a
//! surprise speedup usually means the benchmark stopped measuring what
//! it used to). Thresholds attach by longest metric-name prefix, so
//! wall-clock metrics can be loose (`wall.=3.0`) while counts stay
//! exact (`engine.=1.0`); the factor `inf` exempts a prefix entirely.

use std::collections::BTreeMap;

use crate::json::{parse, Json};

/// One compared metric.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Metric name.
    pub name: String,
    /// Value in the base snapshot.
    pub base: f64,
    /// Value in the new snapshot.
    pub new: f64,
    /// Symmetric drift ratio (`max(base/new, new/base)`, ≥ 1).
    pub ratio: f64,
    /// Threshold that applied (factor, and the prefix it came from).
    pub threshold: f64,
    /// Whether the drift stayed within the threshold.
    pub ok: bool,
}

/// Result of one snapshot comparison.
#[derive(Debug, Default)]
pub struct DiffOutcome {
    /// Per-metric rows, in name order.
    pub rows: Vec<DiffRow>,
    /// Metrics present only in the base snapshot (treated as
    /// regressions: a metric that disappeared stopped being measured).
    pub removed: Vec<String>,
    /// Metrics present only in the new snapshot (informational).
    pub added: Vec<String>,
}

impl DiffOutcome {
    /// Rows that exceeded their threshold.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| !r.ok)
    }

    /// Whether the new snapshot passes: no drifting metric, nothing
    /// removed.
    pub fn passed(&self) -> bool {
        self.removed.is_empty() && self.rows.iter().all(|r| r.ok)
    }
}

/// Extract the flat `metrics` map from a snapshot document.
pub fn load_metrics(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let doc = parse(text)?;
    let Some(Json::Obj(metrics)) = doc.get("metrics") else {
        return Err("snapshot has no \"metrics\" object".into());
    };
    let mut out = BTreeMap::new();
    for (name, value) in metrics {
        let v = value
            .as_f64()
            .ok_or_else(|| format!("metric {name:?} is not a number"))?;
        out.insert(name.clone(), v);
    }
    Ok(out)
}

/// Symmetric drift ratio. Equal values (including 0 = 0) are ratio 1;
/// a zero against a nonzero is infinite drift.
pub fn drift_ratio(base: f64, new: f64) -> f64 {
    if base == new {
        return 1.0;
    }
    let (lo, hi) = if base.abs() < new.abs() {
        (base.abs(), new.abs())
    } else {
        (new.abs(), base.abs())
    };
    if lo == 0.0 {
        f64::INFINITY
    } else {
        hi / lo
    }
}

/// The threshold for `name`: the factor of the longest matching prefix
/// in `thresholds`, else `default`.
pub fn threshold_for(name: &str, thresholds: &[(String, f64)], default: f64) -> f64 {
    thresholds
        .iter()
        .filter(|(prefix, _)| name.starts_with(prefix.as_str()))
        .max_by_key(|(prefix, _)| prefix.len())
        .map(|(_, factor)| *factor)
        .unwrap_or(default)
}

/// Compare two metric maps.
pub fn diff_metrics(
    base: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
    thresholds: &[(String, f64)],
    default_threshold: f64,
) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    for (name, b) in base {
        match new.get(name) {
            None => out.removed.push(name.clone()),
            Some(n) => {
                let ratio = drift_ratio(*b, *n);
                let threshold = threshold_for(name, thresholds, default_threshold);
                out.rows.push(DiffRow {
                    name: name.clone(),
                    base: *b,
                    new: *n,
                    ratio,
                    threshold,
                    ok: ratio <= threshold,
                });
            }
        }
    }
    for name in new.keys() {
        if !base.contains_key(name) {
            out.added.push(name.clone());
        }
    }
    out
}

/// Parse one `--threshold PREFIX=FACTOR` argument (`FACTOR` may be
/// `inf`).
pub fn parse_threshold(arg: &str) -> Result<(String, f64), String> {
    let (prefix, factor) = arg
        .split_once('=')
        .ok_or_else(|| format!("--threshold wants PREFIX=FACTOR, got {arg:?}"))?;
    let factor = if factor.eq_ignore_ascii_case("inf") {
        f64::INFINITY
    } else {
        let f: f64 = factor
            .parse()
            .map_err(|e| format!("--threshold {prefix}: bad factor {factor:?}: {e}"))?;
        if f < 1.0 {
            return Err(format!(
                "--threshold {prefix}: factor must be >= 1, got {f}"
            ));
        }
        f
    };
    Ok((prefix.to_string(), factor))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn ratio_is_symmetric_with_zero_handling() {
        assert_eq!(drift_ratio(10.0, 20.0), 2.0);
        assert_eq!(drift_ratio(20.0, 10.0), 2.0);
        assert_eq!(drift_ratio(0.0, 0.0), 1.0);
        assert_eq!(drift_ratio(5.0, 5.0), 1.0);
        assert!(drift_ratio(0.0, 1.0).is_infinite());
    }

    #[test]
    fn longest_prefix_threshold_wins() {
        let t = vec![
            ("wall.".to_string(), 3.0),
            ("wall.elapsed".to_string(), 10.0),
        ];
        assert_eq!(threshold_for("wall.jobs", &t, 2.0), 3.0);
        assert_eq!(threshold_for("wall.elapsed_ms", &t, 2.0), 10.0);
        assert_eq!(threshold_for("engine.tasks", &t, 2.0), 2.0);
    }

    #[test]
    fn detects_injected_regression_and_passes_identical() {
        let base = map(&[("load.latency_p99_us", 100.0), ("load.ok", 500.0)]);
        let same = diff_metrics(&base, &base, &[], 1.5);
        assert!(same.passed());

        let mut slow = base.clone();
        slow.insert("load.latency_p99_us".into(), 200.0);
        let d = diff_metrics(&base, &slow, &[], 1.5);
        assert!(!d.passed());
        let bad: Vec<&str> = d.regressions().map(|r| r.name.as_str()).collect();
        assert_eq!(bad, vec!["load.latency_p99_us"]);
    }

    #[test]
    fn removed_metrics_fail_added_are_noted() {
        let base = map(&[("a", 1.0), ("b", 2.0)]);
        let new = map(&[("a", 1.0), ("c", 3.0)]);
        let d = diff_metrics(&base, &new, &[], 2.0);
        assert_eq!(d.removed, vec!["b".to_string()]);
        assert_eq!(d.added, vec!["c".to_string()]);
        assert!(!d.passed());
    }

    #[test]
    fn loads_snapshot_envelopes() {
        let m = load_metrics(
            r#"{"schema":"asched-bench-snapshot-v1","label":"x","metrics":{"a":1,"b":2.5}}"#,
        )
        .unwrap();
        assert_eq!(m, map(&[("a", 1.0), ("b", 2.5)]));
        assert!(load_metrics(r#"{"label":"x"}"#).is_err());
        assert!(load_metrics("not json").is_err());
    }

    #[test]
    fn threshold_args_parse() {
        assert_eq!(
            parse_threshold("wall.=3").unwrap(),
            ("wall.".to_string(), 3.0)
        );
        assert!(parse_threshold("wall.=inf").unwrap().1.is_infinite());
        assert!(parse_threshold("nofactor").is_err());
        assert!(parse_threshold("x=0.5").is_err());
    }
}
