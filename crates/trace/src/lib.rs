//! # asched-trace — trace analysis and bench regression tooling
//!
//! The observability story has three layers: events (the JSONL wire
//! format `asched-obs` emits), spans (request/task correlation on top
//! of those events), and *this crate* — the offline toolchain that
//! turns a recorded trace back into answers:
//!
//! - [`model::Trace`] rebuilds the span forest from a JSONL file and
//!   checks its structure (zero orphans, zero unclosed spans);
//! - [`analyze`] renders span trees, per-pass and critical-path
//!   breakdowns, cache attribution, folded stacks for flamegraph
//!   tooling, and the `asched-service-model-v1` calibration file;
//! - [`calibrate`] parses that calibration file back
//!   ([`calibrate::ServiceModel`], byte-exact round trip) — the form
//!   the fleet simulator (`crates/fleet`) samples service times from;
//! - [`diff`] compares two `BENCH_*.json` snapshots with per-prefix
//!   drift thresholds (the `asched-bench-diff` binary, wired into CI).
//!
//! Binaries: `asched-trace FILE [--check] [--trees N] [--folded F]
//! [--calibrate F] [--min-coverage PCT]` and
//! `asched-bench-diff BASE NEW [--threshold PREFIX=FACTOR]...`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod calibrate;
pub mod diff;
pub mod json;
pub mod model;

pub use analyze::{
    cache_attribution, calibrate_json, critical_path_passes, folded_stacks, pass_breakdown,
    render_tree, CacheRow,
};
pub use calibrate::{ModelHistogram, ServiceModel};
pub use diff::{diff_metrics, drift_ratio, load_metrics, parse_threshold, DiffOutcome, DiffRow};
pub use model::{Orphan, Span, Trace};
