//! `asched-bench-diff` — compare two bench snapshots for regressions.
//!
//! ```text
//! asched-bench-diff BASE NEW [--threshold PREFIX=FACTOR]...
//!                   [--default-threshold FACTOR] [--ignore-added]
//! ```
//!
//! Each metric present in both snapshots is compared with the
//! symmetric drift ratio `max(base/new, new/base)` against the factor
//! of the longest matching `--threshold` prefix (default
//! `--default-threshold`, 2.0). `FACTOR` may be `inf` to exempt a
//! prefix. Metrics missing from NEW fail the diff (they stopped being
//! measured); metrics only in NEW are reported but never fail.
//!
//! Exit status: 0 when everything is within threshold, 1 on any
//! regression or removed metric, 2 on usage / IO errors.

use std::process::ExitCode;

use asched_trace::{diff_metrics, load_metrics, parse_threshold};

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut thresholds: Vec<(String, f64)> = Vec::new();
    let mut default_threshold = 2.0;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--threshold" => thresholds.push(parse_threshold(&val("--threshold")?)?),
                "--default-threshold" => {
                    default_threshold = val("--default-threshold")?
                        .parse()
                        .map_err(|e| format!("--default-threshold: {e}"))?;
                    if default_threshold < 1.0 {
                        return Err("--default-threshold must be >= 1".into());
                    }
                }
                "--help" | "-h" => {
                    println!(
                        "usage: asched-bench-diff BASE NEW [--threshold PREFIX=FACTOR]...\n\
                         \x20                        [--default-threshold FACTOR]"
                    );
                    std::process::exit(0);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown flag {other:?}"));
                }
                path => files.push(path.to_string()),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("asched-bench-diff: {e}");
            return ExitCode::from(2);
        }
    }
    if files.len() != 2 {
        eprintln!("asched-bench-diff: pass exactly BASE and NEW snapshot files (see --help)");
        return ExitCode::from(2);
    }

    let mut maps = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("asched-bench-diff: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match load_metrics(&text) {
            Ok(m) => maps.push(m),
            Err(e) => {
                eprintln!("asched-bench-diff: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let new = maps.pop().unwrap();
    let base = maps.pop().unwrap();

    let outcome = diff_metrics(&base, &new, &thresholds, default_threshold);
    println!(
        "{} vs {}: {} shared metrics, {} removed, {} added",
        files[0],
        files[1],
        outcome.rows.len(),
        outcome.removed.len(),
        outcome.added.len()
    );
    for row in &outcome.rows {
        let mark = if row.ok { "ok  " } else { "DRIFT" };
        let ratio = if row.ratio.is_finite() {
            format!("{:.3}x", row.ratio)
        } else {
            "inf".to_string()
        };
        let limit = if row.threshold.is_finite() {
            format!("{:.2}x", row.threshold)
        } else {
            "inf".to_string()
        };
        println!(
            "  {mark} {name:32} {base:>14.4} -> {new:>14.4}  {ratio} (limit {limit})",
            name = row.name,
            base = row.base,
            new = row.new,
        );
    }
    for name in &outcome.removed {
        println!("  GONE {name} (present in base, missing in new)");
    }
    for name in &outcome.added {
        println!("  new  {name} (not in base; informational)");
    }

    if outcome.passed() {
        println!("PASS: no metric drifted beyond its threshold");
        ExitCode::SUCCESS
    } else {
        let drifted = outcome.regressions().count();
        eprintln!(
            "asched-bench-diff: FAIL — {} metric(s) drifted, {} removed",
            drifted,
            outcome.removed.len()
        );
        ExitCode::from(1)
    }
}
