//! `asched-trace` — analyze a JSONL event trace.
//!
//! ```text
//! asched-trace FILE [--check] [--min-coverage PCT]
//!              [--trees N] [--folded FILE] [--calibrate FILE]
//! ```
//!
//! Default output is a summary: line/span totals, per-name span
//! latencies, the pass breakdown, and cache attribution. `--trees N`
//! additionally renders the first N span trees. `--folded FILE` writes
//! folded stacks for flamegraph tooling and `--calibrate FILE` writes
//! the `asched-service-model-v1` service-time model.
//!
//! `--check` turns the analysis into a gate (exit 1 on violation):
//! the document must validate against the event schema, the span
//! forest must have zero orphans and zero unclosed spans, every
//! `req_done` must carry a root span, and every closed `request` root
//! must have child spans covering at least `--min-coverage` percent
//! (default 95) of its latency.

use std::process::ExitCode;

use asched_obs::schema::{check_spans, validate_document};
use asched_trace::{
    cache_attribution, calibrate_json, critical_path_passes, folded_stacks, pass_breakdown,
    render_tree, Trace,
};

struct Args {
    file: String,
    check: bool,
    min_coverage: f64,
    trees: usize,
    folded: Option<String>,
    calibrate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        check: false,
        min_coverage: 95.0,
        trees: 0,
        folded: None,
        calibrate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--check" => args.check = true,
            "--min-coverage" => {
                args.min_coverage = val("--min-coverage")?
                    .parse()
                    .map_err(|e| format!("--min-coverage: {e}"))?
            }
            "--trees" => {
                args.trees = val("--trees")?
                    .parse()
                    .map_err(|e| format!("--trees: {e}"))?
            }
            "--folded" => args.folded = Some(val("--folded")?),
            "--calibrate" => args.calibrate = Some(val("--calibrate")?),
            "--help" | "-h" => {
                println!(
                    "usage: asched-trace FILE [--check] [--min-coverage PCT]\n\
                     \x20                   [--trees N] [--folded FILE] [--calibrate FILE]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            path if args.file.is_empty() => args.file = path.to_string(),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    if args.file.is_empty() {
        return Err("pass a trace file (see --help)".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("asched-trace: {e}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("asched-trace: cannot read {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };

    let trace = Trace::parse(&text);
    let mut violations: Vec<String> = Vec::new();

    // Structural summary.
    println!(
        "{}: {} lines, {} spans, {} roots",
        args.file,
        trace.lines,
        trace.spans.len(),
        trace.roots.len()
    );
    if let Some((line, err)) = trace.bad_lines.first() {
        violations.push(format!(
            "{} unparsable line(s); first at line {line}: {err}",
            trace.bad_lines.len()
        ));
    }
    if !trace.orphans.is_empty() {
        violations.push(format!(
            "{} orphan span reference(s); first: {:?}",
            trace.orphans.len(),
            trace.orphans[0]
        ));
    }
    if !trace.unclosed.is_empty() {
        violations.push(format!(
            "{} unclosed span(s); first: #{}",
            trace.unclosed.len(),
            trace.unclosed[0]
        ));
    }

    // Per-name latency table.
    let mut by_name: std::collections::BTreeMap<&str, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for s in trace.spans.values() {
        if let Some(nanos) = s.nanos {
            let e = by_name.entry(s.name.as_str()).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += nanos;
            e.2 = e.2.max(nanos);
        }
    }
    if !by_name.is_empty() {
        println!("spans by name:");
        for (name, (count, total, max)) in &by_name {
            println!(
                "  {name:10} x{count:<6} mean {:9.3}ms  max {:9.3}ms",
                *total as f64 / *count as f64 / 1e6,
                *max as f64 / 1e6
            );
        }
    }

    let passes = pass_breakdown(&trace);
    if !passes.is_empty() {
        println!("pass breakdown (attributed pass_end):");
        for (pass, calls, nanos) in &passes {
            println!("  {pass:12} x{calls:<6} {:9.3}ms", *nanos as f64 / 1e6);
        }
    }

    let cache = cache_attribution(&trace);
    if !cache.is_empty() {
        println!("cache attribution by span name:");
        for row in &cache {
            let queries = row.hits + row.misses;
            let rate = if queries > 0 {
                row.hits as f64 / queries as f64
            } else {
                0.0
            };
            print!(
                "  {:10} {} hits / {} misses ({:.1}% hit)",
                row.name,
                row.hits,
                row.misses,
                rate * 100.0
            );
            if row.warm_hits > 0 {
                print!(", {} warm", row.warm_hits);
            }
            println!(", {} evictions", row.evictions);
        }
    }

    // Request roots: coverage + req_done correlation.
    let requests = trace.roots_named("request");
    if !requests.is_empty() {
        let mut min_cov = f64::INFINITY;
        let mut sum_cov = 0.0;
        let mut covered = 0usize;
        for id in &requests {
            if let Some(cov) = trace.coverage(*id) {
                min_cov = min_cov.min(cov);
                sum_cov += cov;
                covered += 1;
            }
        }
        if covered > 0 {
            println!(
                "request span coverage: {} requests, min {:.1}% mean {:.1}%",
                covered,
                min_cov,
                sum_cov / covered as f64
            );
            if min_cov < args.min_coverage {
                violations.push(format!(
                    "request span coverage fell to {min_cov:.1}% (< {:.1}%)",
                    args.min_coverage
                ));
            }
        }
        if let Some(root) = requests.first() {
            let cp = critical_path_passes(&trace, *root);
            if !cp.is_empty() {
                println!("critical-path passes (first request):");
                for (pass, calls, nanos) in &cp {
                    println!("  {pass:12} x{calls:<6} {:9.3}ms", *nanos as f64 / 1e6);
                }
            }
        }
    }
    let unattributed_reqs = trace
        .req_done
        .iter()
        .filter(|(span, _, _)| *span == 0)
        .count();
    if !trace.req_done.is_empty() {
        println!(
            "req_done: {} total, {} with a root span",
            trace.req_done.len(),
            trace.req_done.len() - unattributed_reqs
        );
        if unattributed_reqs > 0 {
            violations.push(format!(
                "{unattributed_reqs} req_done event(s) carry no span"
            ));
        }
    }

    for (i, id) in trace.roots.iter().take(args.trees).enumerate() {
        println!("--- tree {} (span #{id}) ---", i + 1);
        print!("{}", render_tree(&trace, *id));
    }

    if let Some(path) = &args.folded {
        if let Err(e) = std::fs::write(path, folded_stacks(&trace)) {
            eprintln!("asched-trace: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.calibrate {
        if let Err(e) = std::fs::write(path, calibrate_json(&trace) + "\n") {
            eprintln!("asched-trace: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    if args.check {
        // Full schema validation + the cross-line span checker, in
        // addition to the structural checks above.
        if let Err((line, err)) = validate_document(&text) {
            violations.push(format!("schema violation at line {line}: {err}"));
        }
        match check_spans(&text) {
            Ok(report) => {
                if !report.unclosed.is_empty() {
                    violations.push(format!(
                        "span checker: {} unclosed span(s)",
                        report.unclosed.len()
                    ));
                }
            }
            Err((line, err)) => {
                violations.push(format!("span checker failed at line {line}: {err}"));
            }
        }
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("asched-trace: CHECK FAILED: {v}");
            }
            return ExitCode::from(1);
        }
        println!("check passed");
    } else {
        for v in &violations {
            eprintln!("asched-trace: warning: {v}");
        }
    }
    ExitCode::SUCCESS
}
