//! Analyses over a reconstructed [`Trace`]: rendered span trees,
//! pass and cache breakdowns, folded stacks for flamegraphs, and the
//! service-time calibration model.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use asched_obs::json::JsonObject;
use asched_obs::Histogram;

use crate::model::Trace;

/// Render the span tree rooted at `id` as an indented text block:
/// one line per span with name, id, duration and attributed totals.
pub fn render_tree(t: &Trace, id: u64) -> String {
    let mut out = String::new();
    render_into(t, id, 0, &mut out);
    out
}

fn render_into(t: &Trace, id: u64, depth: usize, out: &mut String) {
    let Some(s) = t.spans.get(&id) else { return };
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(out, "{} #{}", s.name, s.id);
    match s.nanos {
        Some(n) => {
            let _ = write!(out, " {:.3}ms", n as f64 / 1e6);
        }
        None => out.push_str(" (unclosed)"),
    }
    if let Some(cov) = t.coverage(id) {
        if !s.children.is_empty() {
            let _ = write!(out, " cover {cov:.1}%");
        }
    }
    if s.cache_hits + s.cache_misses > 0 {
        let _ = write!(out, " cache {}h/{}m", s.cache_hits, s.cache_misses);
        if s.cache_warm_hits > 0 {
            let _ = write!(out, " ({} warm)", s.cache_warm_hits);
        }
    }
    if s.cache_evictions > 0 {
        let _ = write!(out, " {}ev", s.cache_evictions);
    }
    if let Some(outcome) = &s.outcome {
        let _ = write!(out, " [{outcome}]");
    }
    if let Some(status) = s.status {
        let _ = write!(out, " status {status}");
    }
    if !s.passes.is_empty() {
        let total: u64 = s.passes.iter().map(|(_, n)| n).sum();
        let _ = write!(out, " passes {:.3}ms", total as f64 / 1e6);
    }
    out.push('\n');
    for c in &s.children {
        render_into(t, *c, depth + 1, out);
    }
}

/// Per-pass `(calls, total nanos)` over every span-attributed
/// `pass_end` in the trace, sorted by descending total — where
/// scheduling time actually went.
pub fn pass_breakdown(t: &Trace) -> Vec<(String, u64, u64)> {
    let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for s in t.spans.values() {
        for (pass, nanos) in &s.passes {
            let e = totals.entry(pass.as_str()).or_default();
            e.0 += 1;
            e.1 += nanos;
        }
    }
    let mut rows: Vec<(String, u64, u64)> = totals
        .into_iter()
        .map(|(pass, (calls, nanos))| (pass.to_string(), calls, nanos))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// Per-pass `(calls, total nanos)` along the critical path of one tree
/// only: the passes that bounded this request's latency, not the ones
/// that ran beside it.
pub fn critical_path_passes(t: &Trace, root: u64) -> Vec<(String, u64, u64)> {
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for id in t.critical_path(root) {
        if let Some(s) = t.spans.get(&id) {
            for (pass, nanos) in &s.passes {
                let e = totals.entry(pass.clone()).or_default();
                e.0 += 1;
                e.1 += nanos;
            }
        }
    }
    let mut rows: Vec<(String, u64, u64)> = totals
        .into_iter()
        .map(|(pass, (calls, nanos))| (pass, calls, nanos))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// One span-name row of [`cache_attribution`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheRow {
    /// Span name the traffic was attributed to.
    pub name: String,
    /// Attributed hits.
    pub hits: u64,
    /// Hits served by warm-started (file-loaded) entries — a subset of
    /// `hits`, nonzero only when the cache was warm-started.
    pub warm_hits: u64,
    /// Attributed misses.
    pub misses: u64,
    /// Attributed evictions.
    pub evictions: u64,
}

/// Cache traffic grouped by span name, descending by queries. Shows
/// *which layer* of the tree the schedule cache serves (tasks, in
/// practice) and how much of it was warm-start traffic.
pub fn cache_attribution(t: &Trace) -> Vec<CacheRow> {
    let mut by_name: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
    for s in t.spans.values() {
        if s.cache_hits + s.cache_misses + s.cache_evictions > 0 {
            let e = by_name.entry(s.name.as_str()).or_default();
            e.0 += s.cache_hits;
            e.1 += s.cache_warm_hits;
            e.2 += s.cache_misses;
            e.3 += s.cache_evictions;
        }
    }
    let mut rows: Vec<CacheRow> = by_name
        .into_iter()
        .map(|(name, (hits, warm_hits, misses, evictions))| CacheRow {
            name: name.to_string(),
            hits,
            warm_hits,
            misses,
            evictions,
        })
        .collect();
    rows.sort_by(|a, b| {
        (b.hits + b.misses)
            .cmp(&(a.hits + a.misses))
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

/// Folded-stack lines (`root;child;leaf <self-nanos>`) for flamegraph
/// tooling. Each span contributes its *self* time — duration minus the
/// sum of its children's durations, clamped at zero — so stack totals
/// add up to the roots' wall clock. Identical stacks are merged;
/// output is sorted by stack name for determinism.
pub fn folded_stacks(t: &Trace) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for root in &t.roots {
        let mut path = String::new();
        fold_into(t, *root, &mut path, &mut folded);
    }
    let mut out = String::new();
    for (stack, nanos) in folded {
        let _ = writeln!(out, "{stack} {nanos}");
    }
    out
}

fn fold_into(t: &Trace, id: u64, path: &mut String, folded: &mut BTreeMap<String, u64>) {
    let Some(s) = t.spans.get(&id) else { return };
    let parent_len = path.len();
    if !path.is_empty() {
        path.push(';');
    }
    path.push_str(&s.name);
    let children: u64 = s
        .children
        .iter()
        .filter_map(|c| t.spans.get(c).and_then(|c| c.nanos))
        .sum();
    let own = s.nanos.unwrap_or(0).saturating_sub(children);
    *folded.entry(path.clone()).or_default() += own;
    for c in &s.children {
        fold_into(t, *c, path, folded);
    }
    path.truncate(parent_len);
}

/// Build the service-time model for the fleet simulator: per span name
/// and per pass, a microsecond histogram of observed durations, plus a
/// cache-conditioned split of `task` spans (hit vs miss service time —
/// the two service regimes the simulator's per-worker schedule-cache
/// model samples from). The output is self-describing JSON
/// (`asched-service-model-v1`) reusing [`Histogram::to_json`]'s bucket
/// encoding; `crates/trace`'s own
/// [`ServiceModel`](crate::calibrate::ServiceModel) parses it back.
pub fn calibrate_json(t: &Trace) -> String {
    let mut span_hists: BTreeMap<&str, Histogram> = BTreeMap::new();
    let mut pass_hists: BTreeMap<&str, Histogram> = BTreeMap::new();
    let mut task_hit = Histogram::new();
    let mut task_miss = Histogram::new();
    for s in t.spans.values() {
        if let Some(nanos) = s.nanos {
            span_hists
                .entry(s.name.as_str())
                .or_default()
                .record(nanos / 1_000);
            // A task span carries exactly one cache_query attribution
            // when caching is on; spans without one (cache disabled)
            // belong to neither regime.
            if s.name == "task" {
                if s.cache_hits > 0 {
                    task_hit.record(nanos / 1_000);
                } else if s.cache_misses > 0 {
                    task_miss.record(nanos / 1_000);
                }
            }
        }
        for (pass, nanos) in &s.passes {
            pass_hists
                .entry(pass.as_str())
                .or_default()
                .record(nanos / 1_000);
        }
    }
    let render = |hists: BTreeMap<&str, Histogram>| {
        let mut obj = JsonObject::new();
        for (name, h) in hists {
            obj.raw(name, &h.to_json());
        }
        obj.finish()
    };
    let mut o = JsonObject::new();
    o.str("schema", "asched-service-model-v1")
        .str("unit", "us")
        .u64("spans_total", t.spans.len() as u64)
        .u64("requests", t.roots_named("request").len() as u64);
    o.raw("span_us", &render(span_hists));
    o.raw("pass_us", &render(pass_hists));
    o.raw("task_hit_us", &task_hit.to_json());
    o.raw("task_miss_us", &task_miss.to_json());
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::parse(
            r#"{"ev":"span_start","span":1,"parent":null,"name":"request"}
{"ev":"span_start","span":2,"parent":1,"name":"handle"}
{"ev":"span_start","span":3,"parent":2,"name":"engine"}
{"ev":"pass_end","pass":"rank","nanos":3000,"span":3}
{"ev":"cache_query","key":1,"hit":false,"span":3}
{"ev":"span_end","span":3,"nanos":6000}
{"ev":"span_end","span":2,"nanos":8000}
{"ev":"req_done","status":200,"nanos":10000,"span":1}
{"ev":"span_end","span":1,"nanos":10000}
"#,
        )
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let t = sample();
        let folded = folded_stacks(&t);
        assert_eq!(
            folded,
            "request 2000\nrequest;handle 2000\nrequest;handle;engine 6000\n"
        );
        // Self times sum back to the root's wall clock.
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 10000);
    }

    #[test]
    fn breakdowns_and_tree_rendering() {
        let t = sample();
        assert_eq!(pass_breakdown(&t), vec![("rank".to_string(), 1, 3000)]);
        assert_eq!(
            critical_path_passes(&t, 1),
            vec![("rank".to_string(), 1, 3000)]
        );
        assert_eq!(
            cache_attribution(&t),
            vec![CacheRow {
                name: "engine".to_string(),
                hits: 0,
                warm_hits: 0,
                misses: 1,
                evictions: 0,
            }]
        );
        let tree = render_tree(&t, 1);
        assert!(tree.contains("request #1 0.010ms"), "{tree}");
        assert!(tree.contains("  handle #2"), "{tree}");
        assert!(tree.contains("    engine #3"), "{tree}");
        assert!(tree.contains("cache 0h/1m"), "{tree}");
        assert!(tree.contains("status 200"), "{tree}");
    }

    #[test]
    fn warm_hits_are_attributed_and_rendered() {
        let t = Trace::parse(
            r#"{"ev":"span_start","span":1,"parent":null,"name":"engine"}
{"ev":"cache_query","key":1,"hit":true,"warm":true,"span":1}
{"ev":"cache_query","key":2,"hit":true,"span":1}
{"ev":"cache_query","key":3,"hit":false,"shard":2,"span":1}
{"ev":"span_end","span":1,"nanos":5000}
"#,
        );
        assert_eq!(
            cache_attribution(&t),
            vec![CacheRow {
                name: "engine".to_string(),
                hits: 2,
                warm_hits: 1,
                misses: 1,
                evictions: 0,
            }]
        );
        let tree = render_tree(&t, 1);
        assert!(tree.contains("cache 2h/1m (1 warm)"), "{tree}");
    }

    #[test]
    fn calibration_model_is_parseable_json() {
        let t = sample();
        let model = calibrate_json(&t);
        let v = crate::json::parse(&model).expect("model parses");
        assert_eq!(
            v.get("schema").and_then(crate::json::Json::as_str),
            Some("asched-service-model-v1")
        );
        assert_eq!(
            v.get("requests").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        // request span: 10000 ns → 10 us histogram with one sample.
        let req = v.get("span_us").and_then(|s| s.get("request")).unwrap();
        assert_eq!(
            req.get("count").and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            req.get("sum").and_then(crate::json::Json::as_f64),
            Some(10.0)
        );
    }
}
