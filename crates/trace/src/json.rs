//! A minimal recursive JSON parser for *nested* documents.
//!
//! The trace event schema is flat by design and is parsed by
//! [`asched_obs::schema::parse_flat_object`]; this parser exists for
//! the documents that are not flat — `BENCH_*.json` snapshots (metrics
//! object nested inside the envelope) and service-model files. It
//! supports the full JSON value grammar minus `\uXXXX` escapes beyond
//! the BMP pass-through the workspace emits (ASCII `\u00XX` only),
//! which is all these documents ever contain.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as `f64` (snapshot metrics are f64 already).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is not preserved (keys are unique in
    /// every document this tool reads).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Parse one JSON document. The whole input must be consumed.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.bump() {
            Some(b) if b == want => Ok(()),
            got => Err(format!(
                "offset {}: expected {:?}, got {:?}",
                self.pos,
                want as char,
                got.map(|b| b as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "offset {}: unexpected {:?}",
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("offset {}: expected {word:?}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("offset {start}: bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| format!("bad \\u digit {:?}", d as char))?;
                        }
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("bad \\u code point {code:#x}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|b| b as char)));
                    }
                },
                Some(b) => out.push(b),
            }
        }
        String::from_utf8(out).map_err(|e| format!("string is not UTF-8: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                other => {
                    return Err(format!(
                        "offset {}: expected ',' or ']', got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ));
                }
            }
        }
        Ok(Json::Arr(items))
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "offset {}: expected ',' or '}}', got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ));
                }
            }
        }
        Ok(Json::Obj(map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a":{"b":[1,2.5,-3e2]},"s":"x\"y","t":true,"n":null}"#;
        let v = parse(doc).unwrap();
        let b = v.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(
            *b,
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x\"y"));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn parses_a_real_snapshot_envelope() {
        let doc =
            r#"{"schema":"asched-bench-snapshot-v2","label":"ctx","metrics":{"a.b":1,"a.c":0.5}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str).unwrap().len(), 24);
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("a.b").and_then(Json::as_f64), Some(1.0));
    }
}
