//! The warm-path contract: once a [`SchedCtx`] has served one call for
//! a given (graph, mask), repeated `compute_ranks` calls run without a
//! single heap allocation — the analysis cache holds the topo order,
//! descendant bitsets and successor lists, and every scratch buffer is
//! recycled at its high-water size. Verified with a counting global
//! allocator, the same technique as `asched-obs`'s null-recorder test.

use asched_graph::{BlockId, DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use asched_rank::{compute_ranks, Deadlines};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Per-thread counter: the test harness runs tests on concurrent
// threads, and another test's (legitimate) cold-path allocations must
// not pollute this thread's measurement.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with` so allocations during TLS teardown stay harmless.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(|c| c.get());
    let r = f();
    (ALLOCATIONS.with(|c| c.get()) - before, r)
}

/// A deterministic trace of small blocks, the shape the schedulers see
/// in practice (no dev-dependency on the workload generators: the test
/// crate's allocator is global, so keep the harness minimal).
fn trace(nodes: usize, per_block: usize) -> DepGraph {
    let mut g = DepGraph::new();
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..nodes {
        g.add_simple(format!("n{i}"), BlockId((i / per_block) as u32));
    }
    for i in 0..nodes {
        let blk_end = ((i / per_block) + 1) * per_block;
        for j in (i + 1)..blk_end.min(nodes) {
            if next() % 10 < 3 {
                g.add_dep(NodeId(i as u32), NodeId(j as u32), (next() % 3) as u32);
            }
        }
        // Light cross-block coupling into the next block's head.
        if blk_end < nodes && next() % 10 < 2 {
            g.add_dep(
                NodeId(i as u32),
                NodeId(blk_end as u32),
                1 + (next() % 2) as u32,
            );
        }
    }
    g
}

#[test]
fn warm_compute_ranks_does_not_allocate() {
    let g = trace(512, 8);
    let mask = g.all_nodes();
    let machine = MachineModel::single_unit(4);
    let d = Deadlines::uniform(&g, &mask, g.len() as i64 * 4);
    let opts = SchedOpts::default();

    let mut ctx = SchedCtx::new();
    // Cold call: builds the analyses and sizes every scratch buffer.
    let cold_ranks = compute_ranks(&mut ctx, &g, &mask, &machine, &d, &opts)
        .unwrap()
        .to_vec();

    // Warm calls: the whole loop must be allocation-free.
    let (n, warm_ranks) = allocations(|| {
        let mut last = 0i64;
        for _ in 0..100 {
            let r = compute_ranks(&mut ctx, &g, &mask, &machine, &d, &opts).unwrap();
            last = r[0];
        }
        let _ = last;
        compute_ranks(&mut ctx, &g, &mask, &machine, &d, &opts)
            .unwrap()
            .to_vec()
    });
    // The final .to_vec() above is the only permitted allocation.
    assert!(n <= 1, "warm compute_ranks allocated {n} times");
    assert_eq!(cold_ranks, warm_ranks, "warm ranks must match cold ranks");
}

#[test]
fn warm_compute_ranks_is_alloc_free_on_multi_unit_machines() {
    // The Section 4.2 backward modes use the per-unit scratch too.
    let g = trace(128, 8);
    let mask = g.all_nodes();
    let machine = MachineModel::rs6000_like(4);
    let d = Deadlines::uniform(&g, &mask, g.len() as i64 * 4);
    let opts = SchedOpts::default();

    let mut ctx = SchedCtx::new();
    compute_ranks(&mut ctx, &g, &mask, &machine, &d, &opts).unwrap();
    let (n, _) = allocations(|| {
        for _ in 0..50 {
            compute_ranks(&mut ctx, &g, &mask, &machine, &d, &opts).unwrap();
        }
    });
    assert_eq!(n, 0, "warm multi-unit compute_ranks allocated {n} times");
}

#[test]
fn tightened_deadlines_stay_on_the_warm_path() {
    // Deadline manipulation (the merge/idle-delay loops' pattern) does
    // not invalidate the (graph, mask) analyses: calls after a deadline
    // change still run allocation-free.
    let g = trace(256, 8);
    let mask = g.all_nodes();
    let machine = MachineModel::single_unit(2);
    let mut d = Deadlines::uniform(&g, &mask, g.len() as i64 * 4);
    let opts = SchedOpts::default();

    let mut ctx = SchedCtx::new();
    compute_ranks(&mut ctx, &g, &mask, &machine, &d, &opts).unwrap();
    let (n, _) = allocations(|| {
        for k in 0..20 {
            d.tighten(NodeId(k as u32), g.len() as i64 * 2 - k);
            compute_ranks(&mut ctx, &g, &mask, &machine, &d, &opts).unwrap();
        }
    });
    assert_eq!(n, 0, "deadline changes must not leave the warm path");
}
