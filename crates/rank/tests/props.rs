//! Property tests for the Rank Algorithm.

use asched_graph::{BlockId, DepGraph, MachineModel, NodeId, SchedCtx, SchedOpts};
use asched_rank::{
    brute, compute_ranks, list_schedule, max_tardiness, min_max_tardiness, rank_schedule,
    rank_schedule_default, Deadlines,
};
use proptest::prelude::*;

/// Random restricted-case DAG (0/1 latencies, unit exec times).
fn arb_dag01(max_n: usize) -> impl Strategy<Value = DepGraph> {
    (2usize..max_n, any::<u64>(), 0.1f64..0.6).prop_map(|(n, seed, density)| {
        let mut g = DepGraph::new();
        for i in 0..n {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for j in (i + 1)..n {
                if (next() % 1000) as f64 / 1000.0 < density {
                    g.add_dep(NodeId(i as u32), NodeId(j as u32), (next() % 2) as u32);
                }
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// In the restricted case, the rank schedule is within one cycle of
    /// the exact optimum (it reproduces the paper's published rank
    /// values exactly and is optimal on 99.95% of all 5-node instances;
    /// the residual ties require the unpublished TR's tie-breaking — see
    /// the crate-level fidelity note and experiment E7's exhaustive
    /// certificate).
    #[test]
    fn restricted_rank_near_optimal(g in arb_dag01(9)) {
        let m = MachineModel::single_unit(2);
        let mut ctx = SchedCtx::new();
        let s = rank_schedule_default(&mut ctx, &g, &g.all_nodes(), &m).unwrap();
        let opt = brute::optimal_makespan(&g, &g.all_nodes(), &m);
        prop_assert!(s.makespan() >= opt);
        prop_assert!(s.makespan() <= opt + 1, "{} vs {}", s.makespan(), opt);
    }

    /// The rank schedule, when it accepts a deadline set, actually meets
    /// every deadline, and every rank is bounded by its own deadline.
    #[test]
    fn accepted_deadlines_are_met(g in arb_dag01(14)) {
        let m = MachineModel::single_unit(2);
        let mask = g.all_nodes();
        let mut ctx = SchedCtx::new();
        // Use an achievable uniform deadline: the optimal makespan.
        let t = rank_schedule_default(&mut ctx, &g, &mask, &m).unwrap().makespan();
        let d = Deadlines::uniform(&g, &mask, t as i64);
        let out = rank_schedule(&mut ctx, &g, &mask, &m, &d, &SchedOpts::default()).unwrap();
        for id in mask.iter() {
            prop_assert!(out.schedule.completion(id).unwrap() as i64 <= d.get(id));
            prop_assert!(out.ranks[id.index()] <= d.get(id));
        }
    }

    /// Tightening a node's own deadline never increases that node's
    /// rank. (Full monotonicity over *all* nodes does not hold: a
    /// lowered descendant rank can free a later backward-schedule slot
    /// for a different descendant, loosening an ancestor's bound.)
    #[test]
    fn own_rank_monotone_in_own_deadline(g in arb_dag01(12), k in 0usize..12) {
        let m = MachineModel::single_unit(2);
        let mask = g.all_nodes();
        let opts = SchedOpts::default();
        let d1 = Deadlines::uniform(&g, &mask, 100);
        let mut ctx = SchedCtx::new();
        let r1 = compute_ranks(&mut ctx, &g, &mask, &m, &d1, &opts).unwrap().to_vec();
        let victim = NodeId((k % g.len()) as u32);
        let mut d2 = d1.clone();
        d2.set(victim, r1[victim.index()].max(2) - 1);
        let r2 = compute_ranks(&mut ctx, &g, &mask, &m, &d2, &opts).unwrap();
        prop_assert!(r2[victim.index()] <= r1[victim.index()]);
        prop_assert!(r2[victim.index()] <= d2.get(victim));
    }

    /// Minimum max-tardiness is exact in the restricted case: the
    /// returned schedule attains the reported delta, and delta-1 is
    /// infeasible.
    #[test]
    fn min_tardiness_is_tight(g in arb_dag01(10), dl in 1i64..6) {
        let m = MachineModel::single_unit(2);
        let mask = g.all_nodes();
        let opts = SchedOpts::default();
        let mut ctx = SchedCtx::new();
        let d = Deadlines::uniform(&g, &mask, dl);
        let (s, delta) = min_max_tardiness(&mut ctx, &g, &mask, &m, &d, &opts).unwrap();
        prop_assert_eq!(max_tardiness(&mask, &s, &d), delta);
        if delta > 0 {
            let mut tighter = d.clone();
            tighter.shift_all(&mask, delta - 1);
            prop_assert!(rank_schedule(&mut ctx, &g, &mask, &m, &tighter, &opts).is_err());
        }
        // Soundness against the true optimum: for uniform deadlines the
        // minimum achievable max tardiness is max(0, optimum - deadline);
        // the reported delta is achievable (checked above) so it can
        // never undercut it, and the near-exact feasibility probe keeps
        // it within one cycle of the truth.
        let opt = brute::optimal_makespan(&g, &mask, &m) as i64;
        let truth = (opt - dl).max(0);
        prop_assert!(delta >= truth);
        prop_assert!(delta <= truth + 1, "delta {} vs true {}", delta, truth);
    }

    /// The brute-force optimum lower-bounds greedy scheduling from any
    /// priority list (here: source order and reverse source order).
    #[test]
    fn brute_is_a_lower_bound(g in arb_dag01(9)) {
        let m = MachineModel::single_unit(2);
        let mask = g.all_nodes();
        let opt = brute::optimal_makespan(&g, &mask, &m);
        let fwd: Vec<NodeId> = g.node_ids().collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let mut ctx = SchedCtx::new();
        for prio in [fwd, rev] {
            let s = list_schedule(&mut ctx, &g, &mask, &m, &prio, &SchedOpts::default());
            prop_assert!(s.makespan() >= opt);
        }
    }

    /// A warm, reused context produces byte-identical output to a fresh
    /// context on every call — the cache is an invisible optimization.
    #[test]
    fn warm_ctx_matches_fresh(g in arb_dag01(12), dl in 3i64..40) {
        let m = MachineModel::single_unit(2);
        let mask = g.all_nodes();
        let opts = SchedOpts::default();
        let d = Deadlines::uniform(&g, &mask, dl);
        let mut warm = SchedCtx::new();
        // Warm the cache with an unrelated deadline set first.
        let _ = rank_schedule(&mut warm, &g, &mask, &m, &Deadlines::unbounded(&g, &mask), &opts);
        let warm_out = rank_schedule(&mut warm, &g, &mask, &m, &d, &opts);
        let fresh_out = rank_schedule(&mut SchedCtx::new(), &g, &mask, &m, &d, &opts);
        match (warm_out, fresh_out) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.schedule, b.schedule);
                prop_assert_eq!(a.ranks, b.ranks);
                prop_assert_eq!(a.priority, b.priority);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "warm {:?} vs fresh {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Mutating the graph invalidates cached analyses: results after a
    /// mutation match a fresh context, never the stale graph.
    #[test]
    fn mutation_invalidates_cache(g in arb_dag01(10)) {
        let m = MachineModel::single_unit(2);
        let mut ctx = SchedCtx::new();
        let mut g = g;
        let mask0 = g.all_nodes();
        let before = rank_schedule_default(&mut ctx, &g, &mask0, &m).unwrap();
        // Append a sink depending on node 0: every analysis changes.
        let sink = g.add_simple("sink", BlockId(0));
        g.add_dep(NodeId(0), sink, 1);
        let mask1 = g.all_nodes();
        let warm = rank_schedule_default(&mut ctx, &g, &mask1, &m).unwrap();
        let fresh = rank_schedule_default(&mut SchedCtx::new(), &g, &mask1, &m).unwrap();
        prop_assert_eq!(&warm, &fresh);
        prop_assert!(warm.num_scheduled() == before.num_scheduled() + 1);
    }
}
