//! Tardiness utilities.
//!
//! The Rank Algorithm "constructs a minimum tardiness schedule if the
//! problem input has deadlines" (paper Section 6, citing Palem & Simons).
//! [`min_max_tardiness`] realizes that claim operationally: the minimum
//! uniform relaxation `delta` such that shifting every deadline by
//! `delta` becomes feasible equals the minimum achievable maximum
//! tardiness; a binary search over `delta` with the rank feasibility test
//! finds it.

use crate::deadline::Deadlines;
use crate::ranks::{rank_schedule, RankError};
use asched_graph::{DepGraph, MachineModel, NodeSet, SchedCtx, SchedOpts, Schedule};

/// Maximum tardiness of `sched` against deadlines `d` over `mask`:
/// `max(0, completion(x) - d(x))`.
pub fn max_tardiness(mask: &NodeSet, sched: &Schedule, d: &Deadlines) -> i64 {
    mask.iter()
        .map(|id| {
            let c = sched.completion(id).expect("schedule must cover the mask") as i64;
            (c - d.get(id)).max(0)
        })
        .max()
        .unwrap_or(0)
}

/// Minimum achievable maximum tardiness under deadlines `d`, together
/// with a schedule attaining it.
///
/// Exact on the restricted machine (0/1 latencies, unit execution times,
/// single unit), where the rank feasibility test is exact; a heuristic
/// otherwise. Returns `Err` only for cyclic graphs.
///
/// Every feasibility probe in the binary search re-ranks the same
/// `(g, mask)`, so the `ctx` analysis cache turns all but the first probe
/// into pure scratch-buffer work.
pub fn min_max_tardiness(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    d: &Deadlines,
    opts: &SchedOpts,
) -> Result<(Schedule, i64), RankError> {
    // Fast path: already feasible.
    match rank_schedule(ctx, g, mask, machine, d, opts) {
        Ok(out) => return Ok((out.schedule, 0)),
        Err(RankError::Cyclic(c)) => return Err(RankError::Cyclic(c)),
        Err(RankError::Infeasible { .. }) => {}
    }
    // Upper bound: any valid schedule's tardiness; take the unconstrained
    // rank schedule.
    let free = rank_schedule(ctx, g, mask, machine, &Deadlines::unbounded(g, mask), opts)?;
    let hi0 = max_tardiness(mask, &free.schedule, d);
    debug_assert!(hi0 > 0, "infeasible instance must have positive tardiness");

    let feasible_with = |ctx: &mut SchedCtx, delta: i64| -> Option<Schedule> {
        let mut shifted = d.clone();
        shifted.shift_all(mask, delta);
        rank_schedule(ctx, g, mask, machine, &shifted, opts)
            .ok()
            .map(|o| o.schedule)
    };

    let (mut lo, mut hi) = (0i64, hi0);
    let mut best = free.schedule;
    debug_assert!(feasible_with(ctx, hi).is_some());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match feasible_with(ctx, mid) {
            Some(s) => {
                best = s;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    // `hi` is the smallest feasible delta found; `best` is a schedule for
    // it (re-run in case the last probe failed).
    if max_tardiness(mask, &best, d) > hi {
        best = feasible_with(ctx, hi).expect("hi was verified feasible");
    }
    Ok((best, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    fn m1() -> MachineModel {
        MachineModel::single_unit(2)
    }

    #[test]
    fn zero_tardiness_when_feasible() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 5);
        let (s, t) = min_max_tardiness(
            &mut SchedCtx::new(),
            &g,
            &g.all_nodes(),
            &m1(),
            &d,
            &SchedOpts::default(),
        )
        .unwrap();
        assert_eq!(t, 0);
        assert_eq!(max_tardiness(&g.all_nodes(), &s, &d), 0);
    }

    #[test]
    fn impossible_deadline_yields_exact_delta() {
        // Chain a -(1)-> b with both deadlines 1: b can complete at 3 at
        // best, so min max tardiness is 2.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 1);
        let d = Deadlines::uniform(&g, &g.all_nodes(), 1);
        let (s, t) = min_max_tardiness(
            &mut SchedCtx::new(),
            &g,
            &g.all_nodes(),
            &m1(),
            &d,
            &SchedOpts::default(),
        )
        .unwrap();
        assert_eq!(t, 2);
        assert_eq!(max_tardiness(&g.all_nodes(), &s, &d), 2);
    }

    #[test]
    fn tardiness_counts_only_lateness() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let mut s = Schedule::new(g.len());
        s.assign(a, 0, 0, 1); // completes at 1
        let d = Deadlines::uniform(&g, &g.all_nodes(), 10);
        assert_eq!(max_tardiness(&g.all_nodes(), &s, &d), 0);
        let tight = Deadlines::uniform(&g, &g.all_nodes(), 0);
        assert_eq!(max_tardiness(&g.all_nodes(), &s, &tight), 1);
    }

    #[test]
    fn mixed_deadlines() {
        // Three independent nodes; deadlines 1,1,1 on a single unit force
        // tardiness 2 (completions 1,2,3).
        let mut g = DepGraph::new();
        for i in 0..3 {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        let d = Deadlines::uniform(&g, &g.all_nodes(), 1);
        let (_, t) = min_max_tardiness(
            &mut SchedCtx::new(),
            &g,
            &g.all_nodes(),
            &m1(),
            &d,
            &SchedOpts::default(),
        )
        .unwrap();
        assert_eq!(t, 2);
    }
}
