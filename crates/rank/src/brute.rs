//! Exact (exponential-time) scheduling, used as ground truth.
//!
//! A memoized branch-and-bound search over partial schedules. At each
//! decision point we either start a ready instruction on a free unit now,
//! or advance time to the next event. States are canonicalized as
//! `(scheduled-set, per-node release offsets, per-unit busy offsets)`
//! relative to the current time, so equivalent futures are explored once.
//!
//! Intended for small instances (`n <= ~14` nodes, small latencies); the
//! E7 experiment and the property tests use it to certify that the Rank
//! Algorithm and Algorithm Lookahead are optimal in the paper's
//! restricted case.

use asched_graph::{DepGraph, MachineModel, NodeId, NodeSet};
use std::collections::HashMap;

const MAX_NODES: usize = 24;

struct Ctx<'g> {
    g: &'g DepGraph,
    nodes: Vec<NodeId>,
    machine: &'g MachineModel,
    /// preds[i] = list of (pred position, latency)
    preds: Vec<Vec<(usize, u32)>>,
    /// dependence-only lower bound on remaining span per node (height)
    height: Vec<u64>,
    /// Memoized *exact* optima per canonical state.
    memo: HashMap<(u32, Vec<u16>, Vec<u16>), u64>,
}

/// Minimum makespan of `mask` on `machine`, by exhaustive search.
///
/// Panics if the mask has more than 24 nodes (it would not finish
/// anyway). Loop-carried edges are ignored, like everywhere else in
/// single-block scheduling.
pub fn optimal_makespan(g: &DepGraph, mask: &NodeSet, machine: &MachineModel) -> u64 {
    let nodes: Vec<NodeId> = mask.iter().collect();
    assert!(
        nodes.len() <= MAX_NODES,
        "brute-force scheduler limited to {MAX_NODES} nodes"
    );
    if nodes.is_empty() {
        return 0;
    }
    let mut pos = vec![usize::MAX; g.len()];
    for (i, &id) in nodes.iter().enumerate() {
        pos[id.index()] = i;
    }
    let preds: Vec<Vec<(usize, u32)>> = nodes
        .iter()
        .map(|&id| {
            g.preds_in(id, mask)
                .into_iter()
                .map(|(p, lat)| (pos[p.index()], lat))
                .collect()
        })
        .collect();
    let heights = asched_graph::heights(g, mask).expect("brute force needs an acyclic graph");
    let height: Vec<u64> = nodes.iter().map(|&id| heights[id.index()]).collect();

    // A quick feasible schedule (greedy by height) upper-bounds the search.
    let prio = asched_graph::height_priority(g, mask).unwrap();
    let greedy = crate::list::list_schedule_into(
        &mut asched_graph::ListScratch::default(),
        g,
        mask,
        machine,
        &prio,
        None,
    );

    let mut ctx = Ctx {
        g,
        nodes,
        machine,
        preds,
        height,
        memo: HashMap::new(),
    };
    let n = ctx.nodes.len();
    let finish = vec![0u64; n];
    let busy = vec![0u64; machine.num_units()];
    dfs(&mut ctx, 0, 0, &finish, &busy, greedy.makespan())
}

/// Depth-first search; returns the best achievable makespan from this
/// state that is `< ub`, or `ub` if none is better.
fn dfs(ctx: &mut Ctx, done: u32, t: u64, finish: &[u64], busy: &[u64], ub: u64) -> u64 {
    let n = ctx.nodes.len();
    if done.count_ones() as usize == n {
        let ms = finish.iter().copied().max().unwrap_or(0);
        return ms.min(ub);
    }

    // Lower bound: every unscheduled node still needs height(x) cycles
    // from its earliest possible start.
    let mut lb = 0u64;
    let mut total_work = 0u64;
    for i in 0..n {
        if done & (1 << i) != 0 {
            continue;
        }
        let est = release_time(ctx, i, done, finish);
        // Unknown release (unscheduled preds) is at least `t`.
        let est = if est == u64::MAX { t } else { est };
        lb = lb.max(est.max(t) + ctx.height[i]);
        total_work += ctx.g.exec_time(ctx.nodes[i]) as u64;
    }
    let earliest_unit = busy.iter().copied().min().unwrap_or(0).max(t);
    lb = lb.max(earliest_unit + total_work.div_ceil(ctx.machine.num_units() as u64));
    if lb >= ub {
        return ub;
    }

    // Canonical state key (offsets relative to t, saturating). For an
    // unscheduled node the key carries the release constraint inherited
    // from its *scheduled* predecessors (partial when some predecessors
    // are still unscheduled — the top bit marks that; the unscheduled
    // ones contribute identically in any continuation of the same
    // `done` set, so partial-release + flag fully determines the
    // cost-to-go).
    let key = {
        let rel = |v: u64| -> u16 { v.saturating_sub(t).min(0x7FFF) as u16 };
        let mut node_rel = Vec::with_capacity(n);
        for i in 0..n {
            if done & (1 << i) != 0 {
                node_rel.push(0);
            } else {
                let (partial, complete) = partial_release(ctx, i, done, finish);
                let mut enc = rel(partial);
                if !complete {
                    enc |= 0x8000;
                }
                node_rel.push(enc);
            }
        }
        let unit_rel: Vec<u16> = busy.iter().map(|&b| rel(b)).collect();
        (done, node_rel, unit_rel)
    };
    if let Some(&cached) = ctx.memo.get(&key) {
        return cached.min(ub);
    }

    let mut best = ub;

    // Option A: start each startable node now.
    let mut any_startable = false;
    for i in 0..n {
        if done & (1 << i) != 0 {
            continue;
        }
        if release_time(ctx, i, done, finish) > t {
            continue;
        }
        let class = ctx.g.node(ctx.nodes[i]).class;
        // Try one free unit per distinct unit class (units of the same
        // class are interchangeable; units of different classes are not).
        let candidates: Vec<usize> = ctx.machine.units_for(class).collect();
        let mut tried_classes = Vec::new();
        for u in candidates {
            if busy[u] > t {
                continue;
            }
            let uclass = ctx.machine.units[u];
            if tried_classes.contains(&uclass) {
                continue;
            }
            tried_classes.push(uclass);
            any_startable = true;
            let exec = ctx.g.exec_time(ctx.nodes[i]) as u64;
            let mut f2 = finish.to_vec();
            f2[i] = t + exec;
            let mut b2 = busy.to_vec();
            b2[u] = t + exec;
            let got = dfs(ctx, done | (1 << i), t, &f2, &b2, best);
            best = best.min(got);
        }
    }

    // Option B: advance time to the next event (deliberate idling).
    let mut next = u64::MAX;
    for i in 0..n {
        if done & (1 << i) != 0 {
            continue;
        }
        let r = release_time(ctx, i, done, finish);
        if r != u64::MAX && r > t {
            next = next.min(r);
        }
    }
    for &b in busy {
        if b > t {
            next = next.min(b);
        }
    }
    if next < u64::MAX {
        let got = dfs(ctx, done, next, finish, busy, best);
        best = best.min(got);
    } else if !any_startable {
        // No startable node and no future event: unreachable for a DAG.
        unreachable!("search deadlocked");
    }

    // Only an improvement over the entry bound is a proven exact optimum
    // for this state; a result equal to `ub` is inconclusive and must not
    // be cached.
    if best < ub {
        ctx.memo.insert(key, best);
    }
    best
}

/// Earliest start of node position `i` given the finished predecessors.
/// Only meaningful when all predecessors are scheduled; otherwise it is a
/// valid partial bound (used only for pruning).
fn release_time(ctx: &Ctx, i: usize, done: u32, finish: &[u64]) -> u64 {
    let mut r = 0;
    for &(p, lat) in &ctx.preds[i] {
        if done & (1 << p) != 0 {
            r = r.max(finish[p] + lat as u64);
        } else {
            // Unscheduled predecessor: this node is not startable yet.
            return u64::MAX;
        }
    }
    r
}

/// The release constraint node `i` has inherited from its *scheduled*
/// predecessors, plus whether that constraint is complete (no
/// predecessors outstanding). Used for the memo key: two states with the
/// same done-set, the same partial releases and the same completeness
/// flags have identical cost-to-go.
fn partial_release(ctx: &Ctx, i: usize, done: u32, finish: &[u64]) -> (u64, bool) {
    let mut r = 0;
    let mut complete = true;
    for &(p, lat) in &ctx.preds[i] {
        if done & (1 << p) != 0 {
            r = r.max(finish[p] + lat as u64);
        } else {
            complete = false;
        }
    }
    (r, complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::BlockId;

    #[test]
    fn empty_graph() {
        let g = DepGraph::new();
        let m = MachineModel::single_unit(2);
        assert_eq!(optimal_makespan(&g, &NodeSet::new(0), &m), 0);
    }

    #[test]
    fn chain_with_latency() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 3);
        let m = MachineModel::single_unit(2);
        assert_eq!(optimal_makespan(&g, &g.all_nodes(), &m), 5);
    }

    #[test]
    fn independent_nodes_two_units() {
        let mut g = DepGraph::new();
        for i in 0..4 {
            g.add_simple(format!("n{i}"), BlockId(0));
        }
        assert_eq!(
            optimal_makespan(&g, &g.all_nodes(), &MachineModel::single_unit(1)),
            4
        );
        assert_eq!(
            optimal_makespan(&g, &g.all_nodes(), &MachineModel::uniform(2, 1)),
            2
        );
    }

    #[test]
    fn deliberate_idle_can_win() {
        // Two sources: s1 feeds a long chain via latency, s2 is filler.
        // Greedy source order s2-first is worse; brute must find s1 first.
        let mut g = DepGraph::new();
        let s1 = g.add_simple("s1", BlockId(0));
        let s2 = g.add_simple("s2", BlockId(0));
        let c1 = g.add_simple("c1", BlockId(0));
        let c2 = g.add_simple("c2", BlockId(0));
        g.add_dep(s1, c1, 2);
        g.add_dep(c1, c2, 2);
        let m = MachineModel::single_unit(1);
        // s1@0, s2@1, idle@2, c1@3, idle, idle, c2@6 -> makespan 7.
        assert_eq!(optimal_makespan(&g, &g.all_nodes(), &m), 7);
        let _ = s2;
    }

    #[test]
    fn matches_exhaustive_intuition_on_fig1() {
        // Figure 1's block has optimum 7 on a single unit.
        let (g, _) = crate::ranks::tests::fig1();
        let m = MachineModel::single_unit(2);
        assert_eq!(optimal_makespan(&g, &g.all_nodes(), &m), 7);
    }

    #[test]
    fn multicycle_instructions() {
        let mut g = DepGraph::new();
        let mul = g.add_simple("mul", BlockId(0));
        g.node_mut(mul).exec_time = 4;
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(mul, b, 0);
        let m = MachineModel::uniform(2, 1);
        // mul on unit 0 (4 cycles), a in parallel, b after mul: makespan 5.
        assert_eq!(optimal_makespan(&g, &g.all_nodes(), &m), 5);
        let _ = a;
    }
}
