//! Greedy list scheduling.
//!
//! Step 3 of the Rank Algorithm, and the engine behind every baseline
//! scheduler: given a total priority order over the nodes, at each cycle
//! scan the list and start every ready instruction on a free compatible
//! unit. The scheduler never leaves a unit idle when some ready
//! instruction could use it — the *greedy* property the paper's Ordering
//! Constraint (Definition 2.3) refers to.

use asched_graph::{
    DepGraph, ListScratch, MachineModel, NodeId, NodeSet, SchedCtx, SchedOpts, Schedule,
};

/// Greedily schedule the nodes of `mask` following `priority`.
///
/// `priority` must contain every node of `mask` exactly once (extra nodes
/// outside the mask are ignored). Readiness of `x` at time `t` requires
/// every loop-independent predecessor of `x` inside the mask to satisfy
/// `completion(pred) + latency <= t`.
///
/// `opts.release` supplies per-node *release times*: node `x` cannot
/// start before `release[x.index()]`. Algorithm `Lookahead` uses this to
/// carry dependences from already-emitted instructions into the
/// scheduling of the retained suffix (`chop` cuts at an idle slot, so
/// with 0/1 latencies the carried releases are vacuous; with longer
/// latencies they are not). The other options are ignored.
pub fn list_schedule(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    priority: &[NodeId],
    opts: &SchedOpts,
) -> Schedule {
    list_schedule_into(
        &mut ctx.scratch.list,
        g,
        mask,
        machine,
        priority,
        opts.release,
    )
}

/// The greedy scheduler proper, working out of a [`ListScratch`] so
/// rank-internal callers can hold other scratch fields across the call.
pub(crate) fn list_schedule_into(
    ls: &mut ListScratch,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    priority: &[NodeId],
    release: Option<&[u64]>,
) -> Schedule {
    let ListScratch {
        order: prio,
        unit_free,
        preds_left,
        est,
        done,
    } = ls;
    prio.clear();
    prio.extend(priority.iter().copied().filter(|&id| mask.contains(id)));
    debug_assert_eq!(prio.len(), mask.len(), "priority must cover the mask");

    let mut sched = Schedule::new(g.len());
    unit_free.clear();
    unit_free.resize(machine.num_units(), 0);
    // Remaining unscheduled predecessor count per node (within mask).
    preds_left.clear();
    preds_left.resize(g.len(), 0);
    for id in mask.iter() {
        // Raw edge count (parallel edges counted separately): the issue
        // loop below decrements once per raw edge.
        preds_left[id.index()] = g.in_edges_li(id).filter(|e| mask.contains(e.src)).count();
    }
    // Earliest start by dependences, valid once preds_left == 0.
    est.clear();
    est.resize(g.len(), 0);
    if let Some(rel) = release {
        for id in mask.iter() {
            est[id.index()] = rel[id.index()];
        }
    }
    let mut remaining = mask.len();
    done.clear();
    done.resize(g.len(), false);

    let mut t: u64 = 0;
    while remaining > 0 {
        let mut issued = false;
        for &x in prio.iter() {
            if done[x.index()] || preds_left[x.index()] > 0 || est[x.index()] > t {
                continue;
            }
            // A ready node: find a free compatible unit.
            let class = g.node(x).class;
            let unit = machine.units_for(class).find(|&u| unit_free[u] <= t);
            let Some(u) = unit else { continue };
            let exec = g.exec_time(x);
            sched.assign(x, t, u, exec);
            unit_free[u] = t + exec as u64;
            done[x.index()] = true;
            remaining -= 1;
            issued = true;
            let completion = t + exec as u64;
            for e in g.out_edges_li(x) {
                if mask.contains(e.dst) && !done[e.dst.index()] {
                    preds_left[e.dst.index()] -= 1;
                    let ready = completion + e.latency as u64;
                    if ready > est[e.dst.index()] {
                        est[e.dst.index()] = ready;
                    }
                }
            }
        }
        if remaining == 0 {
            break;
        }
        // Advance to the next event: a unit freeing up or a node becoming
        // ready. If we issued something this cycle, re-scan at t+1 (new
        // readiness may have appeared for zero-latency edges only at
        // completion times, which the event scan below also finds).
        let mut next = u64::MAX;
        for &f in unit_free.iter() {
            if f > t {
                next = next.min(f);
            }
        }
        for id in mask.iter() {
            if !done[id.index()] && preds_left[id.index()] == 0 && est[id.index()] > t {
                next = next.min(est[id.index()]);
            }
        }
        if next == u64::MAX {
            if !issued {
                // Nothing issued and no future event: some pending node
                // has no compatible unit on this machine — a machine/
                // graph mismatch. Fail loudly rather than spin forever.
                let stuck = mask
                    .iter()
                    .find(|&id| !done[id.index()] && preds_left[id.index()] == 0)
                    .expect("a DAG always has a source pending");
                panic!(
                    "no functional unit on this machine can run node {stuck} \
                     (class {:?})",
                    g.node(stuck).class
                );
            }
            // This cycle's issues created the next work; step one cycle.
            next = t + 1;
        }
        debug_assert!(next > t, "time must advance");
        t = next;
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use asched_graph::validate::validate_schedule;
    use asched_graph::{BlockId, FuClass, NodeData};

    fn m1() -> MachineModel {
        MachineModel::single_unit(2)
    }

    /// Shorthand: list-schedule with a fresh context and default options.
    fn run(g: &DepGraph, mask: &NodeSet, m: &MachineModel, prio: &[NodeId]) -> Schedule {
        list_schedule(
            &mut SchedCtx::new(),
            g,
            mask,
            m,
            prio,
            &SchedOpts::default(),
        )
    }

    #[test]
    fn respects_priority_order() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let s = run(&g, &g.all_nodes(), &m1(), &[b, a]);
        assert_eq!(s.start(b), Some(0));
        assert_eq!(s.start(a), Some(1));
    }

    #[test]
    fn fills_latency_gap_with_lower_priority_node() {
        // a -(2)-> c ; b independent. Priority a,c,b: greedy puts b into
        // the latency gap rather than idling.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, c, 2);
        let s = run(&g, &g.all_nodes(), &m1(), &[a, c, b]);
        assert_eq!(s.start(a), Some(0));
        assert_eq!(s.start(b), Some(1));
        assert_eq!(s.start(c), Some(3));
        assert_eq!(s.makespan(), 4);
        validate_schedule(&g, &g.all_nodes(), &m1(), &s, None).unwrap();
    }

    #[test]
    fn idles_when_nothing_ready() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, c, 3);
        let s = run(&g, &g.all_nodes(), &m1(), &[a, c]);
        assert_eq!(s.start(c), Some(4));
        assert_eq!(s.makespan(), 5);
        assert_eq!(s.idle_slots(&m1()), vec![1, 2, 3]);
    }

    #[test]
    fn multi_cycle_instruction_blocks_unit() {
        let mut g = DepGraph::new();
        let mul = g.add_simple("mul", BlockId(0));
        g.node_mut(mul).exec_time = 4;
        let b = g.add_simple("b", BlockId(0));
        let s = run(&g, &g.all_nodes(), &m1(), &[mul, b]);
        assert_eq!(s.start(mul), Some(0));
        assert_eq!(s.start(b), Some(4));
        validate_schedule(&g, &g.all_nodes(), &m1(), &s, None).unwrap();
    }

    #[test]
    fn two_units_run_in_parallel() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let m = MachineModel::uniform(2, 2);
        let s = run(&g, &g.all_nodes(), &m, &[a, b]);
        assert_eq!(s.start(a), Some(0));
        assert_eq!(s.start(b), Some(0));
        assert_eq!(s.makespan(), 1);
        validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap();
    }

    #[test]
    fn class_constraints_respected() {
        let mut g = DepGraph::new();
        let f = g.add_node(NodeData {
            label: "fadd".into(),
            exec_time: 1,
            class: FuClass::Float,
            block: BlockId(0),
            source_pos: 0,
        });
        let i = g.add_node(NodeData {
            label: "add".into(),
            exec_time: 1,
            class: FuClass::Fixed,
            block: BlockId(0),
            source_pos: 1,
        });
        let m = MachineModel::rs6000_like(2);
        let s = run(&g, &g.all_nodes(), &m, &[f, i]);
        // Different classes -> different units -> same cycle.
        assert_eq!(s.start(f), Some(0));
        assert_eq!(s.start(i), Some(0));
        assert_ne!(s.unit(f), s.unit(i));
        validate_schedule(&g, &g.all_nodes(), &m, &s, None).unwrap();
    }

    #[test]
    fn mask_subset_only() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 5);
        let mut mask = NodeSet::new(g.len());
        mask.insert(b);
        // a outside the mask: b is a source here and starts at 0.
        let s = run(&g, &mask, &m1(), &[b]);
        assert_eq!(s.start(b), Some(0));
        assert_eq!(s.num_scheduled(), 1);
    }

    #[test]
    fn empty_mask_empty_schedule() {
        let g = DepGraph::new();
        let s = run(&g, &NodeSet::new(0), &m1(), &[]);
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.num_scheduled(), 0);
    }

    /// Regression (found in code review): a machine with no unit for a
    /// node's class must fail loudly, not loop forever.
    #[test]
    #[should_panic(expected = "no functional unit")]
    fn incompatible_machine_panics_cleanly() {
        let mut g = DepGraph::new();
        let f = g.add_node(NodeData {
            label: "fadd".into(),
            exec_time: 1,
            class: FuClass::Float,
            block: BlockId(0),
            source_pos: 0,
        });
        let m = MachineModel {
            units: vec![FuClass::Fixed],
            window: 2,
        };
        run(&g, &g.all_nodes(), &m, &[f]);
    }

    #[test]
    fn zero_latency_chain_packs_tight() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let c = g.add_simple("c", BlockId(0));
        g.add_dep(a, b, 0);
        g.add_dep(b, c, 0);
        let s = run(&g, &g.all_nodes(), &m1(), &[a, b, c]);
        assert_eq!(s.makespan(), 3);
        assert_eq!(s.idle_slots(&m1()), Vec::<u64>::new());
    }
}
