//! Moving idle slots as late as possible (paper Section 3).
//!
//! *"One of the key ideas in our solution is that of moving idle slots as
//! late as possible in a given basic block. This is a useful step because
//! it offers more opportunity for overlap with instructions at the start
//! of the next basic block."*
//!
//! [`move_idle_slot`] is procedure `Move_Idle_Slot` of Figure 4: it tries
//! to delay one idle slot by repeatedly tightening the deadline of the
//! *tail node* (the node completing just before the slot) and re-running
//! the Rank Algorithm. Deadline modifications are kept on success and
//! rolled back on failure. [`delay_idle_slots`] is `Delay_Idle_Slots` of
//! Figure 6: it processes the idle slots from earliest to latest, moving
//! each one as far as it will go.
//!
//! These are the hottest loops in the workspace — every attempt re-runs
//! the Rank Algorithm on the *same* `(graph, mask)` — which is exactly
//! what the [`SchedCtx`] analysis cache and scratch buffers exist for:
//! after the first rank run, every retry reuses the cached topological
//! order and descendant sets and runs allocation-free.
//!
//! On the restricted machine (0/1 latencies, unit execution times, single
//! functional unit) repeated application provably yields a
//! minimum-makespan schedule in which every idle slot occurs as late as
//! possible; with multiple units the same procedure is applied per unit
//! as a heuristic (Section 4.2 discusses choosing which unit's slots to
//! attack; we process units in order of decreasing demand).

use crate::deadline::Deadlines;
use crate::ranks::{rank_schedule, RankOutput};
use asched_graph::{DepGraph, MachineModel, NodeSet, SchedCtx, SchedOpts, Schedule};
use asched_obs::{record, Event, Pass};

/// Result of one [`move_idle_slot`] attempt.
#[derive(Clone, Debug)]
pub enum MoveOutcome {
    /// The slot was delayed (or eliminated). The schedule is the new one;
    /// `new_start` is the slot's new start time, or `None` if the slot no
    /// longer exists at or before the makespan. Deadline modifications
    /// have been kept ("finalized").
    Moved {
        /// The improved schedule.
        schedule: Schedule,
        /// New start time of the processed slot (`None` = eliminated).
        new_start: Option<u64>,
    },
    /// The slot could not be moved; deadlines were restored and the input
    /// schedule stands.
    Stuck,
}

/// Try to delay the `slot_index`-th idle slot (0-based, in increasing
/// time order) of `unit` in `sched`.
///
/// `d` carries the current deadline assignments and is updated in place
/// on success (and restored on failure), mirroring the paper's
/// "finalize / undo all deadline modifications". `opts.release`
/// constrains the re-ranked schedules (Algorithm `Lookahead` carries
/// constraints from emitted instructions into retained suffixes); an
/// enabled `opts.rec` sees each attempt as an `idle_move` event (slot
/// position, where it landed, whether the deadline edits were kept) plus
/// the rank runs inside the attempt.
#[allow(clippy::too_many_arguments)]
pub fn move_idle_slot(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    sched: &Schedule,
    d: &mut Deadlines,
    unit: usize,
    slot_index: usize,
    opts: &SchedOpts,
) -> MoveOutcome {
    let slot_start = sched
        .idle_slots_unit(machine, unit)
        .get(slot_index)
        .copied();
    let outcome = move_idle_slot_inner(ctx, g, mask, machine, sched, d, unit, slot_index, opts);
    if let Some(slot) = slot_start {
        record!(
            opts.rec,
            Event::IdleMove {
                unit: unit as u32,
                slot,
                new_start: match &outcome {
                    MoveOutcome::Moved { new_start, .. } => *new_start,
                    MoveOutcome::Stuck => Some(slot),
                },
                moved: matches!(outcome, MoveOutcome::Moved { .. }),
            }
        );
    }
    outcome
}

#[allow(clippy::too_many_arguments)]
fn move_idle_slot_inner(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    sched: &Schedule,
    d: &mut Deadlines,
    unit: usize,
    slot_index: usize,
    opts: &SchedOpts,
) -> MoveOutcome {
    let idles = sched.idle_slots_unit(machine, unit);
    let Some(&t_i) = idles.get(slot_index) else {
        return MoveOutcome::Stuck;
    };
    if t_i == 0 {
        // Nothing precedes the slot; it cannot be created later by
        // starting an ancestor earlier.
        return MoveOutcome::Stuck;
    }
    // Snapshot the deadlines into the context's save buffer instead of
    // cloning: the loop below only set/tighten-edits values (the horizon
    // is untouched), so restoring the vector restores the whole state.
    d.save_into(&mut ctx.scratch.deadline_save);

    // "If there is any node y scheduled before t_i with rank(y) > t_i,
    // set rank(y) = t_i" — clamp everything already completing by t_i so
    // earlier idle slots cannot move (the paper's safety step).
    for id in mask.iter() {
        if let Some(c) = sched.completion(id) {
            if c <= t_i {
                d.tighten(id, t_i as i64);
            }
        }
    }

    let mut cur: Schedule = sched.clone();
    // Each iteration strictly tightens some node's deadline, so the loop
    // terminates; the cap is belt and braces.
    let max_iters = (mask.len() as u64 + 2) * (sched.makespan() + 2);
    for _ in 0..max_iters {
        // The tail node: completes exactly at t_i on this unit.
        let Some(a_i) = cur.tail_node(unit, t_i) else {
            // Preceded by another idle slot (or start of time): stuck.
            d.restore_from(&ctx.scratch.deadline_save);
            return MoveOutcome::Stuck;
        };
        // d(a_i) = rank(a_i) = t_i - 1: force the tail node earlier.
        let new_dl = t_i as i64 - 1;
        if new_dl < g.exec_time(a_i) as i64 {
            d.restore_from(&ctx.scratch.deadline_save);
            return MoveOutcome::Stuck;
        }
        d.set(a_i, new_dl);

        let attempt: Result<RankOutput, _> = rank_schedule(ctx, g, mask, machine, d, opts);
        let Ok(out) = attempt else {
            // rank_alg cannot meet the tightened deadlines: undo.
            d.restore_from(&ctx.scratch.deadline_save);
            return MoveOutcome::Stuck;
        };
        let new_idles = out.schedule.idle_slots_unit(machine, unit);
        match new_idles.get(slot_index) {
            None => {
                // The slot vanished entirely (possible off the restricted
                // machine): that counts as moving it past the end.
                return MoveOutcome::Moved {
                    schedule: out.schedule,
                    new_start: None,
                };
            }
            Some(&t_new) if t_new > t_i => {
                return MoveOutcome::Moved {
                    schedule: out.schedule,
                    new_start: Some(t_new),
                };
            }
            Some(&t_new) if t_new == t_i => {
                // Same position: iterate with the (possibly different)
                // new tail node.
                cur = out.schedule;
            }
            Some(_) => {
                // Moved *earlier*: the clamp should prevent this; treat
                // as failure and restore.
                d.restore_from(&ctx.scratch.deadline_save);
                return MoveOutcome::Stuck;
            }
        }
    }
    d.restore_from(&ctx.scratch.deadline_save);
    MoveOutcome::Stuck
}

/// Delay every idle slot of `sched` as far as possible (Figure 6).
///
/// Processes slots from earliest to latest, retrying each slot until it
/// stops moving. For multi-unit machines, units are processed in
/// decreasing order of demand (number of instructions that can only run
/// there), per the Section 4.2 heuristic. Returns the improved schedule;
/// `d` accumulates the finalized deadline modifications. With an enabled
/// `opts.rec` the whole sweep is one timed `delay_idle_slots` pass and
/// every slot attempt emits an `idle_move` event.
///
/// ```
/// use asched_graph::{BlockId, DepGraph, MachineModel, SchedCtx, SchedOpts};
/// use asched_rank::{delay_idle_slots, rank_schedule_default, Deadlines};
///
/// // a -(2)-> b plus a filler f: the rank schedule is a f _ b with the
/// // idle slot mid-block; delaying moves the filler into the gap... or
/// // rather moves the gap to the boundary where the next block can use
/// // it.
/// let mut g = DepGraph::new();
/// let a = g.add_simple("a", BlockId(0));
/// let b = g.add_simple("b", BlockId(0));
/// let f = g.add_simple("f", BlockId(0));
/// g.add_dep(a, b, 2);
///
/// let machine = MachineModel::single_unit(2);
/// let mask = g.all_nodes();
/// let mut ctx = SchedCtx::new();
/// let s0 = rank_schedule_default(&mut ctx, &g, &mask, &machine).unwrap();
/// let t = s0.makespan();
/// let mut d = Deadlines::uniform(&g, &mask, t as i64);
/// let s1 = delay_idle_slots(&mut ctx, &g, &mask, &machine, s0, &mut d, &SchedOpts::default());
/// assert_eq!(s1.makespan(), t); // never longer
/// ```
pub fn delay_idle_slots(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    sched: Schedule,
    d: &mut Deadlines,
    opts: &SchedOpts,
) -> Schedule {
    asched_obs::timed_span(opts.rec, Pass::DelayIdleSlots, opts.span, || {
        delay_idle_slots_inner(ctx, g, mask, machine, sched, d, opts)
    })
}

fn delay_idle_slots_inner(
    ctx: &mut SchedCtx,
    g: &DepGraph,
    mask: &NodeSet,
    machine: &MachineModel,
    sched: Schedule,
    d: &mut Deadlines,
    opts: &SchedOpts,
) -> Schedule {
    let mut units: Vec<usize> = (0..machine.num_units()).collect();
    if machine.num_units() > 1 {
        // Demand per unit = number of mask instructions whose class this
        // unit serves, weighted by 1/(units serving that class).
        let demand = |u: usize| -> u64 {
            mask.iter()
                .filter(|&id| machine.unit_accepts(u, g.node(id).class))
                .map(|id| {
                    let share = machine.capacity_for(g.node(id).class) as u64;
                    (1000 * g.exec_time(id) as u64) / share.max(1)
                })
                .sum()
        };
        // Stable sort: equal-demand units must keep ascending order.
        units.sort_by_key(|&u| std::cmp::Reverse(demand(u)));
    }

    let mut cur = sched;
    for unit in units {
        let mut i = 0;
        loop {
            let idles = cur.idle_slots_unit(machine, unit);
            if i >= idles.len() {
                break;
            }
            match move_idle_slot(ctx, g, mask, machine, &cur, d, unit, i, opts) {
                MoveOutcome::Moved { schedule, .. } => {
                    cur = schedule;
                    // Retry the same index: the slot may move further, or
                    // (if eliminated) the index now denotes the next slot.
                }
                MoveOutcome::Stuck => {
                    i += 1;
                }
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranks::{rank_schedule, rank_schedule_default};
    use asched_graph::validate::validate_schedule;
    use asched_graph::{BlockId, NodeId};

    fn m1() -> MachineModel {
        MachineModel::single_unit(2)
    }

    /// Paper Section 2.2: delaying Figure 1's idle slot from t=2 to t=5.
    #[test]
    fn fig1_idle_slot_delayed_to_five() {
        let (g, [x, _e, _w, _b, a, _r]) = crate::ranks::tests::fig1();
        let mask = g.all_nodes();
        let mut ctx = SchedCtx::new();
        let s0 = rank_schedule_default(&mut ctx, &g, &mask, &m1()).unwrap();
        assert_eq!(s0.idle_slots(&m1()), vec![2]);
        // Deadlines clamped to the optimal makespan T = 7 (the paper's
        // "decrement every deadline by D - T").
        let mut d = Deadlines::uniform(&g, &mask, s0.makespan() as i64);
        let s1 = delay_idle_slots(
            &mut ctx,
            &g,
            &mask,
            &m1(),
            s0,
            &mut d,
            &SchedOpts::default(),
        );
        assert_eq!(s1.makespan(), 7);
        assert_eq!(s1.idle_slots(&m1()), vec![5]);
        assert_eq!(s1.start(x), Some(0));
        assert_eq!(s1.start(a), Some(6));
        // The finalized deadline of x is 1, as in the paper.
        assert_eq!(d.get(x), 1);
        validate_schedule(&g, &mask, &m1(), &s1, Some(d.as_slice())).unwrap();
    }

    #[test]
    fn no_idle_slots_is_noop() {
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 0);
        let mask = g.all_nodes();
        let mut ctx = SchedCtx::new();
        let s0 = rank_schedule_default(&mut ctx, &g, &mask, &m1()).unwrap();
        assert!(s0.idle_slots(&m1()).is_empty());
        let mut d = Deadlines::uniform(&g, &mask, s0.makespan() as i64);
        let s1 = delay_idle_slots(
            &mut ctx,
            &g,
            &mask,
            &m1(),
            s0.clone(),
            &mut d,
            &SchedOpts::default(),
        );
        assert_eq!(s0, s1);
    }

    #[test]
    fn unmovable_slot_is_stuck() {
        // a -(2)-> b: schedule a _ _ b; the idle slots are forced by the
        // latency and cannot move.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        g.add_dep(a, b, 2);
        let mask = g.all_nodes();
        let mut ctx = SchedCtx::new();
        let s0 = rank_schedule_default(&mut ctx, &g, &mask, &m1()).unwrap();
        assert_eq!(s0.idle_slots(&m1()), vec![1, 2]);
        let mut d = Deadlines::uniform(&g, &mask, s0.makespan() as i64);
        let saved = d.clone();
        match move_idle_slot(
            &mut ctx,
            &g,
            &mask,
            &m1(),
            &s0,
            &mut d,
            0,
            0,
            &SchedOpts::default(),
        ) {
            MoveOutcome::Stuck => {}
            MoveOutcome::Moved { .. } => panic!("slot should be stuck"),
        }
        // Deadlines restored on failure.
        assert_eq!(d, saved);
    }

    #[test]
    fn makespan_never_increases() {
        // Random-ish fixed graphs: delaying idle slots must keep the
        // makespan (deadlines cap it at T).
        let (g, _) = crate::ranks::tests::fig1();
        let mask = g.all_nodes();
        let mut ctx = SchedCtx::new();
        let s0 = rank_schedule_default(&mut ctx, &g, &mask, &m1()).unwrap();
        let t0 = s0.makespan();
        let mut d = Deadlines::uniform(&g, &mask, t0 as i64);
        let s1 = delay_idle_slots(
            &mut ctx,
            &g,
            &mask,
            &m1(),
            s0,
            &mut d,
            &SchedOpts::default(),
        );
        assert_eq!(s1.makespan(), t0);
    }

    #[test]
    fn idle_slots_never_move_earlier() {
        let (g, _) = crate::ranks::tests::fig1();
        let mask = g.all_nodes();
        let mut ctx = SchedCtx::new();
        let s0 = rank_schedule_default(&mut ctx, &g, &mask, &m1()).unwrap();
        let before = s0.idle_slots(&m1());
        let mut d = Deadlines::uniform(&g, &mask, s0.makespan() as i64);
        let s1 = delay_idle_slots(
            &mut ctx,
            &g,
            &mask,
            &m1(),
            s0,
            &mut d,
            &SchedOpts::default(),
        );
        let after = s1.idle_slots(&m1());
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(after.iter()) {
            assert!(a >= b, "slot moved earlier: {b} -> {a}");
        }
    }

    #[test]
    fn slot_at_time_zero_is_stuck() {
        // Force an artificial schedule with an idle slot at t=0 by
        // deadline pressure is impossible via rank_schedule (greedy never
        // idles at 0 with a ready source), so test move_idle_slot's guard
        // directly on a handcrafted schedule.
        let mut g = DepGraph::new();
        let a = g.add_simple("a", BlockId(0));
        let mask = g.all_nodes();
        let mut s = Schedule::new(g.len());
        s.assign(a, 1, 0, 1); // idle at 0
        let mut d = Deadlines::uniform(&g, &mask, 2);
        let mut ctx = SchedCtx::new();
        assert!(matches!(
            move_idle_slot(
                &mut ctx,
                &g,
                &mask,
                &m1(),
                &s,
                &mut d,
                0,
                0,
                &SchedOpts::default()
            ),
            MoveOutcome::Stuck
        ));
    }

    #[test]
    fn second_block_style_chain_delays() {
        // x -> {w, b} lat 1; w -> a lat 1; plus filler f with no deps.
        // Rank order can leave an early idle slot; delaying pushes it
        // later while keeping makespan.
        let mut g = DepGraph::new();
        let x = g.add_simple("x", BlockId(0));
        let w = g.add_simple("w", BlockId(0));
        let b = g.add_simple("b", BlockId(0));
        let a = g.add_simple("a", BlockId(0));
        let f = g.add_simple("f", BlockId(0));
        g.add_dep(x, w, 1);
        g.add_dep(x, b, 1);
        g.add_dep(w, a, 1);
        let mask = g.all_nodes();
        let mut ctx = SchedCtx::new();
        let out = rank_schedule(
            &mut ctx,
            &g,
            &mask,
            &m1(),
            &Deadlines::unbounded(&g, &mask),
            &SchedOpts::default(),
        )
        .unwrap();
        let t = out.schedule.makespan() as i64;
        let mut d = Deadlines::uniform(&g, &mask, t);
        let s1 = delay_idle_slots(
            &mut ctx,
            &g,
            &mask,
            &m1(),
            out.schedule.clone(),
            &mut d,
            &SchedOpts::default(),
        );
        assert_eq!(s1.makespan() as i64, t);
        validate_schedule(&g, &mask, &m1(), &s1, Some(d.as_slice())).unwrap();
        // Whatever happened, the last idle slot should be as late as the
        // original schedule's (monotone improvement).
        let before = out.schedule.idle_slots(&m1());
        let after = s1.idle_slots(&m1());
        if let (Some(b0), Some(a0)) = (before.first(), after.first()) {
            assert!(a0 >= b0);
        }
        let _ = (b, f, NodeId(0));
    }
}
